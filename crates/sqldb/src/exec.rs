//! Physical execution: morsel-parallel operators over materialized batches.
//!
//! The executor walks the logical plan operator-at-a-time. Parallelism is
//! morsel-driven (see `docs/EXECUTION.md` for the full threading model):
//! predicated scans, filters, projections, join probes and partial
//! aggregations claim morsels from [`pytond_common::pool`]'s shared atomic
//! cursor, then merge deterministically — morsel order for row streams,
//! global first-occurrence order for groups (matching the Pandas baseline's
//! group order, which keeps differential tests exact). Hash-join build sides
//! above [`pytond_common::hash::MIN_PARTITIONED_BUILD`] rows are split by
//! key hash into partitions built concurrently
//! ([`pytond_common::hash::PartitionedIndex`]). Order-sensitive float
//! accumulation always folds over the fixed morsel grid — never over
//! per-thread chunks — so every thread count (including 1) produces
//! bit-identical results.
//!
//! Profile differences:
//!
//! * **vectorized** — every operator materializes its full output before the
//!   next starts (DuckDB-style operator-at-a-time with intermediate vectors);
//! * **fused** — the plan is decomposed into single-pass pipelines
//!   ([`crate::pipeline`]): a claimed morsel flows
//!   scan → filter → project → join-probe → aggregate-partial while hot in
//!   cache, with no intermediate relation between the fused operators — the
//!   observable effect of Hyper-style pipeline compilation at this engine's
//!   abstraction level. `PYTOND_NO_FUSE=1` forces the materializing path for
//!   every profile; differential suites (`tests/fusion_property.rs`,
//!   `tests/plan_fuzz.rs`) prove the two paths bit-identical.

use crate::ast::AggName;
use crate::db::Snapshot;
use crate::expr::BExpr;
use crate::pipeline::{self, Pipeline, Sink, Stage};
use crate::plan::{BAgg, BoundQuery, JKind, LogicalPlan};
use crate::stats::ZONE_ROWS;
use crate::table::{Batch, Schema, StoredTable};
use pytond_common::cancel::CancelToken;
use pytond_common::fault::{self, FaultSite};
use pytond_common::hash::{
    distinct_keep, encode_value, normalize_key, opt_keys, sql_key_encodings, FixedKeySpec,
    FxHashMap, FxHashSet, KeyArena, KeyWidth, PartitionedIndex,
};
use pytond_common::pool;
use pytond_common::{Column, DType, Error, Result, Value};
use std::hash::Hash;
use std::sync::Arc;

/// Runtime options (derived from [`crate::db::EngineConfig`]).
#[derive(Debug, Clone)]
pub struct ExecOptions {
    /// Worker threads for morsel-parallel operators. This is the *resolved*
    /// degree of parallelism: [`crate::db::Database`] maps a configured `0`
    /// ("auto") to [`pytond_common::pool::default_threads`] before execution
    /// reaches here. `1` runs every operator inline with no worker threads.
    pub threads: usize,
    /// Fused (late-materialization) execution.
    pub fused: bool,
    /// Rows per morsel.
    pub morsel: usize,
    /// Consult zone maps to skip morsels on pushed-down scan predicates.
    pub zone_prune: bool,
    /// Per-query lifecycle token: deadline, explicit cancel and memory
    /// budget. Polled at every morsel claim, join-build step and
    /// aggregation-merge step (see `docs/RESILIENCE.md`). The default is a
    /// disarmed token that only meters check counts.
    pub cancel: CancelToken,
}

impl Default for ExecOptions {
    fn default() -> Self {
        ExecOptions {
            threads: pool::default_threads(),
            fused: false,
            morsel: 16 * 1024,
            zone_prune: true,
            cancel: CancelToken::disarmed(),
        }
    }
}

/// Morsel-body guard: the fault-injection point plus the cooperative
/// cancellation poll. Every morsel claimed by a parallel operator (and
/// every grid step of an armed serial run) passes through here. A free
/// function (not a method) so worker closures capture only the `Sync`
/// token, never the executor's `RefCell` metrics.
fn morsel_guard(cancel: &CancelToken) -> Result<()> {
    if fault::injected(FaultSite::Morsel) {
        return Err(Error::Internal(format!(
            "injected fault: morsel ({})",
            cancel.label()
        )));
    }
    cancel.check()
}

/// Minimum number of morsels' worth of input before an operator spawns
/// workers: below this, scoped-thread startup costs more than parallelism
/// recovers (sub-millisecond operators). Purely a scheduling gate — the
/// morsel grid, and therefore every result bit, is identical either way.
const SPAWN_MIN_MORSELS: usize = 4;

/// Executor counters for one query, reported through
/// [`crate::db::Database::execute_sql_traced`].
///
/// Scan "morsels" are statistics zones ([`crate::stats::ZONE_ROWS`] rows):
/// the granularity at which predicated scans either evaluate or skip input.
/// [`ExecMetrics::morsels_claimed_per_worker`] counts dispenser claims of
/// *any* parallel operator (scans, filters, projections, join probes,
/// aggregation partials), accumulated per worker id across the whole query.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct ExecMetrics {
    /// Resolved degree of parallelism the query ran with.
    pub threads: usize,
    /// Zones whose rows a predicated scan actually evaluated, as
    /// **per-pipeline totals**: each pipeline (fused, or the single-operator
    /// pipeline a materializing scan amounts to) counts every zone it
    /// evaluates exactly once, no matter how many downstream operators
    /// consume the scan's rows. Pinned by a trace assertion in
    /// `tests/fusion_property.rs`.
    pub morsels_scanned: u64,
    /// Zones skipped because zone-map bounds proved the predicate false.
    pub morsels_pruned: u64,
    /// Fused single-pass pipelines driven by this query (0 on the
    /// materializing path).
    pub pipelines: u64,
    /// Operators fused into each pipeline (source + streaming stages + an
    /// aggregation sink), in pipeline completion order.
    pub pipeline_ops: Vec<u64>,
    /// Full intermediate materializations the fused pipelines avoided
    /// compared to operator-at-a-time execution (see
    /// [`crate::pipeline::Pipeline::intermediates_avoided`]).
    pub intermediates_avoided: u64,
    /// Hash joins that built on the left input because it was the smaller
    /// side (the planner's layout defaults to building on the right).
    pub joins_flipped: u64,
    /// Work units claimed from the shared morsel dispenser, per worker id,
    /// summed over every parallel operator in the query. **Empty** when the
    /// whole query ran on the serial path (inline operators never touch the
    /// dispenser); parallel operators always contribute ≥ 2 worker entries.
    pub morsels_claimed_per_worker: Vec<u64>,
    /// Hash-join build partitions constructed concurrently (0 when every
    /// build ran serially on one partition).
    pub partitions_built: u64,
    /// The [`crate::db::Snapshot::version`] the query executed against —
    /// the whole run saw exactly this version of every table (stamped by
    /// the snapshot entry points; 0 for direct executor calls).
    pub snapshot_version: u64,
    /// Nanoseconds the query waited in the admission gate before executing
    /// (see [`pytond_common::pool::admission`]); 0 when a slot was free.
    pub queue_wait_ns: u64,
    /// Cooperative cancellation polls observed by this query's
    /// [`CancelToken`] (morsel claims, join builds, aggregation merges,
    /// per-operator checks).
    pub cancel_checks: u64,
    /// The query's memory budget in bytes (0 = unlimited).
    pub mem_budget_bytes: u64,
    /// The query's deadline in milliseconds (0 = none).
    pub deadline_ms: u64,
    /// Bytes charged against the budget: a coarse cumulative estimate of the
    /// query's materialized allocations (join build tables, aggregation
    /// states, fresh output columns). Releases are not tracked, so this is
    /// the peak of the accounted total.
    pub mem_peak_bytes: u64,
    /// Dictionary-encoded string columns read by table scans (counted once
    /// per scan, over the scan's projected columns).
    pub dict_encoded_cols: u64,
    /// Fused pipelines whose join probe packed dictionary codes for at least
    /// one string key position (instead of breaking the pipeline and falling
    /// back to byte-encoded keys).
    pub dict_probe_pipelines: u64,
    /// Dictionary-encoded columns decoded back to plain strings at result
    /// materialization (the [`crate::table::Batch::to_relation`] boundary).
    pub dict_decoded_cols: u64,
}

/// Executes a bound query, materializing CTEs in order.
pub fn execute(db: &Snapshot, q: &BoundQuery, opts: ExecOptions) -> Result<(Batch, Schema)> {
    let (batch, schema, _) = execute_traced(db, q, opts)?;
    Ok((batch, schema))
}

/// Like [`execute`], also returning the run's [`ExecMetrics`].
pub fn execute_traced(
    db: &Snapshot,
    q: &BoundQuery,
    opts: ExecOptions,
) -> Result<(Batch, Schema, ExecMetrics)> {
    execute_with_temps(db, q, FxHashMap::default(), opts)
}

/// Like [`execute_traced`], but execution starts with `temps` pre-seeded.
///
/// Temporaries shadow same-named base tables (the executor resolves temps
/// first), which is the delta-execution seam for incremental view
/// maintenance: overlaying a base table with a [`StoredTable`] holding only
/// its appended suffix makes every scan of that table see the delta rows
/// while all other inputs still read the pinned snapshot.
pub(crate) fn execute_with_temps(
    db: &Snapshot,
    q: &BoundQuery,
    temps: FxHashMap<String, StoredTable>,
    opts: ExecOptions,
) -> Result<(Batch, Schema, ExecMetrics)> {
    let threads = opts.threads.max(1);
    let mut exec = Executor {
        db,
        temps,
        opts,
        metrics: std::cell::RefCell::new(ExecMetrics {
            threads,
            ..ExecMetrics::default()
        }),
    };
    for (name, plan) in &q.ctes {
        let batch = exec.exec(plan)?;
        let schema = plan.schema().clone();
        exec.temps.insert(
            name.to_lowercase(),
            StoredTable {
                schema: Schema::new(
                    schema
                        .fields
                        .iter()
                        .map(|f| crate::table::Field::new(f.name.clone(), f.dtype))
                        .collect(),
                ),
                batch,
                // CTE temporaries skip the stats pass: their scans filter
                // row-by-row without zone pruning.
                stats: None,
            },
        );
    }
    let batch = exec.exec(&q.root)?;
    let mut metrics = exec.metrics.into_inner();
    metrics.cancel_checks = exec.opts.cancel.checks();
    metrics.mem_budget_bytes = exec.opts.cancel.budget_bytes().unwrap_or(0);
    metrics.deadline_ms = exec
        .opts
        .cancel
        .deadline()
        .map_or(0, |d| d.as_millis().max(1) as u64);
    metrics.mem_peak_bytes = exec.opts.cancel.used_bytes();
    Ok((batch, q.root.schema().clone(), metrics))
}

struct Executor<'a> {
    db: &'a Snapshot,
    temps: FxHashMap<String, StoredTable>,
    opts: ExecOptions,
    /// Updated from the single-threaded operator driver only (workers never
    /// touch it), so a plain `RefCell` suffices.
    metrics: std::cell::RefCell<ExecMetrics>,
}

impl<'a> Executor<'a> {
    /// Composes a pool-job label from the operator name and the query
    /// context, so helper panics name the work that died.
    fn job_label(&self, op: &str) -> String {
        format!("{op} {}", self.opts.cancel.label())
    }

    fn exec(&self, plan: &LogicalPlan) -> Result<Batch> {
        // Per-operator poll: even a plan whose operators all stay serial and
        // sub-morsel observes deadlines between operators.
        self.opts.cancel.check()?;
        let out = self.exec_op(plan)?;
        self.charge_batch(&out)?;
        Ok(out)
    }

    /// Charges freshly materialized output columns against the memory
    /// budget. Only sole-owner columns count: shared `Arc`s (zero-copy
    /// scans, bare-column projections) are views of existing storage, not
    /// new allocations. No-op without an armed budget.
    fn charge_batch(&self, batch: &Batch) -> Result<()> {
        if self.opts.cancel.budget_bytes().is_none() {
            return Ok(());
        }
        let fresh: u64 = batch
            .cols
            .iter()
            .filter(|c| Arc::strong_count(c) == 1)
            .map(|c| c.heap_bytes())
            .sum();
        self.opts.cancel.charge(fresh)
    }

    fn exec_op(&self, plan: &LogicalPlan) -> Result<Batch> {
        // Fused profiles: drive the pipeline rooted here single-pass. Plans
        // (or subplans) that extract no pipeline fall through to the
        // materializing operators below — which are also the whole story
        // when fusion is off (`PYTOND_NO_FUSE=1` or the vectorized profile).
        if self.opts.fused {
            if let Some(pl) = pipeline::extract(plan) {
                return self.run_pipeline(plan, &pl);
            }
        }
        match plan {
            LogicalPlan::Scan {
                table,
                projection,
                pred,
                ..
            } => {
                let (batch, sel) = self.scan(table, projection.as_deref(), pred.as_ref())?;
                match sel {
                    Some(sel) => Ok(batch.gather(&sel)),
                    None => Ok(batch),
                }
            }
            LogicalPlan::Values { schema, rows } => {
                let mut cols: Vec<Column> = schema
                    .fields
                    .iter()
                    .map(|f| Column::with_capacity(f.dtype, rows.len()))
                    .collect();
                for row in rows {
                    for (c, v) in cols.iter_mut().zip(row) {
                        c.push(v.clone())?;
                    }
                }
                Ok(Batch::from_columns(cols))
            }
            LogicalPlan::Filter { input, pred } => {
                let batch = self.exec(input)?;
                let sel = self.filter_sel(&batch, pred)?;
                Ok(batch.gather(&sel))
            }
            LogicalPlan::Project { exprs, input, .. } => {
                let batch = self.exec(input)?;
                self.project(&batch, exprs, None)
            }
            LogicalPlan::Join {
                left,
                right,
                kind,
                left_keys,
                right_keys,
                residual,
                ..
            } => {
                let lb = self.exec(left)?;
                let rb = self.exec(right)?;
                self.join(&lb, &rb, *kind, left_keys, right_keys, residual.as_ref())
            }
            LogicalPlan::Aggregate {
                input, group, aggs, ..
            } => {
                let batch = self.exec(input)?;
                self.aggregate(&batch, None, group, aggs)
            }
            LogicalPlan::Sort { input, keys } => {
                let batch = self.exec(input)?;
                self.sort(&batch, keys)
            }
            LogicalPlan::Limit { input, n } => {
                let batch = self.exec(input)?;
                let keep: Vec<usize> = (0..batch.num_rows().min(*n as usize)).collect();
                Ok(batch.gather(&keep))
            }
            LogicalPlan::Window { input, order, .. } => {
                let batch = self.exec(input)?;
                self.window(&batch, order)
            }
            LogicalPlan::Distinct { input } => {
                let batch = self.exec(input)?;
                let cols: Vec<&Column> = batch.cols.iter().map(|c| c.as_ref()).collect();
                let keep = match FixedKeySpec::plan(&[&cols], true) {
                    Some(spec) if spec.width() == KeyWidth::U64 => {
                        self.distinct_rows(&spec.pack_u64(&cols).0)?
                    }
                    Some(spec) => self.distinct_rows(&spec.pack_u128(&cols).0)?,
                    None => {
                        let arena = KeyArena::encode_raw(&cols, false);
                        self.distinct_rows(&arena.dense_keys())?
                    }
                };
                Ok(batch.gather(&keep))
            }
        }
    }

    /// Resolves a scan's stored table (CTE temporaries shadow base tables).
    fn stored(&self, table: &str) -> Result<&StoredTable> {
        self.temps
            .get(&table.to_lowercase())
            .or_else(|| self.db.table(table))
            .ok_or_else(|| Error::Exec(format!("unknown table '{table}'")))
    }

    /// Zone-map pruning decision for a predicated scan: `(total zones,
    /// per-zone keep flags)`. `None` flags = nothing prunable (pruning off,
    /// or a stats-less CTE temp), every zone survives.
    fn zone_survivors(
        &self,
        stored: &StoredTable,
        pred: &BExpr,
    ) -> (usize, Option<Vec<bool>>, usize) {
        let n = stored.batch.num_rows();
        let total_zones = n.div_ceil(ZONE_ROWS).max(1);
        // A zone survives only if every prunable conjunct may match it.
        let zone_ok: Option<Vec<bool>> = if self.opts.zone_prune {
            stored.stats.as_ref().map(|stats| {
                let tests = crate::stats::prunable_tests(pred);
                let mut ok = vec![true; total_zones];
                for t in &tests {
                    let col = match t {
                        crate::stats::ZoneTest::Cmp { col, .. }
                        | crate::stats::ZoneTest::In { col, .. }
                        | crate::stats::ZoneTest::Null { col, .. } => *col,
                    };
                    // A dictionary-encoded column keeps its zone bounds in
                    // code space: translate string literals to codes, or drop
                    // the test (keeping its zones) when that's impossible.
                    let t = &match stored.batch.cols.get(col).and_then(|c| c.dict_parts()) {
                        Some((_, dict, _)) => match crate::stats::dict_zone_test(t, dict) {
                            Some(t) => t,
                            None => continue,
                        },
                        None => t.clone(),
                    };
                    let Some(zones) = stats.columns.get(col).and_then(|c| c.zones.as_ref()) else {
                        continue;
                    };
                    for (z, zone) in zones.iter().enumerate() {
                        if z < ok.len() && ok[z] && !crate::stats::zone_may_match(t, zone) {
                            ok[z] = false;
                        }
                    }
                }
                ok
            })
        } else {
            None
        };
        let survived = zone_ok
            .as_ref()
            .map_or(total_zones, |ok| ok.iter().filter(|&&k| k).count());
        (total_zones, zone_ok, survived)
    }

    /// Scans a stored table: resolves the projection and, when a predicate
    /// was pushed down, evaluates it zone-at-a-time — consulting the zone
    /// maps first so morsels whose min/max bounds refute the predicate are
    /// skipped without touching their rows. Returns the (unfiltered)
    /// projected batch plus the selection of surviving rows.
    fn scan(
        &self,
        table: &str,
        projection: Option<&[usize]>,
        pred: Option<&BExpr>,
    ) -> Result<(Batch, Option<Vec<usize>>)> {
        let stored = self.stored(table)?;
        let batch = match projection {
            None => stored.batch.clone(),
            Some(cols) => Batch {
                cols: cols.iter().map(|&i| stored.batch.cols[i].clone()).collect(),
            },
        };
        self.metrics.borrow_mut().dict_encoded_cols += batch.dict_cols() as u64;
        let Some(pred) = pred else {
            return Ok((batch, None));
        };
        let n = stored.batch.num_rows();
        let (total_zones, zone_ok, survived) = self.zone_survivors(stored, pred);
        {
            let mut m = self.metrics.borrow_mut();
            m.morsels_scanned += survived as u64;
            m.morsels_pruned += (total_zones - survived) as u64;
        }
        // Evaluate the predicate over the surviving rows against the *full*
        // stored batch (scan predicates address stored column indices).
        let full = Batch {
            cols: stored.batch.cols.clone(),
        };
        let scan_threads = if n <= ZONE_ROWS * (SPAWN_MIN_MORSELS - 1) {
            1
        } else {
            self.opts.threads
        };
        let sel = if scan_threads > 1 {
            // Parallel predicated scan: workers claim zone-aligned morsels
            // from the shared dispenser; pruned zones are claimed and
            // dropped without touching their rows. Surviving selections
            // stitch in zone order, so the selection is byte-for-byte the
            // serial scan's.
            let cancel = &self.opts.cancel;
            let outcome = pool::par_morsels(
                scan_threads,
                n,
                ZONE_ROWS,
                &self.job_label("scan"),
                |z, r| {
                    morsel_guard(cancel)?;
                    if zone_ok.as_ref().is_some_and(|ok| !ok[z]) {
                        return Ok(Vec::new());
                    }
                    let local: Vec<usize> = r.collect();
                    let mask = pred.eval_mask(&full, Some(&local))?;
                    Ok(local
                        .into_iter()
                        .zip(mask)
                        .filter_map(|(i, keep)| keep.then_some(i))
                        .collect::<Vec<usize>>())
                },
            )?;
            self.note_claims(&outcome.claimed_per_worker);
            outcome.results.concat()
        } else {
            match &zone_ok {
                // Something pruned: evaluate only the surviving candidates.
                Some(ok) if survived < total_zones => {
                    let mut rows = Vec::new();
                    for (z, keep) in ok.iter().enumerate() {
                        if *keep {
                            rows.extend(z * ZONE_ROWS..((z + 1) * ZONE_ROWS).min(n));
                        }
                    }
                    self.filter_sel_within(&full, pred, &rows)?
                }
                _ => self.filter_sel(&full, pred)?,
            }
        };
        Ok((batch, Some(sel)))
    }

    /// The worker count an operator over `n` rows should spawn: the
    /// configured count, or 1 (inline, no threads) when the input spans
    /// fewer than [`SPAWN_MIN_MORSELS`] morsels — sub-millisecond operators
    /// lose more to thread spawns than workers can win back. This gates only
    /// *who executes*; the morsel grid (and thus every result bit) is
    /// unaffected.
    fn op_threads(&self, n: usize) -> usize {
        if n <= self.opts.morsel * (SPAWN_MIN_MORSELS - 1) {
            1
        } else {
            self.opts.threads
        }
    }

    /// Adds one parallel operator's dispenser claims into the query metrics,
    /// accumulated per worker id.
    fn note_claims(&self, claimed: &[u64]) {
        let mut m = self.metrics.borrow_mut();
        if m.morsels_claimed_per_worker.len() < claimed.len() {
            m.morsels_claimed_per_worker.resize(claimed.len(), 0);
        }
        for (acc, c) in m.morsels_claimed_per_worker.iter_mut().zip(claimed) {
            *acc += c;
        }
    }

    /// Runs `f` over `(start, end)` ranges of `[0, n)` for **elementwise**
    /// work, whose per-row outputs are independent of the chunk grid. Serial
    /// (`threads = 1`) evaluates one range spanning the whole input — the
    /// exact pre-pool code path — unless the query's token is armed, in
    /// which case the serial run iterates the fixed morsel grid so a
    /// deadline or cancel trips within one morsel (elementwise outputs are
    /// chunk-independent, so the concatenated result is identical). Parallel
    /// runs claim morsel-grid ranges from the shared dispenser and return
    /// results in morsel order. `op` names the operator for pool-job panic
    /// diagnostics.
    fn par_elementwise<T: Send>(
        &self,
        op: &str,
        n: usize,
        f: impl Fn(usize, usize) -> Result<T> + Sync,
    ) -> Result<Vec<T>> {
        let threads = self.op_threads(n);
        if threads <= 1 {
            if !self.opts.cancel.is_armed() && fault::active().is_none() {
                return Ok(vec![f(0, n)?]);
            }
            let morsel = self.opts.morsel.max(1);
            let count = n.div_ceil(morsel);
            let mut out = Vec::with_capacity(count);
            for i in 0..count {
                morsel_guard(&self.opts.cancel)?;
                out.push(f(i * morsel, ((i + 1) * morsel).min(n))?);
            }
            return Ok(out);
        }
        let cancel = &self.opts.cancel;
        let outcome =
            pool::par_morsels(threads, n, self.opts.morsel, &self.job_label(op), |_, r| {
                morsel_guard(cancel)?;
                f(r.start, r.end)
            })?;
        self.note_claims(&outcome.claimed_per_worker);
        Ok(outcome.results)
    }

    /// Runs `f` over the **fixed** morsel grid of `[0, n)` at every thread
    /// count — the grid for order-sensitive partials (float aggregation),
    /// where the merge tree must not depend on the worker count. See
    /// `docs/EXECUTION.md` § determinism. Every grid step passes through the
    /// morsel guard (cancellation poll + fault point).
    fn par_fixed<T: Send>(
        &self,
        op: &str,
        n: usize,
        f: impl Fn(usize, usize) -> Result<T> + Sync,
    ) -> Result<Vec<T>> {
        let threads = self.op_threads(n);
        let cancel = &self.opts.cancel;
        let outcome =
            pool::par_morsels(threads, n, self.opts.morsel, &self.job_label(op), |_, r| {
                morsel_guard(cancel)?;
                f(r.start, r.end)
            })?;
        if threads > 1 {
            self.note_claims(&outcome.claimed_per_worker);
        }
        Ok(outcome.results)
    }

    /// Builds a hash-join build side, partitioned and built concurrently
    /// when the input is large enough and workers are available. Polls the
    /// token and charges the build table against the memory budget (one key
    /// plus row id plus bucket overhead per row — a coarse estimate) before
    /// allocating.
    fn build_index<K: Hash + Eq + Copy + Send + Sync>(
        &self,
        keys: &[Option<K>],
    ) -> Result<PartitionedIndex<K>> {
        self.opts.cancel.check()?;
        self.opts
            .cancel
            .charge((keys.len() * (std::mem::size_of::<K>() + 24)) as u64)?;
        let idx = PartitionedIndex::build(keys, self.opts.threads);
        if idx.partitioned() {
            self.metrics.borrow_mut().partitions_built += idx.num_partitions() as u64;
        }
        Ok(idx)
    }

    /// First-occurrence distinct over per-row keys. Serial: one hash-set
    /// scan. Parallel: morsel-local first occurrences, merged through one
    /// global set in morsel order — the keep list is identical to the serial
    /// one by construction.
    fn distinct_rows<K: Hash + Eq + Copy + Send + Sync>(&self, keys: &[K]) -> Result<Vec<usize>> {
        let threads = self.op_threads(keys.len());
        if threads <= 1 {
            return Ok(distinct_keep(keys));
        }
        let cancel = &self.opts.cancel;
        let outcome = pool::par_morsels(
            threads,
            keys.len(),
            self.opts.morsel,
            &self.job_label("distinct"),
            |_, r| {
                morsel_guard(cancel)?;
                let mut seen: FxHashSet<K> = FxHashSet::default();
                let mut keep = Vec::new();
                for i in r {
                    if seen.insert(keys[i]) {
                        keep.push(i);
                    }
                }
                Ok(keep)
            },
        )?;
        self.note_claims(&outcome.claimed_per_worker);
        let mut global: FxHashSet<K> = FxHashSet::default();
        let mut keep = Vec::new();
        for local in outcome.results {
            for i in local {
                if global.insert(keys[i]) {
                    keep.push(i);
                }
            }
        }
        Ok(keep)
    }

    /// Like [`Executor::filter_sel`], restricted to the given candidate rows.
    fn filter_sel_within(
        &self,
        batch: &Batch,
        pred: &BExpr,
        candidates: &[usize],
    ) -> Result<Vec<usize>> {
        let chunks = self.par_elementwise("filter", candidates.len(), |start, end| {
            let local = &candidates[start..end];
            let mask = pred.eval_mask(batch, Some(local))?;
            Ok(local
                .iter()
                .zip(mask)
                .filter_map(|(&i, keep)| keep.then_some(i))
                .collect::<Vec<usize>>())
        })?;
        Ok(chunks.concat())
    }

    /// Evaluates a predicate, returning the surviving row indices.
    fn filter_sel(&self, batch: &Batch, pred: &BExpr) -> Result<Vec<usize>> {
        let n = batch.num_rows();
        let chunks = self.par_elementwise("filter", n, |start, end| {
            let sel: Vec<usize> = (start..end).collect();
            let mask = pred.eval_mask(batch, Some(&sel))?;
            Ok(sel
                .into_iter()
                .zip(mask)
                .filter_map(|(i, keep)| keep.then_some(i))
                .collect::<Vec<usize>>())
        })?;
        Ok(chunks.concat())
    }

    fn project(&self, batch: &Batch, exprs: &[BExpr], sel: Option<&[usize]>) -> Result<Batch> {
        let n = sel.map_or(batch.num_rows(), |s| s.len());
        let mut out_cols: Vec<Arc<Column>> = Vec::with_capacity(exprs.len());
        for e in exprs {
            // Bare column without a selection: share the input column
            // (permutation projections — e.g. the join-reorder restore
            // projection — cost one Arc clone instead of a copy).
            if sel.is_none() {
                if let BExpr::Col(i) = e {
                    out_cols.push(batch.cols[*i].clone());
                    continue;
                }
            }
            let chunks = self.par_elementwise("project", n, |start, end| {
                let local_sel: Vec<usize> = match sel {
                    Some(s) => s[start..end].to_vec(),
                    None => (start..end).collect(),
                };
                e.eval(batch, Some(&local_sel))
            })?;
            let mut it = chunks.into_iter();
            let mut col = it.next().unwrap_or_else(|| Column::new(DType::Int));
            for c in it {
                col.append(&c)?;
            }
            out_cols.push(Arc::new(col));
        }
        Ok(Batch { cols: out_cols })
    }

    // ---------------- join ----------------

    fn join(
        &self,
        left: &Batch,
        right: &Batch,
        kind: JKind,
        left_keys: &[BExpr],
        right_keys: &[BExpr],
        residual: Option<&BExpr>,
    ) -> Result<Batch> {
        // Keyless joins.
        if left_keys.is_empty() {
            return self.keyless_join(left, right, kind, residual);
        }
        let mut lkey_cols: Vec<Column> = left_keys
            .iter()
            .map(|e| e.eval(left, None))
            .collect::<Result<_>>()?;
        let mut rkey_cols: Vec<Column> = right_keys
            .iter()
            .map(|e| e.eval(right, None))
            .collect::<Result<_>>()?;
        // String key pairs: unify both sides into one shared dictionary so
        // `FixedKeySpec` can pack 32-bit codes instead of byte-encoding every
        // row. Skipped under the no-dict oracle, which exercises the byte
        // fallback end to end.
        if !crate::db::no_dict() {
            for i in 0..lkey_cols.len() {
                if lkey_cols[i].dtype() == DType::Str && rkey_cols[i].dtype() == DType::Str {
                    let (l, r) = pytond_common::unify_dict_pair(&lkey_cols[i], &rkey_cols[i]);
                    lkey_cols[i] = l;
                    rkey_cols[i] = r;
                }
            }
        }
        let lrefs: Vec<&Column> = lkey_cols.iter().collect();
        let rrefs: Vec<&Column> = rkey_cols.iter().collect();
        // Build/probe side selection: the hash table defaults to the right
        // input, but when the left side's (actual, post-filter) cardinality
        // is smaller and the join kind permits, build on the left instead and
        // probe with the right — output order is preserved either way.
        let flip = matches!(kind, JKind::Inner | JKind::Semi | JKind::Anti)
            && left.num_rows() < right.num_rows();
        if flip {
            self.metrics.borrow_mut().joins_flipped += 1;
        }
        // Pick the key layout jointly over both sides; the packed fast paths
        // and the byte fallback share one generic build/probe implementation.
        match FixedKeySpec::plan(&[&lrefs, &rrefs], false) {
            Some(spec) if spec.width() == KeyWidth::U64 => {
                let lk = opt_keys(spec.pack_u64(&lrefs));
                let rk = opt_keys(spec.pack_u64(&rrefs));
                if flip {
                    self.join_build_left(left, right, kind, &lk, &rk, residual)
                } else {
                    self.join_with_keys(left, right, kind, &lk, &rk, residual)
                }
            }
            Some(spec) => {
                let lk = opt_keys(spec.pack_u128(&lrefs));
                let rk = opt_keys(spec.pack_u128(&rrefs));
                if flip {
                    self.join_build_left(left, right, kind, &lk, &rk, residual)
                } else {
                    self.join_with_keys(left, right, kind, &lk, &rk, residual)
                }
            }
            None => {
                // Per-position encodings keep fallback equality identical to
                // what the packed path would compute (exact int-like keys,
                // f64-normalized only where a float column participates).
                let enc = sql_key_encodings(&[&lrefs, &rrefs]);
                let la = KeyArena::encode(&lrefs, &enc, true);
                let ra = KeyArena::encode(&rrefs, &enc, true);
                if flip {
                    self.join_build_left(left, right, kind, &la.keys(), &ra.keys(), residual)
                } else {
                    self.join_with_keys(left, right, kind, &la.keys(), &ra.keys(), residual)
                }
            }
        }
    }

    /// Hash join building on the **left** (smaller) side and probing with the
    /// right — used for inner/semi/anti joins when the left input is smaller.
    /// Match pairs are re-emitted in left-major order (for each left row, its
    /// matching right rows in right-row order), which is exactly the order
    /// [`Executor::join_with_keys`] produces, so flipping is invisible to
    /// results.
    fn join_build_left<K: Hash + Eq + Copy + Send + Sync>(
        &self,
        left: &Batch,
        right: &Batch,
        kind: JKind,
        lkeys: &[Option<K>],
        rkeys: &[Option<K>],
        residual: Option<&BExpr>,
    ) -> Result<Batch> {
        let ln = left.num_rows();
        // Build: hash the left side (partitioned + concurrent when large).
        let table = self.build_index(lkeys)?;
        // Probe: right side in parallel morsels, recording matches per left
        // row.
        let probe_chunks = self.par_elementwise("join-probe", right.num_rows(), |start, end| {
            let mut pairs: Vec<(u32, u32)> = Vec::new(); // (left row, right row)
            let mut matched_left: Vec<u32> = Vec::new();
            for (j, rk) in rkeys.iter().enumerate().take(end).skip(start) {
                if let Some(rows) = rk.as_ref().and_then(|k| table.get(k)) {
                    match kind {
                        JKind::Semi | JKind::Anti => matched_left.extend_from_slice(rows),
                        _ => pairs.extend(rows.iter().map(|&l| (l, j as u32))),
                    }
                }
            }
            Ok((pairs, matched_left))
        })?;
        match kind {
            JKind::Semi | JKind::Anti => {
                let mut matched = vec![false; ln];
                for (_, ml) in &probe_chunks {
                    for &l in ml {
                        matched[l as usize] = true;
                    }
                }
                let want = matches!(kind, JKind::Semi);
                let keep: Vec<usize> = (0..ln).filter(|&i| matched[i] == want).collect();
                let mut out = left.gather(&keep);
                if let Some(res) = residual {
                    let sel = self.filter_sel(&out, res)?;
                    out = out.gather(&sel);
                }
                Ok(out)
            }
            _ => {
                // Regroup pairs left-major; right rows arrive in ascending
                // order because probe chunks are merged in range order.
                let mut matches: Vec<Vec<u32>> = vec![Vec::new(); ln];
                for (pairs, _) in &probe_chunks {
                    for &(l, r) in pairs {
                        matches[l as usize].push(r);
                    }
                }
                let mut li: Vec<usize> = Vec::new();
                let mut ri: Vec<usize> = Vec::new();
                for (l, rs) in matches.iter().enumerate() {
                    for &r in rs {
                        li.push(l);
                        ri.push(r as usize);
                    }
                }
                let mut cols = left.gather(&li).cols;
                cols.extend(right.gather(&ri).cols);
                let mut out = Batch { cols };
                if let Some(res) = residual {
                    let sel = self.filter_sel(&out, res)?;
                    out = out.gather(&sel);
                }
                Ok(out)
            }
        }
    }

    /// Hash join over precomputed per-row keys (`None` = NULL key, never
    /// matches). `K` is `u64`/`u128` on the packed fast path and a borrowed
    /// `&[u8]` arena slice on the fallback — either way `Copy`, so the build
    /// side inserts without cloning.
    fn join_with_keys<K: Hash + Eq + Copy + Send + Sync>(
        &self,
        left: &Batch,
        right: &Batch,
        kind: JKind,
        lkeys: &[Option<K>],
        rkeys: &[Option<K>],
        residual: Option<&BExpr>,
    ) -> Result<Batch> {
        // Build: hash the right side (partitioned + concurrent when large).
        let table = self.build_index(rkeys)?;
        // Probe: left side, in parallel morsels.
        let keep_unmatched_left = matches!(kind, JKind::Left | JKind::Full);
        let probe_chunks = self.par_elementwise("join-probe", left.num_rows(), |start, end| {
            let mut li: Vec<Option<usize>> = Vec::new();
            let mut ri: Vec<Option<usize>> = Vec::new();
            let mut matched_right: Vec<u32> = Vec::new();
            for (i, lk) in lkeys.iter().enumerate().take(end).skip(start) {
                let matches = lk.as_ref().and_then(|k| table.get(k));
                match (matches, kind) {
                    (Some(rows), JKind::Semi) => {
                        if !rows.is_empty() {
                            li.push(Some(i));
                            ri.push(None);
                        }
                    }
                    (Some(rows), JKind::Anti) => {
                        if rows.is_empty() {
                            li.push(Some(i));
                            ri.push(None);
                        }
                    }
                    (None, JKind::Anti) => {
                        li.push(Some(i));
                        ri.push(None);
                    }
                    (None, JKind::Semi) => {}
                    (Some(rows), _) => {
                        for &r in rows {
                            li.push(Some(i));
                            ri.push(Some(r as usize));
                            matched_right.push(r);
                        }
                    }
                    (None, _) => {
                        if keep_unmatched_left {
                            li.push(Some(i));
                            ri.push(None);
                        }
                    }
                }
            }
            Ok((li, ri, matched_right))
        })?;
        let mut left_idx: Vec<Option<usize>> = Vec::new();
        let mut right_idx: Vec<Option<usize>> = Vec::new();
        let mut right_matched = vec![false; right.num_rows()];
        for (li, ri, mr) in probe_chunks {
            left_idx.extend(li);
            right_idx.extend(ri);
            for r in mr {
                right_matched[r as usize] = true;
            }
        }
        if matches!(kind, JKind::Right | JKind::Full) {
            for (r, m) in right_matched.iter().enumerate() {
                if !m {
                    left_idx.push(None);
                    right_idx.push(Some(r));
                }
            }
        }
        let mut out = match kind {
            JKind::Semi | JKind::Anti => {
                // Invariant (not reachable from user input): the probe arms
                // for semi/anti only ever push `Some(left row)`, and the
                // right-outer backfill above is unreachable for these kinds.
                let li: Vec<usize> = left_idx
                    .iter()
                    .map(|x| x.expect("semi/anti probes emit only left rows"))
                    .collect();
                left.gather(&li)
            }
            _ => {
                let mut cols = left.gather_opt(&left_idx).cols;
                cols.extend(right.gather_opt(&right_idx).cols);
                Batch { cols }
            }
        };
        if let Some(res) = residual {
            let sel = self.filter_sel(&out, res)?;
            out = out.gather(&sel);
        }
        Ok(out)
    }

    fn keyless_join(
        &self,
        left: &Batch,
        right: &Batch,
        kind: JKind,
        residual: Option<&BExpr>,
    ) -> Result<Batch> {
        match kind {
            JKind::Semi | JKind::Anti => {
                // Uncorrelated EXISTS: keep all or nothing.
                let keep = (right.num_rows() > 0) == matches!(kind, JKind::Semi);
                if keep {
                    Ok(left.clone())
                } else {
                    Ok(left.gather(&[]))
                }
            }
            _ => {
                let (ln, rn) = (left.num_rows(), right.num_rows());
                let mut li = Vec::with_capacity(ln * rn);
                let mut ri = Vec::with_capacity(ln * rn);
                for i in 0..ln {
                    for j in 0..rn {
                        li.push(i);
                        ri.push(j);
                    }
                }
                let mut cols = left.gather(&li).cols;
                cols.extend(right.gather(&ri).cols);
                let mut out = Batch { cols };
                if let Some(res) = residual {
                    let sel = self.filter_sel(&out, res)?;
                    out = out.gather(&sel);
                }
                Ok(out)
            }
        }
    }

    // ---------------- aggregate ----------------

    fn aggregate(
        &self,
        batch: &Batch,
        sel: Option<&[usize]>,
        group: &[BExpr],
        aggs: &[BAgg],
    ) -> Result<Batch> {
        let n = sel.map_or(batch.num_rows(), |s| s.len());
        // Evaluate group keys and aggregate arguments once, over the selection.
        let key_cols: Vec<Column> = group
            .iter()
            .map(|e| self.eval_parallel(batch, e, sel, n))
            .collect::<Result<_>>()?;
        // Deduplicate argument expressions so `SUM(v) + AVG(v)` style plans
        // evaluate `v` once and fan the column out to every consumer — the
        // same dedup the fused aggregation sink applies per chunk.
        let (arg_map, uniq_exprs) = arg_dedup(aggs);
        let uniq_cols: Vec<Column> = uniq_exprs
            .iter()
            .map(|e| self.eval_parallel(batch, e, sel, n))
            .collect::<Result<_>>()?;
        let arg_refs: Vec<Option<&Column>> =
            arg_map.iter().map(|m| m.map(|u| &uniq_cols[u])).collect();
        self.aggregate_from_cols(n, key_cols, &arg_refs, group, aggs)
    }

    /// The aggregation tail shared by the materializing operator and the
    /// fused pipeline sink: group-key and argument columns in, final batch
    /// out. The fixed morsel grid over `n` rows (and the ascending merge of
    /// its partials) depends only on `(n, opts.morsel)`, so any producer
    /// that delivers the same column *values* in the same row order gets a
    /// bit-identical result — the keystone of the fused/unfused equivalence.
    fn aggregate_from_cols(
        &self,
        n: usize,
        key_cols: Vec<Column>,
        arg_cols: &[Option<&Column>],
        group: &[BExpr],
        aggs: &[BAgg],
    ) -> Result<Batch> {
        let arg_dtypes: Vec<Option<DType>> =
            arg_cols.iter().map(|c| c.map(Column::dtype)).collect();
        // Group keys take the packed fast path when every key column is
        // fixed-width (group semantics: NULL is a key value, so the layout
        // folds a validity bit in); strings/floats fall back to arena-encoded
        // byte keys. Scalar aggregation is a single constant key.
        let krefs: Vec<&Column> = key_cols.iter().collect();
        let mut states = if group.is_empty() {
            self.agg_states(n, &vec![0u64; n], aggs, arg_cols, &arg_dtypes)?
        } else {
            match FixedKeySpec::plan(&[&krefs], true) {
                Some(spec) if spec.width() == KeyWidth::U64 => {
                    self.agg_states(n, &spec.pack_u64(&krefs).0, aggs, arg_cols, &arg_dtypes)?
                }
                Some(spec) => {
                    self.agg_states(n, &spec.pack_u128(&krefs).0, aggs, arg_cols, &arg_dtypes)?
                }
                None => {
                    let enc = sql_key_encodings(&[&krefs]);
                    let arena = KeyArena::encode(&krefs, &enc, false);
                    self.agg_states(n, &arena.dense_keys(), aggs, arg_cols, &arg_dtypes)?
                }
            }
        };
        states.sort_by_key(|s| s.first_row);

        // Scalar aggregation over empty input still yields one row.
        if group.is_empty() && states.is_empty() {
            states.push(GroupState::new(0, aggs, &arg_dtypes));
        }

        // Assemble output: group keys then aggregates.
        let mut out_cols = Vec::with_capacity(group.len() + aggs.len());
        let firsts: Vec<usize> = states.iter().map(|s| s.first_row).collect();
        for k in &key_cols {
            out_cols.push(k.gather(&firsts));
        }
        for (ai, agg) in aggs.iter().enumerate() {
            let vals: Vec<Value> = states.iter().map(|s| s.finalize(ai, agg)).collect();
            out_cols.push(Column::from_values(&vals)?);
        }
        Ok(Batch::from_columns(out_cols))
    }

    /// Partial aggregation over precomputed per-row group keys on the
    /// **fixed morsel grid**, merged by global first occurrence. `K` is a
    /// packed `u64`/`u128` word or a borrowed byte slice; partial maps never
    /// clone keys.
    ///
    /// Determinism: partials are computed per fixed-size morsel (the grid
    /// depends only on `n` and `opts.morsel`, never on the worker count) and
    /// merged in ascending morsel order, each partial's groups visited in
    /// their local first-occurrence order. Float sums therefore fold over
    /// the *same tree* at every thread count — the engine's "fixed merge
    /// order" policy (`docs/EXECUTION.md`) — and the global group order is
    /// exactly global first-occurrence order.
    fn agg_states<K: Hash + Eq + Copy + Send + Sync>(
        &self,
        n: usize,
        keys: &[K],
        aggs: &[BAgg],
        arg_cols: &[Option<&Column>],
        arg_dtypes: &[Option<DType>],
    ) -> Result<Vec<GroupState>> {
        let partials = self.par_fixed("agg-partial", n, |start, end| {
            // Pass 1: assign a morsel-local group id per row, recording keys
            // in local first-occurrence order.
            let mut map: FxHashMap<K, usize> = FxHashMap::default();
            let mut order: Vec<K> = Vec::new();
            let mut states: Vec<GroupState> = Vec::new();
            let mut gids: Vec<u32> = Vec::with_capacity(end - start);
            for (i, key) in keys.iter().enumerate().take(end).skip(start) {
                let g = match map.get(key) {
                    Some(&g) => g,
                    None => {
                        map.insert(*key, states.len());
                        order.push(*key);
                        states.push(GroupState::new(i, aggs, arg_dtypes));
                        states.len() - 1
                    }
                };
                gids.push(g as u32);
            }
            // Pass 2: accumulate column-major — one typed loop per aggregate.
            for (ai, agg) in aggs.iter().enumerate() {
                accumulate(&mut states, ai, agg, &gids, start, arg_cols[ai])?;
            }
            Ok((order, states))
        })?;
        // Merge partials in ascending morsel order — the explicit merge
        // order every thread count shares. Each merge step polls the token
        // and charges newly retained group states against the budget.
        let state_bytes = std::mem::size_of::<GroupState>() + 32 * aggs.len().max(1);
        let mut global: FxHashMap<K, usize> = FxHashMap::default();
        let mut states: Vec<GroupState> = Vec::new();
        for (order, part_states) in partials {
            self.opts.cancel.check()?;
            let before = states.len();
            for (key, part) in order.into_iter().zip(part_states) {
                match global.get(&key) {
                    Some(&g) => states[g].merge(&part, aggs),
                    None => {
                        global.insert(key, states.len());
                        states.push(part);
                    }
                }
            }
            self.opts
                .cancel
                .charge(((states.len() - before) * state_bytes) as u64)?;
        }
        Ok(states)
    }

    fn eval_parallel(
        &self,
        batch: &Batch,
        e: &BExpr,
        sel: Option<&[usize]>,
        n: usize,
    ) -> Result<Column> {
        let chunks = self.par_elementwise("eval", n, |start, end| {
            let local: Vec<usize> = match sel {
                Some(s) => s[start..end].to_vec(),
                None => (start..end).collect(),
            };
            e.eval(batch, Some(&local))
        })?;
        let mut it = chunks.into_iter();
        let mut col = it.next().unwrap_or_else(|| Column::new(DType::Int));
        for c in it {
            col.append(&c)?;
        }
        Ok(col)
    }

    // ---------------- sort / window ----------------

    fn sort(&self, batch: &Batch, keys: &[(BExpr, bool)]) -> Result<Batch> {
        let n = batch.num_rows();
        let key_cols: Vec<(Column, bool)> = keys
            .iter()
            .map(|(e, asc)| Ok((e.eval(batch, None)?, *asc)))
            .collect::<Result<_>>()?;
        let indices = self.sorted_indices(n, &key_cols);
        Ok(batch.gather(&indices))
    }

    fn sorted_indices(&self, n: usize, key_cols: &[(Column, bool)]) -> Vec<usize> {
        let cmp = |&a: &usize, &b: &usize| {
            for (col, asc) in key_cols {
                let ord = col.get(a).total_cmp(&col.get(b));
                let ord = if *asc { ord } else { ord.reverse() };
                if ord != std::cmp::Ordering::Equal {
                    return ord;
                }
            }
            a.cmp(&b) // stable tie-break on original position
        };
        let mut idx: Vec<usize> = (0..n).collect();
        if self.opts.threads > 1 && n > 4 * self.opts.morsel {
            // Parallel chunk sort (pool tasks) + k-way merge. The comparator
            // totally orders rows (ties broken on original position), so the
            // merged output is the serial sort's, independent of chunking.
            let chunk = n.div_ceil(self.opts.threads);
            let bounds: Vec<&[usize]> = idx.chunks(chunk).collect();
            let chunks: Vec<Vec<usize>> = pool::par_indexed(
                self.opts.threads,
                bounds.len(),
                &self.job_label("sort"),
                |ci| {
                    let mut c = bounds[ci].to_vec();
                    c.sort_by(cmp);
                    c
                },
            );
            // k-way merge
            let mut heads = vec![0usize; chunks.len()];
            let mut out = Vec::with_capacity(n);
            loop {
                let mut best: Option<(usize, usize)> = None; // (chunk, idx value)
                for (ci, c) in chunks.iter().enumerate() {
                    if heads[ci] < c.len() {
                        let cand = c[heads[ci]];
                        best = match best {
                            None => Some((ci, cand)),
                            Some((bci, bv)) => {
                                if cmp(&cand, &bv) == std::cmp::Ordering::Less {
                                    Some((ci, cand))
                                } else {
                                    Some((bci, bv))
                                }
                            }
                        };
                    }
                }
                match best {
                    Some((ci, v)) => {
                        out.push(v);
                        heads[ci] += 1;
                    }
                    None => break,
                }
            }
            out
        } else {
            idx.sort_by(cmp);
            idx
        }
    }

    fn window(&self, batch: &Batch, order: &[(BExpr, bool)]) -> Result<Batch> {
        let n = batch.num_rows();
        let ranks: Vec<i64> = if order.is_empty() {
            (1..=n as i64).collect()
        } else {
            let key_cols: Vec<(Column, bool)> = order
                .iter()
                .map(|(e, asc)| Ok((e.eval(batch, None)?, *asc)))
                .collect::<Result<_>>()?;
            let sorted = self.sorted_indices(n, &key_cols);
            let mut ranks = vec![0i64; n];
            for (pos, &row) in sorted.iter().enumerate() {
                ranks[row] = pos as i64 + 1;
            }
            ranks
        };
        let mut cols = batch.cols.clone();
        cols.push(Arc::new(Column::from_i64(ranks)));
        Ok(Batch { cols })
    }

    // ---------------- fused pipeline driver ----------------

    /// Drives one extracted pipeline single-pass: every claimed morsel flows
    /// source → stages → sink entirely while hot in cache.
    ///
    /// Determinism: the morsel grid is zone-aligned for fused scans (the
    /// same grid the materializing scan uses) and `opts.morsel`-aligned for
    /// materialized sources; chunks merge in ascending morsel order. A
    /// materialize sink therefore stitches exactly the rows the
    /// operator-at-a-time path would emit, in the same order; an aggregate
    /// sink reconstructs the *narrow* key/argument columns in that same
    /// order and hands them to [`Executor::aggregate_from_cols`], whose
    /// fixed grid over the concatenated rows is byte-identical to the
    /// unfused one. Fused ≡ unfused, bit for bit, by construction.
    fn run_pipeline(&self, plan: &LogicalPlan, pl: &Pipeline<'_>) -> Result<Batch> {
        // Source: a predicated scan fuses (zone-aligned grid, claim-time
        // zone-map skip); any breaker materializes once, then chunks.
        let (source, n, step, threads) = match pl.source {
            LogicalPlan::Scan {
                table,
                projection,
                pred: Some(pred),
                ..
            } => {
                let stored = self.stored(table)?;
                let n = stored.batch.num_rows();
                let (total_zones, zone_ok, survived) = self.zone_survivors(stored, pred);
                {
                    let mut m = self.metrics.borrow_mut();
                    m.morsels_scanned += survived as u64;
                    m.morsels_pruned += (total_zones - survived) as u64;
                }
                let full = Batch {
                    cols: stored.batch.cols.clone(),
                };
                let proj = match projection {
                    None => stored.batch.clone(),
                    Some(cols) => Batch {
                        cols: cols.iter().map(|&i| stored.batch.cols[i].clone()).collect(),
                    },
                };
                self.metrics.borrow_mut().dict_encoded_cols += proj.dict_cols() as u64;
                let threads = if n <= ZONE_ROWS * (SPAWN_MIN_MORSELS - 1) {
                    1
                } else {
                    self.opts.threads
                };
                (
                    PSource::Scan {
                        full,
                        proj,
                        pred,
                        zone_ok,
                    },
                    n,
                    ZONE_ROWS,
                    threads,
                )
            }
            src => {
                let batch = self.exec(src)?;
                let n = batch.num_rows();
                (
                    PSource::Mat(batch),
                    n,
                    self.opts.morsel.max(1),
                    self.op_threads(n),
                )
            }
        };
        // Stage preparation: join build sides execute here (recursively —
        // possibly as pipelines of their own), before morsels start flowing.
        let stages: Vec<PStage<'_>> = pl
            .stages
            .iter()
            .map(|s| self.prepare_stage(s))
            .collect::<Result<_>>()?;
        {
            let mut m = self.metrics.borrow_mut();
            m.pipelines += 1;
            m.pipeline_ops.push(pl.ops() as u64);
            m.intermediates_avoided += pl.intermediates_avoided() as u64;
            m.dict_probe_pipelines += u64::from(stages.iter().any(
                |s| matches!(s, PStage::Probe(p) if p.build_dicts.iter().any(Option::is_some)),
            ));
        }
        // Drive. Each claim passes the morsel guard (fault point + cancel
        // poll); each stage boundary polls again, so deadlines, budgets and
        // explicit cancels trip within one morsel even mid-pipeline.
        let cancel = &self.opts.cancel;
        let outcome = pool::par_morsels(threads, n, step, &self.job_label("pipeline"), |z, r| {
            morsel_guard(cancel)?;
            let Some(mut chunk) = source_chunk(&source, z, r)? else {
                return Ok(None);
            };
            for st in &stages {
                chunk = apply_stage(st, chunk, cancel)?;
            }
            finish_chunk(&pl.sink, chunk).map(Some)
        })?;
        if threads > 1 {
            self.note_claims(&outcome.claimed_per_worker);
        }
        // Merge surviving chunks in morsel order. The total surviving row
        // count is known before the merge starts, so the accumulating
        // columns reserve once instead of repeatedly doubling.
        let chunks: Vec<ChunkOut> = outcome.results.into_iter().flatten().collect();
        let total: usize = chunks
            .iter()
            .map(|c| match c {
                ChunkOut::Batch(b) => b.num_rows(),
                ChunkOut::Agg { rows, .. } => *rows,
            })
            .sum();
        match &pl.sink {
            Sink::Materialize => {
                let mut cols: Option<Vec<Column>> = None;
                for out in chunks {
                    let ChunkOut::Batch(b) = out else {
                        unreachable!("materialize sink emits batches");
                    };
                    match &mut cols {
                        None => {
                            let mut first: Vec<Column> = b
                                .cols
                                .into_iter()
                                .map(|c| Arc::try_unwrap(c).unwrap_or_else(|a| (*a).clone()))
                                .collect();
                            let extra = total - first.first().map_or(total, Column::len);
                            for c in &mut first {
                                c.reserve(extra);
                            }
                            cols = Some(first);
                        }
                        Some(acc) => {
                            self.opts.cancel.check()?;
                            for (a, c) in acc.iter_mut().zip(&b.cols) {
                                a.append(c)?;
                            }
                        }
                    }
                }
                Ok(match cols {
                    Some(cols) => Batch::from_columns(cols),
                    None => empty_batch(plan.schema()),
                })
            }
            Sink::Aggregate { group, aggs } => {
                let (arg_map, uniq_exprs) = arg_dedup(aggs);
                let mut merged: Option<(Vec<Column>, Vec<Column>)> = None;
                let mut rows = 0usize;
                for out in chunks {
                    let ChunkOut::Agg {
                        rows: r,
                        keys,
                        args,
                    } = out
                    else {
                        unreachable!("aggregate sink emits key/arg columns");
                    };
                    rows += r;
                    match &mut merged {
                        None => {
                            let (mut keys, mut args) = (keys, args);
                            for c in keys.iter_mut().chain(args.iter_mut()) {
                                c.reserve(total - r);
                            }
                            merged = Some((keys, args));
                        }
                        Some((kc, ac)) => {
                            self.opts.cancel.check()?;
                            for (a, b) in kc.iter_mut().zip(&keys) {
                                a.append(b)?;
                            }
                            for (a, b) in ac.iter_mut().zip(&args) {
                                a.append(b)?;
                            }
                        }
                    }
                }
                let (key_cols, uniq_cols) = match merged {
                    Some(m) => m,
                    // Every zone pruned / all rows filtered: typed empties
                    // from the stage chain's static output dtypes.
                    None => {
                        let LogicalPlan::Aggregate { input, .. } = plan else {
                            unreachable!("aggregate sink under a non-aggregate root");
                        };
                        let dts: Vec<DType> =
                            input.schema().fields.iter().map(|f| f.dtype).collect();
                        (
                            group.iter().map(|e| Column::new(e.dtype(&dts))).collect(),
                            uniq_exprs
                                .iter()
                                .map(|e| Column::new(e.dtype(&dts)))
                                .collect(),
                        )
                    }
                };
                // Expand the deduplicated columns back to one slot per
                // aggregate — shared slots borrow the same merged column.
                let arg_refs: Vec<Option<&Column>> =
                    arg_map.iter().map(|m| m.map(|u| &uniq_cols[u])).collect();
                self.aggregate_from_cols(rows, key_cols, &arg_refs, group, aggs)
            }
        }
    }

    /// Turns an extracted stage into its runtime form; probe stages execute
    /// their build side and construct the hash index here.
    fn prepare_stage<'q>(&self, st: &'q Stage<'_>) -> Result<PStage<'q>> {
        Ok(match st {
            Stage::Filter(p) => PStage::Filter(p),
            Stage::Project(e) => PStage::Project(e),
            Stage::Probe(pr) => {
                let right = self.exec(pr.build)?;
                // String-typed build keys define the probe's canonical code
                // space: dictionary-encoded columns keep their dictionary,
                // plain string outputs (expression results) get a fresh one.
                // The spec planned these positions as 32-bit dict slots (see
                // `pipeline::probe_spec`), so packing needs `DictStr` here.
                let mut build_dicts: Vec<Option<Arc<pytond_common::Dictionary>>> = Vec::new();
                let rkey_cols: Vec<Column> = pr
                    .right_keys
                    .iter()
                    .map(|e| {
                        let c = e.eval(&right, None)?;
                        Ok(if c.dtype() == DType::Str {
                            let enc = c.encode_str();
                            let (_, dict, _) = enc.dict_parts().expect("encode_str yields DictStr");
                            build_dicts.push(Some(dict.clone()));
                            enc
                        } else {
                            build_dicts.push(None);
                            c
                        })
                    })
                    .collect::<Result<_>>()?;
                let rrefs: Vec<&Column> = rkey_cols.iter().collect();
                let index = match pr.spec.width() {
                    KeyWidth::U64 => {
                        ProbeIndex::U64(self.build_index(&opt_keys(pr.spec.pack_u64(&rrefs)))?)
                    }
                    KeyWidth::U128 => {
                        ProbeIndex::U128(self.build_index(&opt_keys(pr.spec.pack_u128(&rrefs)))?)
                    }
                };
                PStage::Probe(PProbe {
                    kind: pr.kind,
                    left_keys: pr.left_keys,
                    residual: pr.residual,
                    spec: &pr.spec,
                    right,
                    index,
                    build_dicts,
                })
            }
        })
    }
}

// ---------------- pipeline chunk machinery ----------------
//
// Everything below runs inside worker closures, so it is free functions
// over `Sync` state only (columns, prepared stages, the cancel token) —
// never the executor's `RefCell` metrics.

/// Live rows of a chunk: a contiguous source range (evaluated through the
/// sliced kernel entry points, no index vector) or explicit survivors.
enum Rows {
    Range(std::ops::Range<usize>),
    Sel(Vec<usize>),
}

impl Rows {
    fn len(&self) -> usize {
        match self {
            Rows::Range(r) => r.len(),
            Rows::Sel(s) => s.len(),
        }
    }
}

/// One morsel's worth of data flowing through a pipeline: a batch of
/// columns (`Arc`-shared source columns, or a morsel-sized materialization
/// a stage produced — `owned`), plus the selection of live rows.
struct Chunk {
    batch: Batch,
    rows: Rows,
    owned: bool,
}

/// A pipeline's prepared source.
enum PSource<'a> {
    /// Fused predicated scan: the full stored batch (scan predicates
    /// address stored column indices), the projected view chunks flow from,
    /// the predicate, and the zone-map verdicts.
    Scan {
        full: Batch,
        proj: Batch,
        pred: &'a BExpr,
        zone_ok: Option<Vec<bool>>,
    },
    /// Materialized breaker output, chunked on the `opts.morsel` grid.
    Mat(Batch),
}

/// A prepared stage: filters and projections run as-is; probes carry their
/// built hash index and build-side batch.
enum PStage<'a> {
    Filter(&'a BExpr),
    Project(&'a [BExpr]),
    Probe(PProbe<'a>),
}

/// A prepared fused join probe.
struct PProbe<'a> {
    kind: JKind,
    left_keys: &'a [BExpr],
    residual: Option<&'a BExpr>,
    spec: &'a FixedKeySpec,
    right: Batch,
    index: ProbeIndex,
    /// Per key position: the build side's canonical dictionary for
    /// string-typed keys (`None` for non-string positions). Probe chunks
    /// re-encode their key columns into this code space before packing; a
    /// probe string absent from the build dictionary becomes an invalid row,
    /// which packs to a NULL key — exactly a join miss.
    build_dicts: Vec<Option<Arc<pytond_common::Dictionary>>>,
}

/// The build-side hash index at its planned key width.
enum ProbeIndex {
    U64(PartitionedIndex<u64>),
    U128(PartitionedIndex<u128>),
}

/// A chunk's contribution to the pipeline result.
enum ChunkOut {
    /// Materialize sink: the surviving rows, fully gathered.
    Batch(Batch),
    /// Aggregate sink: narrow group-key and **deduplicated** argument
    /// columns over the surviving rows (`rows` of them), ready to
    /// concatenate in morsel order. Argument columns follow the
    /// [`arg_dedup`] order, so `SUM(v)` + `AVG(v)` + `MIN(v)` evaluate and
    /// merge `v` once.
    Agg {
        rows: usize,
        keys: Vec<Column>,
        args: Vec<Column>,
    },
}

/// Maps each aggregate's argument expression to an index into the
/// deduplicated argument list (`None` for argument-less aggregates like
/// `COUNT(*)`). Syntactically identical arguments share one slot, so the
/// fused sink evaluates and concatenates each distinct expression exactly
/// once per morsel. The mapping is a pure function of `aggs`, so every
/// chunk and the merging driver derive the same layout independently.
fn arg_dedup(aggs: &[BAgg]) -> (Vec<Option<usize>>, Vec<&BExpr>) {
    let mut uniq: Vec<&BExpr> = Vec::new();
    let map = aggs
        .iter()
        .map(|a| {
            a.arg.as_ref().map(|e| {
                uniq.iter().position(|u| *u == e).unwrap_or_else(|| {
                    uniq.push(e);
                    uniq.len() - 1
                })
            })
        })
        .collect();
    (map, uniq)
}

/// Produces the chunk for one claimed morsel, or `None` when the zone is
/// pruned or no row survives the scan predicate.
fn source_chunk(src: &PSource<'_>, z: usize, r: std::ops::Range<usize>) -> Result<Option<Chunk>> {
    match src {
        PSource::Mat(b) => Ok(Some(Chunk {
            batch: b.clone(),
            rows: Rows::Range(r),
            owned: false,
        })),
        PSource::Scan {
            full,
            proj,
            pred,
            zone_ok,
        } => {
            if zone_ok.as_ref().is_some_and(|ok| !ok[z]) {
                return Ok(None);
            }
            let mask = pred.eval_mask_range(full, r.start, r.end)?;
            if mask.iter().all(|&k| k) {
                return Ok(Some(Chunk {
                    batch: proj.clone(),
                    rows: Rows::Range(r),
                    owned: false,
                }));
            }
            let rows: Vec<usize> = r
                .zip(mask)
                .filter_map(|(i, keep)| keep.then_some(i))
                .collect();
            if rows.is_empty() {
                return Ok(None);
            }
            Ok(Some(Chunk {
                batch: proj.clone(),
                rows: Rows::Sel(rows),
                owned: false,
            }))
        }
    }
}

/// Evaluates an expression over a chunk's live rows: ranges go through the
/// sliced kernel entry points, survivor selections through the classic
/// gather path.
fn eval_rows(e: &BExpr, batch: &Batch, rows: &Rows) -> Result<Column> {
    match rows {
        Rows::Range(r) => e.eval_range(batch, r.start, r.end),
        Rows::Sel(s) => e.eval(batch, Some(s)),
    }
}

/// [`eval_rows`] for predicates.
fn mask_rows(pred: &BExpr, batch: &Batch, rows: &Rows) -> Result<Vec<bool>> {
    match rows {
        Rows::Range(r) => pred.eval_mask_range(batch, r.start, r.end),
        Rows::Sel(s) => pred.eval_mask(batch, Some(s)),
    }
}

/// Narrows a selection by a per-live-row mask.
fn shrink(rows: Rows, mask: &[bool]) -> Rows {
    match rows {
        Rows::Range(r) => Rows::Sel(
            r.zip(mask)
                .filter_map(|(i, &keep)| keep.then_some(i))
                .collect(),
        ),
        Rows::Sel(s) => Rows::Sel(
            s.into_iter()
                .zip(mask)
                .filter_map(|(i, &keep)| keep.then_some(i))
                .collect(),
        ),
    }
}

/// Maps local live-row positions back to batch row indices.
fn map_local(rows: &Rows, local: &[usize]) -> Vec<usize> {
    match rows {
        Rows::Range(r) => local.iter().map(|&i| r.start + i).collect(),
        Rows::Sel(s) => local.iter().map(|&i| s[i]).collect(),
    }
}

/// Keeps the live rows at the given local positions (semi/anti probes).
fn select_local(rows: Rows, keep: &[usize]) -> Rows {
    match rows {
        Rows::Range(r) => Rows::Sel(keep.iter().map(|&i| r.start + i).collect()),
        Rows::Sel(s) => Rows::Sel(keep.iter().map(|&i| s[i]).collect()),
    }
}

/// Materializes a chunk's live rows.
fn chunk_gather(batch: &Batch, rows: &Rows) -> Batch {
    match rows {
        Rows::Range(r) => Batch {
            cols: batch
                .cols
                .iter()
                .map(|c| Arc::new(c.slice(r.start, r.end)))
                .collect(),
        },
        Rows::Sel(s) => batch.gather(s),
    }
}

/// Charges a stage's freshly materialized chunk columns against the memory
/// budget (no-op without an armed budget, matching
/// [`Executor::charge_batch`]'s accounting policy).
fn charge_cols(cancel: &CancelToken, cols: &[Arc<Column>]) -> Result<()> {
    if cancel.budget_bytes().is_some() {
        cancel.charge(cols.iter().map(|c| c.heap_bytes()).sum())?;
    }
    Ok(())
}

/// Applies one stage to a chunk. Every stage boundary polls the token, so
/// lifecycle limits trip within one morsel even mid-pipeline.
fn apply_stage(st: &PStage<'_>, chunk: Chunk, cancel: &CancelToken) -> Result<Chunk> {
    cancel.check()?;
    match st {
        PStage::Filter(pred) => {
            let mask = mask_rows(pred, &chunk.batch, &chunk.rows)?;
            let Chunk { batch, rows, owned } = chunk;
            Ok(Chunk {
                batch,
                rows: shrink(rows, &mask),
                owned,
            })
        }
        PStage::Project(exprs) => {
            let n = chunk.rows.len();
            let cols: Vec<Arc<Column>> = exprs
                .iter()
                .map(|e| eval_rows(e, &chunk.batch, &chunk.rows).map(Arc::new))
                .collect::<Result<_>>()?;
            charge_cols(cancel, &cols)?;
            Ok(Chunk {
                batch: Batch { cols },
                rows: Rows::Range(0..n),
                owned: true,
            })
        }
        PStage::Probe(p) => apply_probe(p, chunk, cancel),
    }
}

/// Probes one chunk through a fused join. Semi/anti joins only narrow the
/// selection (no columns move); inner/left joins materialize the joined
/// morsel (left columns gathered, right columns gathered-with-nulls), in
/// exactly the left-major, right-ascending order the materializing join
/// emits.
fn apply_probe(p: &PProbe<'_>, chunk: Chunk, cancel: &CancelToken) -> Result<Chunk> {
    let kcols: Vec<Column> = p
        .left_keys
        .iter()
        .zip(&p.build_dicts)
        .map(|(e, bd)| {
            let c = eval_rows(e, &chunk.batch, &chunk.rows)?;
            Ok(match bd {
                // Re-encode into the build side's code space (free when the
                // chunk already shares the build dictionary `Arc`); strings
                // the build never saw become invalid rows = NULL keys.
                Some(dict) => c.project_into_dict(dict),
                None => c,
            })
        })
        .collect::<Result<_>>()?;
    let krefs: Vec<&Column> = kcols.iter().collect();
    let hits = match &p.index {
        ProbeIndex::U64(idx) => probe_rows(&opt_keys(p.spec.pack_u64(&krefs)), idx, p.kind),
        ProbeIndex::U128(idx) => probe_rows(&opt_keys(p.spec.pack_u128(&krefs)), idx, p.kind),
    };
    let joined = match hits {
        ProbeHits::Keep(keep) => {
            let Chunk { batch, rows, owned } = chunk;
            Chunk {
                batch,
                rows: select_local(rows, &keep),
                owned,
            }
        }
        ProbeHits::Pairs { li, ri } => {
            let bi = map_local(&chunk.rows, &li);
            let mut cols = chunk.batch.gather(&bi).cols;
            cols.extend(p.right.gather_opt(&ri).cols);
            charge_cols(cancel, &cols)?;
            let n = cols.first().map_or(0, |c| c.len());
            Chunk {
                batch: Batch { cols },
                rows: Rows::Range(0..n),
                owned: true,
            }
        }
    };
    match p.residual {
        None => Ok(joined),
        Some(res) => {
            let mask = mask_rows(res, &joined.batch, &joined.rows)?;
            let Chunk { batch, rows, owned } = joined;
            Ok(Chunk {
                batch,
                rows: shrink(rows, &mask),
                owned,
            })
        }
    }
}

/// Per-row probe outcomes, in local live-row positions.
enum ProbeHits {
    /// Semi/anti: live rows to keep.
    Keep(Vec<usize>),
    /// Inner/left: match pairs — local left position, optional build row
    /// (`None` = unmatched left row of a left join).
    Pairs {
        li: Vec<usize>,
        ri: Vec<Option<usize>>,
    },
}

/// The probe loop, generic over the packed key width. Match semantics are
/// byte-compatible with [`Executor::join_with_keys`]: NULL keys never
/// match, semi keeps rows with a non-empty match list, anti keeps NULL-key
/// and matchless rows.
fn probe_rows<K: Hash + Eq + Copy + Send + Sync>(
    keys: &[Option<K>],
    index: &PartitionedIndex<K>,
    kind: JKind,
) -> ProbeHits {
    match kind {
        JKind::Semi | JKind::Anti => {
            let want = matches!(kind, JKind::Semi);
            ProbeHits::Keep(
                keys.iter()
                    .enumerate()
                    .filter_map(|(i, k)| {
                        let hit = k
                            .as_ref()
                            .and_then(|k| index.get(k))
                            .is_some_and(|rows| !rows.is_empty());
                        (hit == want).then_some(i)
                    })
                    .collect(),
            )
        }
        _ => {
            let keep_unmatched = matches!(kind, JKind::Left);
            let mut li: Vec<usize> = Vec::new();
            let mut ri: Vec<Option<usize>> = Vec::new();
            for (i, k) in keys.iter().enumerate() {
                match k.as_ref().and_then(|k| index.get(k)) {
                    Some(rows) => {
                        for &r in rows {
                            li.push(i);
                            ri.push(Some(r as usize));
                        }
                    }
                    None => {
                        if keep_unmatched {
                            li.push(i);
                            ri.push(None);
                        }
                    }
                }
            }
            ProbeHits::Pairs { li, ri }
        }
    }
}

/// Terminates a chunk at the pipeline's sink.
fn finish_chunk(sink: &Sink<'_>, chunk: Chunk) -> Result<ChunkOut> {
    match sink {
        Sink::Materialize => {
            // A stage-owned batch whose rows all survive needs no copy.
            if chunk.owned {
                if let Rows::Range(r) = &chunk.rows {
                    if r.start == 0 && r.end == chunk.batch.num_rows() {
                        return Ok(ChunkOut::Batch(chunk.batch));
                    }
                }
            }
            Ok(ChunkOut::Batch(chunk_gather(&chunk.batch, &chunk.rows)))
        }
        Sink::Aggregate { group, aggs } => {
            let keys: Vec<Column> = group
                .iter()
                .map(|e| eval_rows(e, &chunk.batch, &chunk.rows))
                .collect::<Result<_>>()?;
            let (_, uniq) = arg_dedup(aggs);
            let args: Vec<Column> = uniq
                .iter()
                .map(|e| eval_rows(e, &chunk.batch, &chunk.rows))
                .collect::<Result<_>>()?;
            Ok(ChunkOut::Agg {
                rows: chunk.rows.len(),
                keys,
                args,
            })
        }
    }
}

/// An empty batch with the schema's dtypes (a pipeline whose every chunk
/// was pruned or filtered away still reports typed columns).
fn empty_batch(schema: &Schema) -> Batch {
    Batch {
        cols: schema
            .fields
            .iter()
            .map(|f| Arc::new(Column::new(f.dtype)))
            .collect(),
    }
}

/// The key layout the executor chooses for the given key-column sets:
/// `Some(width)` = fixed-width packed fast path, `None` = byte-encoded
/// fallback. This is the exact decision `join` (two column sets,
/// `nulls_matter = false`), `aggregate` and `distinct` (one set,
/// `nulls_matter = true`) make internally — exposed so tests and diagnostics
/// can assert which path a query takes.
pub fn planned_key_width(col_sets: &[&[&Column]], nulls_matter: bool) -> Option<KeyWidth> {
    FixedKeySpec::plan(col_sets, nulls_matter).map(|s| s.width())
}

/// Column-major accumulation of one aggregate over a row chunk.
///
/// `gids[k]` is the chunk-local group of row `start + k`. Numeric
/// sum/avg/count/min/max arguments take monomorphic loops over the raw column
/// slice; every other dtype/accumulator pair (DISTINCT sets, string/date
/// extrema) falls back to the row-at-a-time [`GroupState::update_one`].
fn accumulate(
    states: &mut [GroupState],
    ai: usize,
    agg: &BAgg,
    gids: &[u32],
    start: usize,
    col: Option<&Column>,
) -> Result<()> {
    let Some(first) = states.first() else {
        return Ok(());
    };
    let tag = first.accs[ai].tag();

    /// One typed loop: `$acc` destructures the accumulator, `$x` binds the
    /// row value (only on valid rows), `$body` updates the accumulator.
    macro_rules! acc_loop {
        ($d:expr, $valid:expr, $acc:pat, $x:ident, $body:expr) => {{
            match $valid {
                None => {
                    for (k, &g) in gids.iter().enumerate() {
                        let $x = $d[start + k];
                        let $acc = &mut states[g as usize].accs[ai] else {
                            unreachable!("accumulator kinds are uniform per aggregate");
                        };
                        $body
                    }
                }
                Some(vs) => {
                    for (k, &g) in gids.iter().enumerate() {
                        if vs[start + k] {
                            let $x = $d[start + k];
                            let $acc = &mut states[g as usize].accs[ai] else {
                                unreachable!("accumulator kinds are uniform per aggregate");
                            };
                            $body
                        }
                    }
                }
            }
            return Ok(());
        }};
    }

    match (col, tag) {
        // COUNT(*) — no argument, every row counts.
        (None, AccTag::Count) => {
            for &g in gids {
                if let Acc::Count(cnt) = &mut states[g as usize].accs[ai] {
                    *cnt += 1;
                }
            }
            Ok(())
        }
        // COUNT(arg) — count valid rows; only the validity mask matters.
        (Some(c), AccTag::Count) => {
            let valid = c.validity();
            for (k, &g) in gids.iter().enumerate() {
                if valid.map_or(true, |v| v[start + k]) {
                    if let Acc::Count(cnt) = &mut states[g as usize].accs[ai] {
                        *cnt += 1;
                    }
                }
            }
            Ok(())
        }
        (Some(Column::Float(d, v)), AccTag::SumF) => {
            acc_loop!(d, v.as_deref(), Acc::SumF(s, any), x, {
                *s += x;
                *any = true;
            })
        }
        (Some(Column::Int(d, v)), AccTag::SumF) => {
            acc_loop!(d, v.as_deref(), Acc::SumF(s, any), x, {
                *s += x as f64;
                *any = true;
            })
        }
        (Some(Column::Int(d, v)), AccTag::SumI) => {
            acc_loop!(d, v.as_deref(), Acc::SumI(s, any), x, {
                *s += x;
                *any = true;
            })
        }
        (Some(Column::Float(d, v)), AccTag::Avg) => {
            acc_loop!(d, v.as_deref(), Acc::Avg(s, c), x, {
                *s += x;
                *c += 1;
            })
        }
        (Some(Column::Int(d, v)), AccTag::Avg) => {
            acc_loop!(d, v.as_deref(), Acc::Avg(s, c), x, {
                *s += x as f64;
                *c += 1;
            })
        }
        // MIN/MAX over floats: NaN never replaces (partial_cmp semantics).
        (Some(Column::Float(d, v)), AccTag::Min) => {
            acc_loop!(d, v.as_deref(), Acc::Min(m), x, {
                match m {
                    Some(Value::Float(cur)) => {
                        if x < *cur {
                            *cur = x;
                        }
                    }
                    _ => *m = Some(Value::Float(x)),
                }
            })
        }
        (Some(Column::Float(d, v)), AccTag::Max) => {
            acc_loop!(d, v.as_deref(), Acc::Max(m), x, {
                match m {
                    Some(Value::Float(cur)) => {
                        if x > *cur {
                            *cur = x;
                        }
                    }
                    _ => *m = Some(Value::Float(x)),
                }
            })
        }
        (Some(Column::Int(d, v)), AccTag::Min) => {
            acc_loop!(d, v.as_deref(), Acc::Min(m), x, {
                match m {
                    Some(Value::Int(cur)) => {
                        if x < *cur {
                            *cur = x;
                        }
                    }
                    _ => *m = Some(Value::Int(x)),
                }
            })
        }
        (Some(Column::Int(d, v)), AccTag::Max) => {
            acc_loop!(d, v.as_deref(), Acc::Max(m), x, {
                match m {
                    Some(Value::Int(cur)) => {
                        if x > *cur {
                            *cur = x;
                        }
                    }
                    _ => *m = Some(Value::Int(x)),
                }
            })
        }
        // DISTINCT over a fixed-width argument: raw i64 inserts.
        (Some(Column::Int(d, v)), AccTag::DistinctI) => {
            acc_loop!(d, v.as_deref(), Acc::DistinctI(set), x, {
                set.insert(x);
            })
        }
        (Some(Column::Date(d, v)), AccTag::DistinctI) => {
            acc_loop!(d, v.as_deref(), Acc::DistinctI(set), x, {
                set.insert(i64::from(x));
            })
        }
        // Everything else row-at-a-time through the Value fallback.
        _ => {
            for (k, &g) in gids.iter().enumerate() {
                let v = match col {
                    Some(c) => c.get(start + k),
                    None => Value::Int(1),
                };
                states[g as usize].update_one(ai, agg, v);
            }
            Ok(())
        }
    }
}

// ---------------- aggregate state ----------------

/// Per-group accumulator states.
#[derive(Debug, Clone)]
struct GroupState {
    first_row: usize,
    accs: Vec<Acc>,
}

#[derive(Debug, Clone)]
enum Acc {
    SumI(i64, bool), // value, saw-any
    SumF(f64, bool),
    Count(i64),
    Min(Option<Value>),
    Max(Option<Value>),
    Avg(f64, i64),
    /// DISTINCT over a fixed-width argument: raw `i64` set, no encoding.
    DistinctI(FxHashSet<i64>),
    /// DISTINCT fallback (float/string args): byte-encoded values.
    DistinctB(FxHashSet<Vec<u8>>),
}

/// Copyable accumulator discriminant — lets [`accumulate`] pick a typed loop
/// without holding a borrow on the states.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum AccTag {
    SumI,
    SumF,
    Count,
    Min,
    Max,
    Avg,
    DistinctI,
    DistinctB,
}

impl Acc {
    fn tag(&self) -> AccTag {
        match self {
            Acc::SumI(..) => AccTag::SumI,
            Acc::SumF(..) => AccTag::SumF,
            Acc::Count(..) => AccTag::Count,
            Acc::Min(..) => AccTag::Min,
            Acc::Max(..) => AccTag::Max,
            Acc::Avg(..) => AccTag::Avg,
            Acc::DistinctI(..) => AccTag::DistinctI,
            Acc::DistinctB(..) => AccTag::DistinctB,
        }
    }
}

impl GroupState {
    fn new(first_row: usize, aggs: &[BAgg], arg_dtypes: &[Option<DType>]) -> GroupState {
        let accs = aggs
            .iter()
            .enumerate()
            .map(|(i, a)| {
                let dtype = arg_dtypes.get(i).copied().flatten();
                match (a.func, a.distinct) {
                    (_, true) => match dtype {
                        Some(DType::Int | DType::Date | DType::Bool) => {
                            Acc::DistinctI(FxHashSet::default())
                        }
                        _ => Acc::DistinctB(FxHashSet::default()),
                    },
                    (AggName::Count, _) => Acc::Count(0),
                    (AggName::Avg, _) => Acc::Avg(0.0, 0),
                    (AggName::Min, _) => Acc::Min(None),
                    (AggName::Max, _) => Acc::Max(None),
                    (AggName::Sum, _) => {
                        if dtype == Some(DType::Int) && a.arg.is_some() {
                            Acc::SumI(0, false)
                        } else {
                            Acc::SumF(0.0, false)
                        }
                    }
                }
            })
            .collect();
        GroupState { first_row, accs }
    }

    /// Row-at-a-time accumulator update — the fallback [`accumulate`] uses
    /// for dtype/accumulator pairs without a typed loop.
    fn update_one(&mut self, ai: usize, agg: &BAgg, v: Value) {
        match &mut self.accs[ai] {
            Acc::Count(c) => {
                if agg.arg.is_none() || !v.is_null() {
                    *c += 1;
                }
            }
            Acc::SumF(s, any) => {
                if let Some(x) = v.as_f64() {
                    *s += x;
                    *any = true;
                }
            }
            Acc::SumI(s, any) => {
                if let Some(x) = v.as_i64() {
                    *s += x;
                    *any = true;
                }
            }
            Acc::Avg(s, c) => {
                if let Some(x) = v.as_f64() {
                    *s += x;
                    *c += 1;
                }
            }
            Acc::Min(m) => {
                if !v.is_null()
                    && m.as_ref()
                        .map_or(true, |cur| v.sql_cmp(cur) == Some(std::cmp::Ordering::Less))
                {
                    *m = Some(v);
                }
            }
            Acc::Max(m) => {
                if !v.is_null()
                    && m.as_ref().map_or(true, |cur| {
                        v.sql_cmp(cur) == Some(std::cmp::Ordering::Greater)
                    })
                {
                    *m = Some(v);
                }
            }
            Acc::DistinctI(set) => {
                if let Some(x) = v.as_i64() {
                    set.insert(x);
                }
            }
            Acc::DistinctB(set) => {
                if !v.is_null() {
                    let mut buf = Vec::new();
                    encode_value(&mut buf, &normalize_key(v));
                    set.insert(buf);
                }
            }
        }
    }

    fn merge(&mut self, other: &GroupState, _aggs: &[BAgg]) {
        self.first_row = self.first_row.min(other.first_row);
        for (a, b) in self.accs.iter_mut().zip(&other.accs) {
            match (a, b) {
                (Acc::Count(x), Acc::Count(y)) => *x += y,
                (Acc::SumF(x, anyx), Acc::SumF(y, anyy)) => {
                    *x += y;
                    *anyx |= *anyy;
                }
                (Acc::SumI(x, anyx), Acc::SumI(y, anyy)) => {
                    *x += y;
                    *anyx |= *anyy;
                }
                (Acc::Avg(xs, xc), Acc::Avg(ys, yc)) => {
                    *xs += ys;
                    *xc += yc;
                }
                (Acc::Min(x), Acc::Min(y)) => {
                    if let Some(yv) = y {
                        if x.as_ref()
                            .map_or(true, |xv| yv.sql_cmp(xv) == Some(std::cmp::Ordering::Less))
                        {
                            *x = Some(yv.clone());
                        }
                    }
                }
                (Acc::Max(x), Acc::Max(y)) => {
                    if let Some(yv) = y {
                        if x.as_ref().map_or(true, |xv| {
                            yv.sql_cmp(xv) == Some(std::cmp::Ordering::Greater)
                        }) {
                            *x = Some(yv.clone());
                        }
                    }
                }
                (Acc::DistinctI(x), Acc::DistinctI(y)) => {
                    x.extend(y.iter().copied());
                }
                (Acc::DistinctB(x), Acc::DistinctB(y)) => {
                    x.extend(y.iter().cloned());
                }
                _ => unreachable!("accumulator kinds align"),
            }
        }
    }

    fn finalize(&self, ai: usize, agg: &BAgg) -> Value {
        match &self.accs[ai] {
            Acc::Count(c) => Value::Int(*c),
            Acc::SumF(s, any) => {
                if *any {
                    Value::Float(*s)
                } else {
                    Value::Null
                }
            }
            Acc::SumI(s, any) => {
                if *any {
                    Value::Int(*s)
                } else {
                    Value::Null
                }
            }
            Acc::Avg(s, c) => {
                if *c > 0 {
                    Value::Float(s / *c as f64)
                } else {
                    Value::Null
                }
            }
            Acc::Min(m) | Acc::Max(m) => m.clone().unwrap_or(Value::Null),
            Acc::DistinctI(set) => match agg.func {
                AggName::Count => Value::Int(set.len() as i64),
                _ => Value::Null,
            },
            Acc::DistinctB(set) => match agg.func {
                AggName::Count => Value::Int(set.len() as i64),
                _ => Value::Null,
            },
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fixed_width_fast_path_taken_for_int_date_keys() {
        let i = Column::from_i64(vec![1, 2]);
        let d = Column::from_dates(vec![3, 4]);
        let b = Column::from_bool(vec![true, false]);
        // Group-by / distinct (nulls_matter = true).
        assert_eq!(planned_key_width(&[&[&i]], true), Some(KeyWidth::U64));
        assert_eq!(planned_key_width(&[&[&d]], true), Some(KeyWidth::U64));
        assert_eq!(planned_key_width(&[&[&i, &d]], true), Some(KeyWidth::U128));
        // Two 32-bit dates fit a word; adding a bool (1 bit) tips into u128.
        assert_eq!(planned_key_width(&[&[&d, &d]], true), Some(KeyWidth::U64));
        assert_eq!(
            planned_key_width(&[&[&d, &d, &b]], true),
            Some(KeyWidth::U128)
        );
        // Join keys: the layout is planned jointly over both sides.
        assert_eq!(
            planned_key_width(&[&[&i], &[&d]], false),
            Some(KeyWidth::U64)
        );
        assert_eq!(
            planned_key_width(&[&[&i, &i], &[&i, &d]], false),
            Some(KeyWidth::U128)
        );
    }

    #[test]
    fn byte_fallback_covers_string_and_mixed_keys() {
        let i = Column::from_i64(vec![1]);
        let s = Column::from_strs(&["x"]);
        let f = Column::from_f64(vec![1.0]);
        assert_eq!(planned_key_width(&[&[&s]], true), None);
        assert_eq!(planned_key_width(&[&[&i, &s]], true), None);
        assert_eq!(planned_key_width(&[&[&f]], true), None);
        assert_eq!(planned_key_width(&[&[&i], &[&f]], false), None);
        // Three 64-bit columns overflow u128 and fall back too.
        assert_eq!(planned_key_width(&[&[&i, &i, &i]], true), None);
    }
}
