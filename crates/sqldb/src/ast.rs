//! SQL abstract syntax tree for the dialect subset the PyTond code generator
//! emits (plus enough generality for hand-written test queries).

/// A top-level query: optional WITH chain plus the final select.
#[derive(Debug, Clone, PartialEq)]
pub struct Query {
    /// Common table expressions, in definition order.
    pub ctes: Vec<Cte>,
    /// The final select.
    pub body: Select,
}

/// One `name (cols) AS (select)` CTE.
#[derive(Debug, Clone, PartialEq)]
pub struct Cte {
    /// CTE name.
    pub name: String,
    /// Optional explicit column list.
    pub columns: Option<Vec<String>>,
    /// Defining select.
    pub select: Select,
}

/// A SELECT statement (or VALUES list).
#[derive(Debug, Clone, PartialEq)]
pub struct Select {
    /// `SELECT DISTINCT`.
    pub distinct: bool,
    /// Projection list.
    pub items: Vec<SelectItem>,
    /// FROM clause (empty for `SELECT <exprs>` or VALUES).
    pub from: Vec<TableRef>,
    /// WHERE predicate.
    pub where_clause: Option<SqlExpr>,
    /// GROUP BY expressions.
    pub group_by: Vec<SqlExpr>,
    /// HAVING predicate.
    pub having: Option<SqlExpr>,
    /// ORDER BY keys (expr, ascending).
    pub order_by: Vec<(SqlExpr, bool)>,
    /// LIMIT row count.
    pub limit: Option<u64>,
    /// VALUES rows when this "select" is a VALUES constructor.
    pub values: Option<Vec<Vec<SqlExpr>>>,
}

impl Select {
    /// An empty select skeleton.
    pub fn empty() -> Select {
        Select {
            distinct: false,
            items: Vec::new(),
            from: Vec::new(),
            where_clause: None,
            group_by: Vec::new(),
            having: None,
            order_by: Vec::new(),
            limit: None,
            values: None,
        }
    }
}

/// One projection item.
#[derive(Debug, Clone, PartialEq)]
pub enum SelectItem {
    /// `*`.
    Wildcard,
    /// `alias.*`.
    QualifiedWildcard(String),
    /// `expr [AS alias]`.
    Expr {
        /// The expression.
        expr: SqlExpr,
        /// Optional alias.
        alias: Option<String>,
    },
}

/// A FROM-clause item.
#[derive(Debug, Clone, PartialEq)]
pub enum TableRef {
    /// `name [AS alias]`.
    Table {
        /// Table or CTE name.
        name: String,
        /// Alias (defaults to the name).
        alias: Option<String>,
    },
    /// `(select) AS alias`.
    Subquery {
        /// The subquery.
        query: Box<Select>,
        /// Mandatory alias.
        alias: String,
    },
    /// `left JOIN right ON cond` (all join kinds).
    Join {
        /// Left input.
        left: Box<TableRef>,
        /// Right input.
        right: Box<TableRef>,
        /// Join kind.
        kind: JoinKind,
        /// ON condition (`None` only for CROSS).
        on: Option<SqlExpr>,
    },
}

/// SQL join kinds.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum JoinKind {
    /// INNER JOIN.
    Inner,
    /// LEFT \[OUTER\] JOIN.
    Left,
    /// RIGHT \[OUTER\] JOIN.
    Right,
    /// FULL \[OUTER\] JOIN.
    Full,
    /// CROSS JOIN.
    Cross,
}

/// Binary operators.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum BinOp {
    /// `+`
    Add,
    /// `-`
    Sub,
    /// `*`
    Mul,
    /// `/`
    Div,
    /// `%`
    Mod,
    /// `=`
    Eq,
    /// `<>` / `!=`
    Ne,
    /// `<`
    Lt,
    /// `<=`
    Le,
    /// `>`
    Gt,
    /// `>=`
    Ge,
    /// `AND`
    And,
    /// `OR`
    Or,
    /// `||`
    Concat,
}

/// Aggregate function names.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum AggName {
    /// SUM
    Sum,
    /// MIN
    Min,
    /// MAX
    Max,
    /// AVG
    Avg,
    /// COUNT (`COUNT(*)` when the argument is `None`)
    Count,
}

/// A SQL scalar expression.
#[derive(Debug, Clone, PartialEq)]
pub enum SqlExpr {
    /// Column reference, optionally qualified.
    Column {
        /// Table alias qualifier.
        qualifier: Option<String>,
        /// Column name.
        name: String,
    },
    /// Integer literal.
    Int(i64),
    /// Float literal.
    Float(f64),
    /// String literal.
    Str(String),
    /// Boolean literal.
    Bool(bool),
    /// NULL literal.
    Null,
    /// `DATE 'YYYY-MM-DD'`.
    DateLit(i32),
    /// Binary operation.
    Bin {
        /// Operator.
        op: BinOp,
        /// Left operand.
        left: Box<SqlExpr>,
        /// Right operand.
        right: Box<SqlExpr>,
    },
    /// Unary minus.
    Neg(Box<SqlExpr>),
    /// `NOT expr`.
    Not(Box<SqlExpr>),
    /// `expr IS NULL` / `IS NOT NULL`.
    IsNull {
        /// Tested expression.
        expr: Box<SqlExpr>,
        /// `true` for IS NOT NULL.
        negated: bool,
    },
    /// `expr [NOT] LIKE pattern`.
    Like {
        /// Tested expression.
        expr: Box<SqlExpr>,
        /// Pattern with `%`/`_` wildcards.
        pattern: String,
        /// `true` for NOT LIKE.
        negated: bool,
    },
    /// `expr [NOT] IN (list)`.
    InList {
        /// Tested expression.
        expr: Box<SqlExpr>,
        /// Candidate literals.
        list: Vec<SqlExpr>,
        /// `true` for NOT IN.
        negated: bool,
    },
    /// `expr [NOT] IN (subquery)`.
    InSubquery {
        /// Tested expression.
        expr: Box<SqlExpr>,
        /// One-column subquery.
        query: Box<Select>,
        /// `true` for NOT IN.
        negated: bool,
    },
    /// `[NOT] EXISTS (subquery)`.
    Exists {
        /// The subquery.
        query: Box<Select>,
        /// `true` for NOT EXISTS.
        negated: bool,
    },
    /// Uncorrelated scalar subquery `(SELECT one-value)`.
    ScalarSubquery(Box<Select>),
    /// `expr BETWEEN low AND high`.
    Between {
        /// Tested expression.
        expr: Box<SqlExpr>,
        /// Lower bound (inclusive).
        low: Box<SqlExpr>,
        /// Upper bound (inclusive).
        high: Box<SqlExpr>,
        /// `true` for NOT BETWEEN.
        negated: bool,
    },
    /// `CASE WHEN c THEN v [WHEN ...] [ELSE e] END`.
    Case {
        /// `(condition, value)` arms.
        arms: Vec<(SqlExpr, SqlExpr)>,
        /// ELSE value (NULL when absent).
        else_value: Option<Box<SqlExpr>>,
    },
    /// Aggregate call.
    Agg {
        /// Function.
        func: AggName,
        /// Argument (`None` = `COUNT(*)`).
        arg: Option<Box<SqlExpr>>,
        /// `DISTINCT` modifier.
        distinct: bool,
    },
    /// Scalar function call (`ABS`, `ROUND`, `SUBSTRING`, `YEAR`, ...).
    Func {
        /// Upper-cased function name.
        name: String,
        /// Arguments.
        args: Vec<SqlExpr>,
    },
    /// `row_number() OVER ([ORDER BY keys])`.
    RowNumber {
        /// Ordering keys (expr, ascending); empty = natural order.
        order_by: Vec<(SqlExpr, bool)>,
    },
    /// `CAST(expr AS type)`.
    Cast {
        /// Source expression.
        expr: Box<SqlExpr>,
        /// Target type name (upper-cased).
        ty: String,
    },
}

impl SqlExpr {
    /// Column shorthand.
    pub fn col(name: &str) -> SqlExpr {
        SqlExpr::Column {
            qualifier: None,
            name: name.to_string(),
        }
    }

    /// Qualified column shorthand.
    pub fn qcol(q: &str, name: &str) -> SqlExpr {
        SqlExpr::Column {
            qualifier: Some(q.to_string()),
            name: name.to_string(),
        }
    }

    /// Binary op shorthand.
    pub fn bin(op: BinOp, l: SqlExpr, r: SqlExpr) -> SqlExpr {
        SqlExpr::Bin {
            op,
            left: Box::new(l),
            right: Box::new(r),
        }
    }

    /// `true` if any node satisfies `f`.
    pub fn any(&self, f: &mut impl FnMut(&SqlExpr) -> bool) -> bool {
        if f(self) {
            return true;
        }
        match self {
            SqlExpr::Bin { left, right, .. } => left.any(f) || right.any(f),
            SqlExpr::Neg(e) | SqlExpr::Not(e) | SqlExpr::Cast { expr: e, .. } => e.any(f),
            SqlExpr::IsNull { expr, .. } | SqlExpr::Like { expr, .. } => expr.any(f),
            SqlExpr::InList { expr, list, .. } => expr.any(f) || list.iter().any(|e| e.any(f)),
            SqlExpr::InSubquery { expr, .. } => expr.any(f),
            SqlExpr::Between {
                expr, low, high, ..
            } => expr.any(f) || low.any(f) || high.any(f),
            SqlExpr::Case { arms, else_value } => {
                arms.iter().any(|(c, v)| c.any(f) || v.any(f))
                    || else_value.as_ref().is_some_and(|e| e.any(f))
            }
            SqlExpr::Agg { arg, .. } => arg.as_ref().is_some_and(|a| a.any(f)),
            SqlExpr::Func { args, .. } => args.iter().any(|a| a.any(f)),
            SqlExpr::RowNumber { order_by } => order_by.iter().any(|(e, _)| e.any(f)),
            _ => false,
        }
    }

    /// `true` when the expression contains an aggregate call.
    pub fn contains_agg(&self) -> bool {
        self.any(&mut |e| matches!(e, SqlExpr::Agg { .. }))
    }

    /// `true` when the expression contains a window function.
    pub fn contains_window(&self) -> bool {
        self.any(&mut |e| matches!(e, SqlExpr::RowNumber { .. }))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn contains_agg_traverses_case() {
        let e = SqlExpr::Case {
            arms: vec![(
                SqlExpr::bin(BinOp::Gt, SqlExpr::col("a"), SqlExpr::Int(1)),
                SqlExpr::Agg {
                    func: AggName::Sum,
                    arg: Some(Box::new(SqlExpr::col("b"))),
                    distinct: false,
                },
            )],
            else_value: None,
        };
        assert!(e.contains_agg());
        assert!(!SqlExpr::col("a").contains_agg());
    }

    #[test]
    fn contains_window_detects_row_number() {
        let e = SqlExpr::RowNumber {
            order_by: vec![(SqlExpr::col("a"), true)],
        };
        assert!(e.contains_window());
    }
}
