//! Binder: SQL AST → logical plan.
//!
//! Responsibilities:
//!
//! * name resolution against base tables, CTEs and FROM aliases;
//! * building the join tree — explicit `JOIN ... ON` syntax directly,
//!   comma-list FROM items greedily connected through WHERE equi-predicates
//!   (cross join only when no connecting predicate exists);
//! * `IN (subquery)` / `EXISTS` conjuncts → semi/anti joins;
//! * uncorrelated scalar subqueries → cross-joined 1-row inputs;
//! * the two-phase aggregate rewrite (aggregate node, then a post-projection
//!   evaluating the select items over group keys and aggregate results);
//! * `row_number() OVER` → window node;
//! * ORDER BY over output aliases (hidden sort columns appended when a key is
//!   not part of the projection).

use crate::ast::*;
use crate::db::Snapshot;
use crate::expr::{BExpr, LikePattern, SFunc};
use crate::plan::{BAgg, BoundQuery, JKind, LogicalPlan};
use crate::table::{Field, Schema};
use pytond_common::{DType, Error, Result, Value};

/// Binds a parsed query against the database catalog.
pub fn bind_query(db: &Snapshot, q: &Query) -> Result<BoundQuery> {
    let mut binder = Binder {
        db,
        ctes: Vec::new(),
    };
    for cte in &q.ctes {
        let mut plan = binder.bind_select(&cte.select)?;
        if let Some(cols) = &cte.columns {
            if cols.len() != plan.schema().len() {
                return Err(Error::Plan(format!(
                    "CTE '{}' declares {} columns but produces {}",
                    cte.name,
                    cols.len(),
                    plan.schema().len()
                )));
            }
            plan = rename_output(plan, cols);
        }
        binder.ctes.push((cte.name.clone(), plan));
    }
    let root = binder.bind_select(&q.body)?;
    Ok(BoundQuery {
        ctes: binder.ctes,
        root,
    })
}

/// Wraps a plan so its output field names become `names` (unqualified).
fn rename_output(plan: LogicalPlan, names: &[String]) -> LogicalPlan {
    let schema = Schema::new(
        names
            .iter()
            .zip(&plan.schema().fields)
            .map(|(n, f)| Field::new(n.clone(), f.dtype))
            .collect(),
    );
    let exprs = (0..names.len()).map(BExpr::Col).collect();
    LogicalPlan::Project {
        input: Box::new(plan),
        exprs,
        schema,
    }
}

struct Binder<'a> {
    db: &'a Snapshot,
    ctes: Vec<(String, LogicalPlan)>,
}

/// Aggregate-binding context used while rewriting select items over the
/// aggregate node's output.
struct AggCtx {
    /// Bound group-key expressions (over the pre-aggregate schema).
    group_keys: Vec<BExpr>,
    /// Their source SQL form, for structural matching.
    group_sql: Vec<SqlExpr>,
    /// Collected aggregate specs (deduplicated).
    aggs: Vec<BAgg>,
}

impl<'a> Binder<'a> {
    fn relation_schema(&self, name: &str) -> Result<Schema> {
        for (cte, plan) in self.ctes.iter().rev() {
            if cte.eq_ignore_ascii_case(name) {
                return Ok(plan.schema().clone());
            }
        }
        self.db
            .table(name)
            .map(|t| t.schema.clone())
            .ok_or_else(|| Error::Plan(format!("unknown table '{name}'")))
    }

    fn bind_select(&self, s: &Select) -> Result<LogicalPlan> {
        if let Some(rows) = &s.values {
            return self.bind_values(rows);
        }
        // ---- FROM ----
        let (mut plan, consumed_where) = self.bind_from(s)?;

        // ---- WHERE residue (subquery predicates + unconsumed conjuncts) ----
        for conj in consumed_where.remaining {
            plan = self.apply_predicate(plan, &conj)?;
        }

        // ---- aggregate detection ----
        let has_agg = !s.group_by.is_empty()
            || s.items.iter().any(|i| match i {
                SelectItem::Expr { expr, .. } => expr.contains_agg(),
                _ => false,
            })
            || s.having.as_ref().is_some_and(|h| h.contains_agg())
            || s.order_by.iter().any(|(e, _)| e.contains_agg());

        let (mut plan, mut items): (LogicalPlan, Vec<(BExpr, String)>) = if has_agg {
            self.bind_aggregate_select(plan, s)?
        } else {
            let schema = plan.schema().clone();
            let mut items = Vec::new();
            for item in &s.items {
                match item {
                    SelectItem::Wildcard => {
                        for (i, f) in schema.fields.iter().enumerate() {
                            items.push((BExpr::Col(i), f.name.clone()));
                        }
                    }
                    SelectItem::QualifiedWildcard(q) => {
                        for (i, f) in schema.fields.iter().enumerate() {
                            if f.qualifier
                                .as_deref()
                                .is_some_and(|fq| fq.eq_ignore_ascii_case(q))
                            {
                                items.push((BExpr::Col(i), f.name.clone()));
                            }
                        }
                    }
                    SelectItem::Expr { expr, alias } => {
                        let (bexpr, plan2) = self.bind_with_windows(expr, plan)?;
                        plan = plan2;
                        let name = alias.clone().unwrap_or_else(|| default_name(expr));
                        items.push((bexpr, name));
                    }
                }
            }
            (plan, items)
        };

        // ---- HAVING (non-agg path; agg path handles it internally) ----
        if !has_agg {
            if let Some(h) = &s.having {
                let pred = self.bind_expr(h, plan.schema(), None)?;
                plan = LogicalPlan::Filter {
                    input: Box::new(plan),
                    pred,
                };
            }
        }

        // ---- ORDER BY: resolve over output items, append hidden keys ----
        let mut sort_keys: Vec<(usize, bool)> = Vec::new();
        let n_visible = items.len();
        for (key, asc) in &s.order_by {
            let bound = match self.resolve_order_key(key, s, &items, plan.schema(), has_agg)? {
                OrderKey::Existing(i) => i,
                OrderKey::Hidden(bexpr) => {
                    items.push((bexpr, format!("__sort{}", items.len())));
                    items.len() - 1
                }
            };
            sort_keys.push((bound, *asc));
        }

        // ---- projection (with hidden sort columns) ----
        let in_types: Vec<DType> = plan.schema().fields.iter().map(|f| f.dtype).collect();
        let schema = Schema::new(
            items
                .iter()
                .map(|(e, n)| Field::new(n.clone(), e.dtype(&in_types)))
                .collect(),
        );
        let mut out = LogicalPlan::Project {
            input: Box::new(plan),
            exprs: items.iter().map(|(e, _)| e.clone()).collect(),
            schema,
        };

        if s.distinct {
            out = LogicalPlan::Distinct {
                input: Box::new(out),
            };
        }
        if !sort_keys.is_empty() {
            out = LogicalPlan::Sort {
                input: Box::new(out),
                keys: sort_keys
                    .iter()
                    .map(|(i, asc)| (BExpr::Col(*i), *asc))
                    .collect(),
            };
        }
        if let Some(n) = s.limit {
            out = LogicalPlan::Limit {
                input: Box::new(out),
                n,
            };
        }
        // Drop hidden sort columns.
        if items.len() > n_visible {
            let schema = Schema::new(out.schema().fields[..n_visible].to_vec());
            out = LogicalPlan::Project {
                input: Box::new(out),
                exprs: (0..n_visible).map(BExpr::Col).collect(),
                schema,
            };
        }
        Ok(out)
    }

    fn bind_values(&self, rows: &[Vec<SqlExpr>]) -> Result<LogicalPlan> {
        let mut out_rows = Vec::with_capacity(rows.len());
        for row in rows {
            let mut vals = Vec::with_capacity(row.len());
            for e in row {
                vals.push(literal_value(e)?);
            }
            out_rows.push(vals);
        }
        let ncols = out_rows.first().map_or(0, |r| r.len());
        let fields: Vec<Field> = (0..ncols)
            .map(|i| {
                let dtype = out_rows
                    .iter()
                    .find_map(|r| r[i].dtype())
                    .unwrap_or(DType::Int);
                Field::new(format!("col{i}"), dtype)
            })
            .collect();
        Ok(LogicalPlan::Values {
            schema: Schema::new(fields),
            rows: out_rows,
        })
    }

    // ---------------- FROM handling ----------------

    fn bind_from(&self, s: &Select) -> Result<(LogicalPlan, WhereResidue)> {
        let conjuncts = s
            .where_clause
            .as_ref()
            .map(split_conjuncts)
            .unwrap_or_default();
        if s.from.is_empty() {
            // SELECT <exprs> with no FROM: single-row dummy input.
            let plan = LogicalPlan::Values {
                schema: Schema::new(vec![Field::new("__dummy", DType::Int)]),
                rows: vec![vec![Value::Int(0)]],
            };
            return Ok((
                plan,
                WhereResidue {
                    remaining: conjuncts,
                },
            ));
        }
        // Bind each top-level FROM item.
        let mut parts: Vec<LogicalPlan> = Vec::new();
        for tr in &s.from {
            parts.push(self.bind_table_ref(tr)?);
        }
        // Greedy connection of comma-separated parts via equi-predicates.
        let mut used = vec![false; conjuncts.len()];
        let mut current = parts.remove(0);
        while !parts.is_empty() {
            let cur_schema = current.schema().clone();
            let mut pick: Option<usize> = None;
            'outer: for (pi, part) in parts.iter().enumerate() {
                for conj in &conjuncts {
                    if equi_pair(conj, &cur_schema, part.schema()).is_some() {
                        pick = Some(pi);
                        break 'outer;
                    }
                }
            }
            let idx = pick.unwrap_or(0);
            let part = parts.remove(idx);
            // Collect all applicable equi-keys between current and part.
            let mut lkeys = Vec::new();
            let mut rkeys = Vec::new();
            for (ci, conj) in conjuncts.iter().enumerate() {
                if used[ci] {
                    continue;
                }
                if let Some((le, re)) = equi_pair(conj, current.schema(), part.schema()) {
                    lkeys.push(le);
                    rkeys.push(re);
                    used[ci] = true;
                }
            }
            let kind = if lkeys.is_empty() {
                JKind::Cross
            } else {
                JKind::Inner
            };
            let schema = current.schema().concat(part.schema());
            current = LogicalPlan::Join {
                left: Box::new(current),
                right: Box::new(part),
                kind,
                left_keys: lkeys,
                right_keys: rkeys,
                residual: None,
                schema,
            };
        }
        let remaining: Vec<SqlExpr> = conjuncts
            .into_iter()
            .zip(used)
            .filter_map(|(c, u)| (!u).then_some(c))
            .collect();
        Ok((current, WhereResidue { remaining }))
    }

    fn bind_table_ref(&self, tr: &TableRef) -> Result<LogicalPlan> {
        match tr {
            TableRef::Table { name, alias } => {
                let schema = self.relation_schema(name)?;
                let alias = alias.clone().unwrap_or_else(|| name.clone());
                Ok(LogicalPlan::Scan {
                    table: name.clone(),
                    schema: schema.requalify(&alias),
                    projection: None,
                    pred: None,
                })
            }
            TableRef::Subquery { query, alias } => {
                let plan = self.bind_select(query)?;
                let schema = plan.schema().requalify(alias);
                Ok(match plan {
                    // Re-qualification only changes the schema.
                    LogicalPlan::Project {
                        input,
                        exprs,
                        schema: _,
                    } => LogicalPlan::Project {
                        input,
                        exprs,
                        schema,
                    },
                    other => LogicalPlan::Project {
                        exprs: (0..schema.len()).map(BExpr::Col).collect(),
                        input: Box::new(other),
                        schema,
                    },
                })
            }
            TableRef::Join {
                left,
                right,
                kind,
                on,
            } => {
                let l = self.bind_table_ref(left)?;
                let r = self.bind_table_ref(right)?;
                let schema = l.schema().concat(r.schema());
                let jkind = match kind {
                    JoinKind::Inner => JKind::Inner,
                    JoinKind::Left => JKind::Left,
                    JoinKind::Right => JKind::Right,
                    JoinKind::Full => JKind::Full,
                    JoinKind::Cross => JKind::Cross,
                };
                let mut lkeys = Vec::new();
                let mut rkeys = Vec::new();
                let mut residual: Option<BExpr> = None;
                if let Some(on) = on {
                    for conj in split_conjuncts(on) {
                        if let Some((le, re)) = equi_pair(&conj, l.schema(), r.schema()) {
                            lkeys.push(le);
                            rkeys.push(re);
                        } else {
                            let bound = self.bind_expr(&conj, &schema, None)?;
                            residual = Some(match residual {
                                None => bound,
                                Some(prev) => BExpr::Bin {
                                    op: BinOp::And,
                                    l: Box::new(prev),
                                    r: Box::new(bound),
                                },
                            });
                        }
                    }
                }
                Ok(LogicalPlan::Join {
                    left: Box::new(l),
                    right: Box::new(r),
                    kind: jkind,
                    left_keys: lkeys,
                    right_keys: rkeys,
                    residual,
                    schema,
                })
            }
        }
    }

    /// Applies one WHERE conjunct: plain predicates filter; subquery
    /// predicates become semi/anti joins; scalar subqueries cross-join.
    fn apply_predicate(&self, plan: LogicalPlan, conj: &SqlExpr) -> Result<LogicalPlan> {
        match conj {
            SqlExpr::InSubquery {
                expr,
                query,
                negated,
            } => {
                let sub = self.bind_select(query)?;
                if sub.schema().len() != 1 {
                    return Err(Error::Plan(
                        "IN subquery must produce exactly one column".into(),
                    ));
                }
                let key = self.bind_expr(expr, plan.schema(), None)?;
                let schema = plan.schema().clone();
                Ok(LogicalPlan::Join {
                    left: Box::new(plan),
                    right: Box::new(sub),
                    kind: if *negated { JKind::Anti } else { JKind::Semi },
                    left_keys: vec![key],
                    right_keys: vec![BExpr::Col(0)],
                    residual: None,
                    schema,
                })
            }
            SqlExpr::Exists { query, negated } => {
                // Uncorrelated EXISTS: all-or-nothing semi join without keys.
                let sub = self.bind_select(query)?;
                let schema = plan.schema().clone();
                Ok(LogicalPlan::Join {
                    left: Box::new(plan),
                    right: Box::new(sub),
                    kind: if *negated { JKind::Anti } else { JKind::Semi },
                    left_keys: Vec::new(),
                    right_keys: Vec::new(),
                    residual: None,
                    schema,
                })
            }
            other => {
                // Scalar subqueries inside the predicate: cross join each as a
                // one-row input, then rewrite the expression.
                let mut plan = plan;
                let mut expr = other.clone();
                while let Some(sub) = find_scalar_subquery(&expr) {
                    let mut sub_plan = self.bind_select(&sub)?;
                    if sub_plan.schema().len() != 1 {
                        return Err(Error::Plan(
                            "scalar subquery must produce one column".into(),
                        ));
                    }
                    let col_index = plan.schema().len();
                    // Name the appended column so the rewritten predicate can
                    // resolve it unambiguously.
                    sub_plan = rename_output(sub_plan, &[scalar_col_name(col_index)]);
                    let schema = plan.schema().concat(sub_plan.schema());
                    plan = LogicalPlan::Join {
                        left: Box::new(plan),
                        right: Box::new(sub_plan),
                        kind: JKind::Cross,
                        left_keys: Vec::new(),
                        right_keys: Vec::new(),
                        residual: None,
                        schema,
                    };
                    expr = replace_scalar_subquery(expr, col_index);
                }
                let pred = self.bind_expr(&expr, plan.schema(), None)?;
                Ok(LogicalPlan::Filter {
                    input: Box::new(plan),
                    pred,
                })
            }
        }
    }

    // ---------------- aggregation ----------------

    fn bind_aggregate_select(
        &self,
        input: LogicalPlan,
        s: &Select,
    ) -> Result<(LogicalPlan, Vec<(BExpr, String)>)> {
        let in_schema = input.schema().clone();
        let mut ctx = AggCtx {
            group_keys: Vec::new(),
            group_sql: Vec::new(),
            aggs: Vec::new(),
        };
        for g in &s.group_by {
            let bound = self.bind_expr(g, &in_schema, None)?;
            ctx.group_keys.push(bound);
            ctx.group_sql.push(g.clone());
        }
        // Bind the items over the (virtual) aggregate output.
        let mut items = Vec::new();
        for item in &s.items {
            match item {
                SelectItem::Wildcard | SelectItem::QualifiedWildcard(_) => {
                    return Err(Error::Plan("SELECT * is not valid with GROUP BY".into()));
                }
                SelectItem::Expr { expr, alias } => {
                    let bexpr = self.bind_expr(expr, &in_schema, Some(&mut ctx))?;
                    let name = alias.clone().unwrap_or_else(|| default_name(expr));
                    items.push((bexpr, name));
                }
            }
        }
        let having = s
            .having
            .as_ref()
            .map(|h| self.bind_expr(h, &in_schema, Some(&mut ctx)))
            .transpose()?;

        // Order keys that aren't resolvable over the projection also need the
        // agg rewrite; bind them now so their aggregates get registered.
        let mut bound_order: Vec<Option<BExpr>> = Vec::new();
        for (key, _) in &s.order_by {
            if order_key_as_output(key, &items).is_some() {
                bound_order.push(None);
            } else {
                bound_order.push(Some(self.bind_expr(key, &in_schema, Some(&mut ctx))?));
            }
        }
        let _ = bound_order; // re-resolved by the caller via resolve_order_key

        // Build the aggregate node schema: group keys then aggregates.
        let in_types: Vec<DType> = in_schema.fields.iter().map(|f| f.dtype).collect();
        let mut fields = Vec::new();
        for (i, g) in ctx.group_keys.iter().enumerate() {
            let name = match &s.group_by[i] {
                SqlExpr::Column { name, .. } => name.clone(),
                _ => format!("__grp{i}"),
            };
            fields.push(Field::new(name, g.dtype(&in_types)));
        }
        for (i, a) in ctx.aggs.iter().enumerate() {
            let dtype = agg_output_type(a, &in_types);
            fields.push(Field::new(format!("__agg{i}"), dtype));
        }
        let mut plan = LogicalPlan::Aggregate {
            input: Box::new(input),
            group: ctx.group_keys.clone(),
            aggs: ctx.aggs.clone(),
            schema: Schema::new(fields),
        };
        if let Some(h) = having {
            plan = LogicalPlan::Filter {
                input: Box::new(plan),
                pred: h,
            };
        }
        Ok((plan, items))
    }

    /// Window-function handling for non-aggregate selects: each
    /// `row_number()` in an item appends a Window node and the expression
    /// becomes a reference to the appended column.
    fn bind_with_windows(&self, expr: &SqlExpr, plan: LogicalPlan) -> Result<(BExpr, LogicalPlan)> {
        if let SqlExpr::RowNumber { order_by } = expr {
            let keys = order_by
                .iter()
                .map(|(e, asc)| Ok((self.bind_expr(e, plan.schema(), None)?, *asc)))
                .collect::<Result<Vec<_>>>()?;
            let idx = plan.schema().len();
            let mut fields = plan.schema().fields.clone();
            fields.push(Field::new(format!("__rownum{idx}"), DType::Int));
            let plan = LogicalPlan::Window {
                input: Box::new(plan),
                order: keys,
                schema: Schema::new(fields),
            };
            return Ok((BExpr::Col(idx), plan));
        }
        if expr.contains_window() {
            return Err(Error::Plan(
                "window functions are only supported as top-level select items".into(),
            ));
        }
        let bound = self.bind_expr(expr, plan.schema(), None)?;
        Ok((bound, plan))
    }

    fn resolve_order_key(
        &self,
        key: &SqlExpr,
        s: &Select,
        items: &[(BExpr, String)],
        pre_schema: &Schema,
        has_agg: bool,
    ) -> Result<OrderKey> {
        if let Some(i) = order_key_as_output(key, items) {
            return Ok(OrderKey::Existing(i));
        }
        // Structural match against the original select-item expressions
        // (covers `ORDER BY SUM(x)` when `SUM(x)` is also projected).
        for (i, item) in s.items.iter().enumerate() {
            if let SelectItem::Expr { expr, .. } = item {
                if expr == key {
                    return Ok(OrderKey::Existing(i));
                }
            }
        }
        if has_agg {
            return Err(Error::Plan(format!(
                "ORDER BY key {key:?} must reference an output column in aggregate queries"
            )));
        }
        let bound = self.bind_expr(key, pre_schema, None)?;
        // Structural match against projected expressions.
        if let Some(i) = items.iter().position(|(e, _)| *e == bound) {
            return Ok(OrderKey::Existing(i));
        }
        Ok(OrderKey::Hidden(bound))
    }

    // ---------------- expression binding ----------------

    fn bind_expr(
        &self,
        e: &SqlExpr,
        schema: &Schema,
        mut agg: Option<&mut AggCtx>,
    ) -> Result<BExpr> {
        // In aggregate context, check group-key structural match first.
        if let Some(ctx) = agg.as_deref_mut() {
            if let Some(i) = ctx.group_sql.iter().position(|g| g == e) {
                return Ok(BExpr::Col(i));
            }
            if let SqlExpr::Agg {
                func,
                arg,
                distinct,
            } = e
            {
                let bound_arg = arg
                    .as_ref()
                    .map(|a| self.bind_expr(a, schema, None))
                    .transpose()?;
                let spec = BAgg {
                    func: *func,
                    arg: bound_arg,
                    distinct: *distinct,
                };
                let idx = match ctx.aggs.iter().position(|a| *a == spec) {
                    Some(i) => i,
                    None => {
                        ctx.aggs.push(spec);
                        ctx.aggs.len() - 1
                    }
                };
                return Ok(BExpr::Col(ctx.group_keys.len() + idx));
            }
            // Plain column in aggregate context: allowed only if it matches a
            // group key by resolution.
            if let SqlExpr::Column { qualifier, name } = e {
                let i = schema.resolve(qualifier.as_deref(), name)?;
                if let Some(g) = ctx.group_keys.iter().position(|k| *k == BExpr::Col(i)) {
                    return Ok(BExpr::Col(g));
                }
                return Err(Error::Plan(format!(
                    "column '{name}' must appear in GROUP BY or inside an aggregate"
                )));
            }
        }
        match e {
            SqlExpr::Column { qualifier, name } => {
                let i = schema.resolve(qualifier.as_deref(), name)?;
                Ok(BExpr::Col(i))
            }
            SqlExpr::Int(i) => Ok(BExpr::Lit(Value::Int(*i))),
            SqlExpr::Float(f) => Ok(BExpr::Lit(Value::Float(*f))),
            SqlExpr::Str(s) => Ok(BExpr::Lit(Value::Str(s.clone()))),
            SqlExpr::Bool(b) => Ok(BExpr::Lit(Value::Bool(*b))),
            SqlExpr::Null => Ok(BExpr::Lit(Value::Null)),
            SqlExpr::DateLit(d) => Ok(BExpr::Lit(Value::Date(*d))),
            SqlExpr::Bin { op, left, right } => {
                // Fold `expr ± INTERVAL_*` into date functions.
                if let SqlExpr::Func { name, args } = right.as_ref() {
                    if let Some(unit) = name.strip_prefix("INTERVAL_") {
                        let n = match args.first() {
                            Some(SqlExpr::Int(n)) => *n,
                            _ => return Err(Error::Plan("bad INTERVAL argument".into())),
                        };
                        let n = if *op == BinOp::Sub { -n } else { n };
                        let f = match unit {
                            "MONTH" | "MONTHS" => SFunc::AddMonths,
                            "YEAR" | "YEARS" => SFunc::AddYears,
                            "DAY" | "DAYS" => SFunc::AddDays,
                            other => {
                                return Err(Error::Plan(format!(
                                    "unsupported INTERVAL unit '{other}'"
                                )))
                            }
                        };
                        let base = self.bind_expr(left, schema, agg)?;
                        return Ok(BExpr::Func {
                            f,
                            args: vec![base, BExpr::Lit(Value::Int(n))],
                        });
                    }
                }
                let l = self.bind_expr(left, schema, agg.as_deref_mut())?;
                let r = self.bind_expr(right, schema, agg)?;
                Ok(BExpr::Bin {
                    op: *op,
                    l: Box::new(l),
                    r: Box::new(r),
                })
            }
            SqlExpr::Neg(inner) => Ok(BExpr::Neg(Box::new(self.bind_expr(inner, schema, agg)?))),
            SqlExpr::Not(inner) => Ok(BExpr::Not(Box::new(self.bind_expr(inner, schema, agg)?))),
            SqlExpr::IsNull { expr, negated } => Ok(BExpr::IsNull {
                e: Box::new(self.bind_expr(expr, schema, agg)?),
                negated: *negated,
            }),
            SqlExpr::Like {
                expr,
                pattern,
                negated,
            } => Ok(BExpr::Like {
                e: Box::new(self.bind_expr(expr, schema, agg)?),
                pattern: LikePattern::compile(pattern),
                negated: *negated,
            }),
            SqlExpr::InList {
                expr,
                list,
                negated,
            } => {
                let e = self.bind_expr(expr, schema, agg)?;
                let vals = list.iter().map(literal_value).collect::<Result<Vec<_>>>()?;
                Ok(BExpr::InList {
                    e: Box::new(e),
                    list: vals,
                    negated: *negated,
                })
            }
            SqlExpr::Between {
                expr,
                low,
                high,
                negated,
            } => {
                let e = self.bind_expr(expr, schema, agg.as_deref_mut())?;
                let lo = self.bind_expr(low, schema, agg.as_deref_mut())?;
                let hi = self.bind_expr(high, schema, agg)?;
                let ge = BExpr::Bin {
                    op: BinOp::Ge,
                    l: Box::new(e.clone()),
                    r: Box::new(lo),
                };
                let le = BExpr::Bin {
                    op: BinOp::Le,
                    l: Box::new(e),
                    r: Box::new(hi),
                };
                let both = BExpr::Bin {
                    op: BinOp::And,
                    l: Box::new(ge),
                    r: Box::new(le),
                };
                Ok(if *negated {
                    BExpr::Not(Box::new(both))
                } else {
                    both
                })
            }
            SqlExpr::Case { arms, else_value } => {
                let mut bound_arms = Vec::with_capacity(arms.len());
                for (c, v) in arms {
                    let bc = self.bind_expr(c, schema, agg.as_deref_mut())?;
                    let bv = self.bind_expr(v, schema, agg.as_deref_mut())?;
                    bound_arms.push((bc, bv));
                }
                let be = else_value
                    .as_ref()
                    .map(|e| self.bind_expr(e, schema, agg))
                    .transpose()?
                    .map(Box::new);
                Ok(BExpr::Case {
                    arms: bound_arms,
                    else_value: be,
                })
            }
            SqlExpr::Func { name, args } => {
                let f = SFunc::parse(name)
                    .ok_or_else(|| Error::Plan(format!("unknown function '{name}'")))?;
                let mut bound = Vec::with_capacity(args.len());
                for a in args {
                    bound.push(self.bind_expr(a, schema, agg.as_deref_mut())?);
                }
                Ok(BExpr::Func { f, args: bound })
            }
            SqlExpr::Cast { expr, ty } => {
                let to = match ty.as_str() {
                    "INT" | "INTEGER" | "BIGINT" | "SMALLINT" => DType::Int,
                    "FLOAT" | "DOUBLE" | "REAL" | "DECIMAL" | "NUMERIC" => DType::Float,
                    "VARCHAR" | "TEXT" | "CHAR" | "STRING" => DType::Str,
                    "DATE" => DType::Date,
                    "BOOL" | "BOOLEAN" => DType::Bool,
                    other => return Err(Error::Plan(format!("unsupported cast to {other}"))),
                };
                Ok(BExpr::Cast {
                    e: Box::new(self.bind_expr(expr, schema, agg)?),
                    to,
                })
            }
            SqlExpr::Agg { .. } => Err(Error::Plan(
                "aggregate used outside GROUP BY context".into(),
            )),
            SqlExpr::RowNumber { .. } => Err(Error::Plan(
                "window function not allowed in this position".into(),
            )),
            SqlExpr::InSubquery { .. } | SqlExpr::Exists { .. } | SqlExpr::ScalarSubquery(_) => {
                Err(Error::Plan(
                    "subquery predicates are only supported as top-level WHERE conjuncts".into(),
                ))
            }
        }
    }
}

enum OrderKey {
    Existing(usize),
    Hidden(BExpr),
}

struct WhereResidue {
    remaining: Vec<SqlExpr>,
}

/// Splits an expression on top-level ANDs.
fn split_conjuncts(e: &SqlExpr) -> Vec<SqlExpr> {
    match e {
        SqlExpr::Bin {
            op: BinOp::And,
            left,
            right,
        } => {
            let mut out = split_conjuncts(left);
            out.extend(split_conjuncts(right));
            out
        }
        other => vec![other.clone()],
    }
}

/// If `conj` is `a = b` with `a` resolvable only in `left` and `b` only in
/// `right` (or vice versa), returns the bound equi-key pair.
fn equi_pair(conj: &SqlExpr, left: &Schema, right: &Schema) -> Option<(BExpr, BExpr)> {
    let SqlExpr::Bin {
        op: BinOp::Eq,
        left: a,
        right: b,
    } = conj
    else {
        return None;
    };
    let bind_side = |e: &SqlExpr, s: &Schema| -> Option<BExpr> {
        match e {
            SqlExpr::Column { qualifier, name } => {
                s.resolve(qualifier.as_deref(), name).ok().map(BExpr::Col)
            }
            _ => None,
        }
    };
    if let (Some(l), Some(r)) = (bind_side(a, left), bind_side(b, right)) {
        return Some((l, r));
    }
    match (bind_side(b, left), bind_side(a, right)) {
        (Some(l), Some(r)) => Some((l, r)),
        _ => None,
    }
}

fn order_key_as_output(key: &SqlExpr, items: &[(BExpr, String)]) -> Option<usize> {
    if let SqlExpr::Column {
        qualifier: None,
        name,
    } = key
    {
        return items.iter().position(|(_, n)| n.eq_ignore_ascii_case(name));
    }
    None
}

fn default_name(e: &SqlExpr) -> String {
    match e {
        SqlExpr::Column { name, .. } => name.clone(),
        SqlExpr::Agg { func, .. } => format!("{func:?}").to_lowercase(),
        _ => "expr".to_string(),
    }
}

fn literal_value(e: &SqlExpr) -> Result<Value> {
    Ok(match e {
        SqlExpr::Int(i) => Value::Int(*i),
        SqlExpr::Float(f) => Value::Float(*f),
        SqlExpr::Str(s) => Value::Str(s.clone()),
        SqlExpr::Bool(b) => Value::Bool(*b),
        SqlExpr::Null => Value::Null,
        SqlExpr::DateLit(d) => Value::Date(*d),
        other => return Err(Error::Plan(format!("expected a literal, found {other:?}"))),
    })
}

fn find_scalar_subquery(e: &SqlExpr) -> Option<Select> {
    let mut found = None;
    e.any(&mut |x| {
        if let SqlExpr::ScalarSubquery(q) = x {
            if found.is_none() {
                found = Some((**q).clone());
            }
            true
        } else {
            false
        }
    });
    found
}

/// Replaces the first scalar subquery with a column reference.
fn replace_scalar_subquery(e: SqlExpr, col: usize) -> SqlExpr {
    fn rec(e: SqlExpr, col: usize, done: &mut bool) -> SqlExpr {
        if *done {
            return e;
        }
        match e {
            SqlExpr::ScalarSubquery(_) => {
                *done = true;
                SqlExpr::Column {
                    qualifier: None,
                    name: format!("__scalar_col_{col}"),
                }
            }
            SqlExpr::Bin { op, left, right } => {
                let l = rec(*left, col, done);
                let r = rec(*right, col, done);
                SqlExpr::Bin {
                    op,
                    left: Box::new(l),
                    right: Box::new(r),
                }
            }
            SqlExpr::Not(inner) => SqlExpr::Not(Box::new(rec(*inner, col, done))),
            SqlExpr::Neg(inner) => SqlExpr::Neg(Box::new(rec(*inner, col, done))),
            other => other,
        }
    }
    let mut done = false;

    rec(e, col, &mut done)
}

/// Scalar-subquery cross joins name their appended column specially so the
/// rewritten predicate can find it regardless of schema ambiguity.
pub(crate) fn scalar_col_name(col: usize) -> String {
    format!("__scalar_col_{col}")
}

fn agg_output_type(a: &BAgg, in_types: &[DType]) -> DType {
    match a.func {
        AggName::Count => DType::Int,
        AggName::Avg => DType::Float,
        AggName::Sum | AggName::Min | AggName::Max => a
            .arg
            .as_ref()
            .map(|e| e.dtype(in_types))
            .unwrap_or(DType::Float),
    }
}
