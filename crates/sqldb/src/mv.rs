//! Incremental view maintenance (IVM) for standing queries.
//!
//! [`Database::register_view`] compiles a SQL statement once, materializes
//! its initial result, and keeps the result up to date on every subsequent
//! [`Database::append`] — propagating only the appended rows (a **delta**)
//! where the plan shape allows it, and falling back to a full, explicitly
//! traced recompute where it does not. Readers call [`Database::view`] and
//! get a lock-free, never-torn [`ViewState`]: an immutable result plus the
//! snapshot version it is consistent with.
//!
//! # Delta rules
//!
//! Refresh happens inside the writer critical section, right after the new
//! snapshot version is published, so each refresh sees exactly one table
//! grown by exactly the appended suffix. Per referenced table the plan is
//! classified once, at prepare time:
//!
//! * **delta-chain** — the path from the table's scan up to the root is all
//!   `Filter`/`Project`/`Join` nodes, with the scan feeding the **left**
//!   (probe) side of every join on the path and every such join
//!   insert-monotone (`Inner`/`Left`/`Semi`/`Anti`/`Cross`). These
//!   operators are elementwise or left-major, so the new result is exactly
//!   the old result plus a suffix: re-running the plan with the table's
//!   scan overlaid by just the appended rows (a delta-join against the
//!   pinned base snapshot) yields precisely that suffix, bit-identically.
//! * **delta-agg** — the chain reaches a single `Aggregate` barrier; the
//!   subtree feeding the aggregate is maintained as a materialized input
//!   batch, the delta chain appends to it, and publication re-runs the
//!   aggregation (and everything above it) over the maintained input via an
//!   internal `Scan` substitution. Re-aggregating the maintained input —
//!   rather than merging old and new aggregate outputs — is what keeps
//!   float `SUM`/`AVG` **bit-identical** to a from-scratch recompute: the
//!   engine folds floats over the fixed morsel grid of the aggregate's
//!   input, so only an identical input row stream reproduces identical
//!   bits. The delta still skips the expensive part (the scan / filter /
//!   join chain below the aggregate runs over the appended rows only).
//! * **recompute** — everything else: plans with CTEs, tables scanned more
//!   than once, deltas feeding a join build side or a non-monotone
//!   (`Right`/`Full`) join, and order-sensitive operators (`Sort`,
//!   `Distinct`, `Window`, `Limit`) between the scan and the root (above
//!   the aggregate barrier they are fine — they re-run from the small
//!   aggregate output every refresh).
//!
//! # Consistency and staleness
//!
//! A published [`ViewState`] stamped with snapshot version *v* is
//! bit-identical to executing the view's own prepared plan from scratch
//! against the pinned snapshot *v* (`Value::total_cmp`-identical cells, same
//! row order). Refresh runs under the same lifecycle machinery as queries —
//! armed [`CancelToken`] (deadline + memory budget from the view's
//! [`EngineConfig`] or environment), worker-panic containment, and the
//! [`FaultSite::ViewPublish`] injection point — and publishes atomically via
//! [`Versioned`]. A failed, cancelled, or fault-injected refresh publishes
//! nothing: the view stays at its prior consistent version (staleness is
//! visible as `state.snapshot_version() < db.stats_version()`), and the next
//! successful refresh heals it with a full recompute. Events on tables the
//! view does not reference re-stamp the carried result only when the view
//! is currently consistent — a stale view is never re-stamped without
//! recomputing, so the staleness check above cannot be defeated by writes
//! to unrelated tables.
//!
//! # Differential oracle
//!
//! `PYTOND_NO_IVM=1` disables maintenance: [`Database::view`] recomputes the
//! standing query from scratch on every read, mirroring `PYTOND_NO_FUSE` /
//! `PYTOND_NO_DICT`. The maintenance property suite runs the whole corpus
//! both ways and additionally compares every maintained state against
//! [`Database::view_oracle`] (an in-process from-scratch recompute using the
//! view's own prepared plan, so cost-based join orders cannot drift between
//! the two sides). See `docs/VIEWS.md`.

use crate::db::{
    default_mem_budget_mb, default_timeout_ms, no_fuse, no_ivm, panic_payload_message, Database,
    EngineConfig, PreparedQuery, Profile, Snapshot,
};
use crate::exec::{execute_with_temps, ExecOptions};
use crate::plan::{BoundQuery, JKind, LogicalPlan};
use crate::table::{Batch, Schema, StoredTable};
use pytond_common::cancel::CancelToken;
use pytond_common::fault::{self, FaultSite};
use pytond_common::hash::FxHashMap;
use pytond_common::version::Versioned;
use pytond_common::{pool, Error, Relation, Result};
use std::collections::BTreeSet;
use std::sync::{Arc, Mutex};
use std::time::{Duration, Instant};

/// Name of the internal scan substituted for the aggregate's input subtree
/// when a delta-agg view publishes from its maintained input batch.
const MV_INPUT: &str = "__mv_input__";

/// How the most recent refresh produced the published result.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum RefreshMode {
    /// The initial materialization at [`Database::register_view`] time.
    Initial,
    /// Incremental propagation of the appended rows (delta-chain or
    /// delta-agg; a no-op append publishes `Delta` with zero rows).
    Delta,
    /// Full re-execution of the prepared plan (ineligible shape, stale
    /// maintenance state, a replaced base table, or `PYTOND_NO_IVM=1`).
    Recompute,
}

impl RefreshMode {
    /// Lower-case token used in traces (`delta` / `recompute` / `initial`).
    pub fn name(self) -> &'static str {
        match self {
            RefreshMode::Initial => "initial",
            RefreshMode::Delta => "delta",
            RefreshMode::Recompute => "recompute",
        }
    }
}

/// One immutable published state of a view: the result, the snapshot
/// version it is consistent with, and how the refresh produced it.
///
/// Obtained from [`Database::view`]; the `Arc` pins this state for as long
/// as it is held — concurrent refreshes publish new states without ever
/// mutating one a reader observes.
#[derive(Debug)]
pub struct ViewState {
    name: String,
    rel: Arc<Relation>,
    snapshot_version: u64,
    mode: RefreshMode,
    rows_propagated: u64,
    reason: String,
    refresh_ns: u64,
}

impl ViewState {
    /// The materialized result.
    pub fn relation(&self) -> &Relation {
        &self.rel
    }

    /// The materialized result, shareable without a deep copy.
    pub fn shared_relation(&self) -> Arc<Relation> {
        self.rel.clone()
    }

    /// The [`Snapshot::version`] this result is consistent with: executing
    /// the view's prepared plan from scratch against that pinned snapshot
    /// reproduces [`ViewState::relation`] bit-for-bit. A value behind
    /// [`Database::stats_version`] means the view is stale (its last
    /// refresh failed or was cancelled).
    pub fn snapshot_version(&self) -> u64 {
        self.snapshot_version
    }

    /// How the refresh that published this state ran.
    pub fn mode(&self) -> RefreshMode {
        self.mode
    }

    /// Rows the refresh pushed through the plan: the delta rows propagated
    /// (chain output or aggregate-input rows) in `delta` mode, the full
    /// result rows in `initial`/`recompute` mode.
    pub fn rows_propagated(&self) -> u64 {
        self.rows_propagated
    }

    /// Why the refresh chose its mode (empty for an ordinary delta).
    pub fn reason(&self) -> &str {
        &self.reason
    }

    /// Wall-clock nanoseconds the refresh took (compute + publication).
    pub fn refresh_ns(&self) -> u64 {
        self.refresh_ns
    }

    /// One-line `view:` trace header, e.g.
    /// `view: top_suppliers v12 mode=delta rows=512 refresh=180µs`.
    pub fn summary(&self) -> String {
        let mut out = format!(
            "view: {} v{} mode={} rows={} refresh={:.0}µs",
            self.name,
            self.snapshot_version,
            self.mode.name(),
            self.rows_propagated,
            self.refresh_ns as f64 / 1e3,
        );
        if !self.reason.is_empty() {
            out.push_str(&format!(" ({})", self.reason));
        }
        out
    }
}

/// Per-referenced-table maintenance decision, fixed at prepare time.
#[derive(Debug, Clone, PartialEq, Eq)]
enum TableClass {
    /// Appends propagate as a suffix through the chain to the root.
    Chain,
    /// Appends propagate into the maintained aggregate input at this
    /// child-index path (root → aggregate node).
    Agg(Vec<usize>),
    /// Appends force a full recompute, for the recorded reason.
    Recompute(&'static str),
}

impl TableClass {
    fn render(&self) -> String {
        match self {
            TableClass::Chain => "delta (chain)".to_string(),
            TableClass::Agg(_) => "delta (agg)".to_string(),
            TableClass::Recompute(r) => format!("recompute ({r})"),
        }
    }
}

/// Pre-built artifacts for delta-agg maintenance.
#[derive(Debug)]
struct AggMaint {
    /// The aggregate's input subtree as a standalone query (run with the
    /// appended table overlaid to produce the delta input rows).
    input_query: BoundQuery,
    /// The full plan with the aggregate's input replaced by a scan of the
    /// maintained input batch (run to publish).
    rewritten_query: BoundQuery,
    /// Schema of the maintained input batch.
    input_schema: Schema,
}

/// The compiled maintenance plan of a view: prepared query + per-table
/// classification (+ the agg-rewrite artifacts when any table is
/// agg-eligible).
#[derive(Debug)]
struct ViewPlan {
    prepared: PreparedQuery,
    /// Lower-cased referenced table name → decision. Tables absent from
    /// this map are unreferenced: events on them only bump the stamp (and
    /// only while the view is currently consistent).
    classes: FxHashMap<String, TableClass>,
    agg: Option<AggMaint>,
}

/// Mutable maintenance state, guarded by the entry mutex (all mutations run
/// inside the database writer critical section).
#[derive(Debug)]
struct ViewInner {
    plan: ViewPlan,
    /// Set when a referenced-table replacement invalidated `plan` and the
    /// re-prepare at replacement time failed. The stored plan binds column
    /// positions of the *replaced* schema, so nothing may ever execute it
    /// again — every later refresh or read retries `prepare` from source
    /// first and stays stale if the view still does not compile.
    plan_stale: bool,
    /// Snapshot version of the last successful refresh; a refresh may apply
    /// a delta only when it extends exactly this version.
    parent_version: u64,
    /// Row counts of the referenced tables at `parent_version` (delta = the
    /// rows past the recorded count).
    base_rows: FxHashMap<String, usize>,
    /// The published result in engine (pre-decode) column space; appended
    /// in place by chain deltas. `None` = state lost to a failed refresh;
    /// the next refresh recomputes.
    content: Option<Batch>,
    /// The maintained aggregate input batch (delta-agg views only).
    agg_input: Option<Batch>,
    /// Most recent refresh failure, for diagnostics.
    last_error: Option<String>,
}

/// One registered view: immutable identity + config, the atomically
/// published state, and the lock-guarded maintenance internals.
pub(crate) struct ViewEntry {
    name: String,
    sql: String,
    config: EngineConfig,
    published: Versioned<ViewState>,
    inner: Mutex<ViewInner>,
}

impl std::fmt::Debug for ViewEntry {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("ViewEntry")
            .field("name", &self.name)
            .field("sql", &self.sql)
            .finish_non_exhaustive()
    }
}

// ---------------------------------------------------------------------------
// Plan classification
// ---------------------------------------------------------------------------

fn collect_scan_tables(plan: &LogicalPlan, out: &mut BTreeSet<String>) {
    if let LogicalPlan::Scan { table, .. } = plan {
        out.insert(table.to_lowercase());
    }
    for child in plan.children() {
        collect_scan_tables(child, out);
    }
}

fn scan_count(plan: &LogicalPlan, table: &str) -> usize {
    let here = matches!(plan, LogicalPlan::Scan { table: t, .. } if t.eq_ignore_ascii_case(table))
        as usize;
    here + plan
        .children()
        .iter()
        .map(|c| scan_count(c, table))
        .sum::<usize>()
}

/// Rolled-up eligibility of the (unique) path from `table`'s scan to the
/// current node.
enum Roll {
    /// `table` is not scanned in this subtree.
    NotHere,
    /// So far the path is pure chain: the delta surfaces as a suffix here.
    Chain,
    /// The path hit an `Aggregate` barrier at this root-relative path;
    /// everything above re-runs from the maintained input.
    Agg(Vec<usize>),
    /// The path hit an operator that breaks suffix order.
    Stop(&'static str),
}

fn roll(plan: &LogicalPlan, table: &str, path: &mut Vec<usize>) -> Roll {
    if let LogicalPlan::Scan { table: t, .. } = plan {
        return if t.eq_ignore_ascii_case(table) {
            Roll::Chain
        } else {
            Roll::NotHere
        };
    }
    for (i, child) in plan.children().iter().enumerate() {
        path.push(i);
        let r = roll(child, table, path);
        path.pop();
        match r {
            Roll::NotHere => continue,
            Roll::Stop(_) | Roll::Agg(_) => return r,
            Roll::Chain => {
                return match plan {
                    LogicalPlan::Filter { .. } | LogicalPlan::Project { .. } => Roll::Chain,
                    LogicalPlan::Join { kind, .. } => {
                        if i == 0
                            && matches!(
                                kind,
                                JKind::Inner
                                    | JKind::Left
                                    | JKind::Semi
                                    | JKind::Anti
                                    | JKind::Cross
                            )
                        {
                            // Joins enumerate output left-major, so delta
                            // rows on the probe (left) side stay a suffix;
                            // these kinds are also insert-monotone on that
                            // side (existing output rows never change).
                            Roll::Chain
                        } else if i == 1 {
                            Roll::Stop("delta feeds a join build side")
                        } else {
                            Roll::Stop("non-monotone outer join")
                        }
                    }
                    LogicalPlan::Aggregate { .. } => Roll::Agg(path.clone()),
                    LogicalPlan::Sort { .. } => Roll::Stop("sort"),
                    LogicalPlan::Limit { .. } => Roll::Stop("limit"),
                    LogicalPlan::Distinct { .. } => Roll::Stop("distinct"),
                    LogicalPlan::Window { .. } => Roll::Stop("window"),
                    LogicalPlan::Scan { .. } | LogicalPlan::Values { .. } => {
                        unreachable!("leaves have no children")
                    }
                };
            }
        }
    }
    Roll::NotHere
}

fn node_at<'p>(mut plan: &'p LogicalPlan, path: &[usize]) -> &'p LogicalPlan {
    for &i in path {
        plan = plan.children()[i];
    }
    plan
}

fn child_mut(plan: &mut LogicalPlan, i: usize) -> &mut LogicalPlan {
    match plan {
        LogicalPlan::Filter { input, .. }
        | LogicalPlan::Project { input, .. }
        | LogicalPlan::Aggregate { input, .. }
        | LogicalPlan::Sort { input, .. }
        | LogicalPlan::Limit { input, .. }
        | LogicalPlan::Window { input, .. }
        | LogicalPlan::Distinct { input } => input,
        LogicalPlan::Join { left, right, .. } => {
            if i == 0 {
                left
            } else {
                right
            }
        }
        LogicalPlan::Scan { .. } | LogicalPlan::Values { .. } => {
            unreachable!("leaf on a maintenance path")
        }
    }
}

/// Clones `root` with the input of the aggregate at `path` replaced by a
/// scan of [`MV_INPUT`]; returns the rewritten plan and the input schema.
fn rewrite_agg_input(root: &LogicalPlan, path: &[usize]) -> (LogicalPlan, Schema) {
    let mut rewritten = root.clone();
    let mut node = &mut rewritten;
    for &i in path {
        node = child_mut(node, i);
    }
    let LogicalPlan::Aggregate { input, .. } = node else {
        unreachable!("classification recorded a non-aggregate barrier");
    };
    let schema = input.schema().clone();
    **input = LogicalPlan::Scan {
        table: MV_INPUT.to_string(),
        schema: schema.clone(),
        projection: None,
        pred: None,
    };
    (rewritten, schema)
}

fn build_plan(prepared: PreparedQuery) -> ViewPlan {
    let bound = prepared.plan();
    let mut tables = BTreeSet::new();
    for (_, p) in &bound.ctes {
        collect_scan_tables(p, &mut tables);
    }
    collect_scan_tables(&bound.root, &mut tables);
    let has_ctes = !bound.ctes.is_empty();
    let mut classes = FxHashMap::default();
    let mut agg_path: Option<Vec<usize>> = None;
    for t in tables {
        let class = if has_ctes {
            // CTE temporaries shadow base tables inside the executor, so a
            // delta overlay could be masked; recompute keeps it simple and
            // correct.
            TableClass::Recompute("plan has CTEs")
        } else if scan_count(&bound.root, &t) > 1 {
            TableClass::Recompute("table scanned more than once")
        } else {
            let mut path = Vec::new();
            match roll(&bound.root, &t, &mut path) {
                Roll::Chain => TableClass::Chain,
                Roll::Agg(p) => match &agg_path {
                    None => {
                        agg_path = Some(p.clone());
                        TableClass::Agg(p)
                    }
                    Some(q) if *q == p => TableClass::Agg(p),
                    Some(_) => TableClass::Recompute("second aggregate barrier"),
                },
                Roll::Stop(reason) => TableClass::Recompute(reason),
                Roll::NotHere => unreachable!("table was collected from a scan"),
            }
        };
        classes.insert(t, class);
    }
    let agg = agg_path.map(|p| {
        let (rewritten_root, input_schema) = rewrite_agg_input(&bound.root, &p);
        let input_root = node_at(&bound.root, &p).children()[0].clone();
        AggMaint {
            input_query: BoundQuery {
                ctes: Vec::new(),
                root: input_root,
            },
            rewritten_query: BoundQuery {
                ctes: Vec::new(),
                root: rewritten_root,
            },
            input_schema,
        }
    });
    ViewPlan {
        prepared,
        classes,
        agg,
    }
}

// ---------------------------------------------------------------------------
// Execution helpers
// ---------------------------------------------------------------------------

/// Runs a (sub)plan against a pinned snapshot with pre-seeded temporaries,
/// under the full query lifecycle: armed [`CancelToken`] (deadline + memory
/// budget from `config`/environment, label naming the view and version) and
/// worker-panic containment. The admission gate is deliberately skipped —
/// maintenance refresh runs inside the writer critical section and must not
/// queue behind the read load it exists to serve (the initial
/// materialization runs outside the lock, but shares this path).
fn run_plan(
    snap: &Snapshot,
    q: &BoundQuery,
    temps: FxHashMap<String, StoredTable>,
    config: &EngineConfig,
    label: &str,
) -> Result<(Batch, Schema)> {
    let timeout_ms = config
        .timeout_ms
        .or_else(default_timeout_ms)
        .filter(|&ms| ms > 0);
    let budget_mb = config
        .mem_budget_mb
        .or_else(default_mem_budget_mb)
        .filter(|&mb| mb > 0);
    let cancel = if timeout_ms.is_some() || budget_mb.is_some() {
        CancelToken::new()
    } else {
        CancelToken::disarmed()
    };
    cancel.set_label(label.to_string());
    if let Some(ms) = timeout_ms {
        cancel.set_deadline(Duration::from_millis(ms));
    }
    if let Some(mb) = budget_mb {
        cancel.set_budget_bytes(mb.saturating_mul(1024 * 1024));
    }
    let opts = ExecOptions {
        threads: pool::resolve_threads(config.threads),
        fused: matches!(config.profile, Profile::Fused | Profile::Lingo) && !no_fuse(),
        morsel: config.morsel,
        zone_prune: config.zone_prune,
        cancel: cancel.clone(),
    };
    let run = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
        execute_with_temps(snap, q, temps, opts)
    }));
    match run {
        Ok(r) => r.map(|(batch, schema, _)| (batch, schema)),
        Err(payload) => Err(Error::Internal(format!(
            "view refresh '{label}' aborted by worker panic: {}",
            panic_payload_message(payload.as_ref())
        ))),
    }
}

/// A [`StoredTable`] overlay holding only rows `[from, len)` of `stored` —
/// the appended suffix a delta execution scans instead of the full table.
/// Statistics are dropped (no zone pruning over the delta), dictionary
/// columns keep sharing their `Arc`ed dictionaries.
fn suffix_overlay(stored: &StoredTable, from: usize) -> StoredTable {
    let idx: Vec<usize> = (from..stored.batch.num_rows()).collect();
    StoredTable {
        schema: stored.schema.clone(),
        batch: stored.batch.gather(&idx),
        stats: None,
    }
}

/// Appends `delta`'s rows onto `dst` column by column (copy-on-write: a
/// column still shared with a published state is cloned before mutation).
fn append_batch(dst: &mut Batch, delta: &Batch) -> Result<()> {
    debug_assert_eq!(dst.cols.len(), delta.cols.len());
    for (d, s) in dst.cols.iter_mut().zip(&delta.cols) {
        Arc::make_mut(d).append(s)?;
    }
    Ok(())
}

fn mv_input_temp(aggm: &AggMaint, input: Batch) -> FxHashMap<String, StoredTable> {
    let mut temps = FxHashMap::default();
    temps.insert(
        MV_INPUT.to_string(),
        StoredTable {
            schema: Schema::new(
                aggm.input_schema
                    .fields
                    .iter()
                    .map(|f| crate::table::Field::new(f.name.clone(), f.dtype))
                    .collect(),
            ),
            batch: input,
            stats: None,
        },
    );
    temps
}

// ---------------------------------------------------------------------------
// Refresh
// ---------------------------------------------------------------------------

/// What the writer just published.
#[derive(Clone, Copy)]
enum Event<'a> {
    /// `Database::append` grew this table by a suffix.
    Append(&'a str),
    /// `Database::register` created or replaced this table.
    Register(&'a str),
}

/// Writer hook: refresh every registered view against the snapshot the
/// append just published. Runs inside the writer critical section; view
/// failures are contained per view and never fail the append.
pub(crate) fn on_append(db: &Database, snap: &Arc<Snapshot>, table: &str) {
    refresh_all(db, snap, Event::Append(table));
}

/// Writer hook for `register`: views referencing the (re)registered table
/// re-prepare and recompute; others just advance their stamp.
pub(crate) fn on_register(db: &Database, snap: &Arc<Snapshot>, table: &str) {
    refresh_all(db, snap, Event::Register(table));
}

fn refresh_all(db: &Database, snap: &Arc<Snapshot>, event: Event<'_>) {
    let mut entries: Vec<Arc<ViewEntry>> = {
        let views = db.shared.views.lock().expect("view registry poisoned");
        if views.is_empty() {
            return;
        }
        views.values().cloned().collect()
    };
    // Deterministic refresh order: fault-site visit counters (and therefore
    // seeded fault schedules) must not depend on hash-map iteration order.
    entries.sort_by(|a, b| a.name.cmp(&b.name));
    for entry in entries {
        entry.refresh(db, snap, event);
    }
}

impl ViewEntry {
    /// Current row counts of the referenced tables (the baseline future
    /// deltas measure against).
    fn base_rows(plan: &ViewPlan, snap: &Snapshot) -> FxHashMap<String, usize> {
        plan.classes
            .keys()
            .filter_map(|t| snap.table(t).map(|s| (t.clone(), s.num_rows())))
            .collect()
    }

    /// Full recompute of content (and the maintained aggregate input, when
    /// the plan is agg-eligible). Returns `(content, agg_input, schema)`
    /// without touching `inner` — the caller commits on success.
    fn recompute(
        &self,
        plan: &ViewPlan,
        snap: &Snapshot,
        label: &str,
    ) -> Result<(Batch, Option<Batch>, Schema)> {
        if let Some(aggm) = &plan.agg {
            let (input, _) = run_plan(
                snap,
                &aggm.input_query,
                FxHashMap::default(),
                &self.config,
                label,
            )?;
            let temps = mv_input_temp(aggm, input.clone());
            let (content, schema) =
                run_plan(snap, &aggm.rewritten_query, temps, &self.config, label)?;
            Ok((content, Some(input), schema))
        } else {
            let (content, schema) = run_plan(
                snap,
                plan.prepared.plan(),
                FxHashMap::default(),
                &self.config,
                label,
            )?;
            Ok((content, None, schema))
        }
    }

    fn publish(
        &self,
        snap: &Snapshot,
        rel: Arc<Relation>,
        mode: RefreshMode,
        rows: u64,
        reason: String,
        started: Instant,
    ) {
        self.published.publish(Arc::new(ViewState {
            name: self.name.clone(),
            rel,
            snapshot_version: snap.version(),
            mode,
            rows_propagated: rows,
            reason,
            refresh_ns: started.elapsed().as_nanos() as u64,
        }));
    }

    /// One refresh attempt against the just-published snapshot. Any error
    /// (injected fault, cancellation, budget, panic) leaves the published
    /// state untouched at its prior consistent version and drops the
    /// maintenance state so the next refresh recomputes.
    fn refresh(&self, db: &Database, snap: &Arc<Snapshot>, event: Event<'_>) {
        let started = Instant::now();
        let mut inner = self.inner.lock().expect("view entry poisoned");
        let inner = &mut *inner;
        if let Err(e) = self.refresh_event(db, inner, snap, event, started) {
            // Keep the prior consistent version; heal by recompute next time.
            inner.content = None;
            inner.agg_input = None;
            inner.last_error = Some(e.to_string());
        }
    }

    fn refresh_event(
        &self,
        db: &Database,
        inner: &mut ViewInner,
        snap: &Arc<Snapshot>,
        event: Event<'_>,
        started: Instant,
    ) -> Result<()> {
        if matches!(event, Event::Append(_)) && no_ivm() {
            return Ok(());
        }
        if inner.plan_stale {
            // The stored plan binds the schema of a since-replaced table and
            // must never execute (a positionally-compatible replacement
            // would silently produce wrong rows stamped as fresh). Retry
            // prepare from source; the view stays stale until it compiles.
            let prepared = db.prepare(&self.sql, self.config.profile).map_err(|e| {
                Error::Plan(format!("view '{}' still does not prepare: {e}", self.name))
            })?;
            inner.plan = build_plan(prepared);
            inner.plan_stale = false;
            inner.content = None;
            inner.agg_input = None;
            if no_ivm() {
                return Ok(());
            }
            return self.refresh_full(inner, snap, "plan re-prepared", started);
        }
        match event {
            Event::Register(t) => {
                if !inner.plan.classes.contains_key(&t.to_lowercase()) {
                    return self.refresh_unreferenced(inner, snap, t, started);
                }
                // Referenced table replaced: the stored plan may bind dead
                // column indices — re-prepare from source, re-classify, and
                // recompute.
                match db.prepare(&self.sql, self.config.profile) {
                    Ok(prepared) => {
                        inner.plan = build_plan(prepared);
                        inner.content = None;
                        inner.agg_input = None;
                        if no_ivm() {
                            inner.parent_version = snap.version();
                            return Ok(());
                        }
                        self.refresh_full(inner, snap, "table replaced", started)
                    }
                    Err(e) => {
                        inner.plan_stale = true;
                        Err(Error::Plan(format!(
                            "view '{}' no longer prepares after replacing '{t}': {e}",
                            self.name
                        )))
                    }
                }
            }
            Event::Append(t) => self.refresh_append(inner, snap, t, started),
        }
    }

    /// An event on a table the plan does not reference: the result cannot
    /// have changed, so a view that is consistent with the immediately
    /// preceding version just advances its stamp (the published relation is
    /// carried by pointer, no copy). A view that is NOT consistent — its
    /// last refresh failed or was cancelled — must never be re-stamped
    /// (that would falsely mark stale content as fresh and defeat the
    /// `snapshot_version() < stats_version()` staleness check); it heals by
    /// full recompute instead, keeping its prior stale stamp if the
    /// recompute fails too.
    fn refresh_unreferenced(
        &self,
        inner: &mut ViewInner,
        snap: &Snapshot,
        t: &str,
        started: Instant,
    ) -> Result<()> {
        let consistent = inner.content.is_some() && inner.parent_version + 1 == snap.version();
        if no_ivm() {
            if consistent {
                inner.parent_version = snap.version();
            }
            return Ok(());
        }
        if !consistent {
            return self.refresh_full(inner, snap, "healing stale view", started);
        }
        let rel = self.published.load().rel.clone();
        inner.parent_version = snap.version();
        self.publish(
            snap,
            rel,
            RefreshMode::Delta,
            0,
            format!("'{t}' not referenced"),
            started,
        );
        Ok(())
    }

    /// Full recompute + publish (the fallback and initial path).
    fn refresh_full(
        &self,
        inner: &mut ViewInner,
        snap: &Snapshot,
        reason: &str,
        started: Instant,
    ) -> Result<()> {
        let label = format!("mv:{}@v{}", self.name, snap.version());
        let (content, agg_input, schema) = self.recompute(&inner.plan, snap, &label)?;
        self.fault_gate(snap)?;
        let rel = Arc::new(content.to_relation(&schema));
        let rows = content.num_rows() as u64;
        inner.content = Some(content);
        inner.agg_input = agg_input;
        inner.parent_version = snap.version();
        inner.base_rows = Self::base_rows(&inner.plan, snap);
        inner.last_error = None;
        self.publish(
            snap,
            rel,
            RefreshMode::Recompute,
            rows,
            reason.to_string(),
            started,
        );
        Ok(())
    }

    /// The [`FaultSite::ViewPublish`] injection point: fires after the new
    /// result is computed but before anything becomes visible.
    fn fault_gate(&self, snap: &Snapshot) -> Result<()> {
        if fault::injected(FaultSite::ViewPublish) {
            return Err(Error::Internal(format!(
                "injected fault: view-publish ('{}' at v{})",
                self.name,
                snap.version()
            )));
        }
        Ok(())
    }

    /// Delta (or fallback) refresh after `append(t)` published `snap`.
    fn refresh_append(
        &self,
        inner: &mut ViewInner,
        snap: &Snapshot,
        t: &str,
        started: Instant,
    ) -> Result<()> {
        let key = t.to_lowercase();
        let Some(class) = inner.plan.classes.get(&key).cloned() else {
            return self.refresh_unreferenced(inner, snap, t, started);
        };
        let reason = match class {
            TableClass::Recompute(r) => r,
            _ if inner.content.is_none() => "maintenance state lost",
            _ if inner.parent_version + 1 != snap.version() => "stale maintenance state",
            _ if !inner.base_rows.contains_key(&key) => "untracked base rows",
            TableClass::Chain => return self.delta_chain(inner, snap, &key, started),
            TableClass::Agg(_) => return self.delta_agg(inner, snap, &key, started),
        };
        self.refresh_full(inner, snap, reason, started)
    }

    /// Chain delta: run the whole plan with the appended table overlaid by
    /// its new suffix; the output is exactly the rows to append to the
    /// maintained content.
    fn delta_chain(
        &self,
        inner: &mut ViewInner,
        snap: &Snapshot,
        key: &str,
        started: Instant,
    ) -> Result<()> {
        let label = format!("mv:{}@v{}", self.name, snap.version());
        let old_n = inner.base_rows[key];
        let stored = snap
            .table(key)
            .ok_or_else(|| Error::Exec(format!("view base table '{key}' disappeared")))?;
        let mut temps = FxHashMap::default();
        temps.insert(key.to_string(), suffix_overlay(stored, old_n));
        let (delta, schema) = run_plan(
            snap,
            inner.plan.prepared.plan(),
            temps,
            &self.config,
            &label,
        )?;
        self.fault_gate(snap)?;
        let rows = delta.num_rows() as u64;
        let content = inner.content.as_mut().expect("checked by caller");
        append_batch(content, &delta)?;
        let rel = Arc::new(content.to_relation(&schema));
        inner.parent_version = snap.version();
        inner.base_rows.insert(key.to_string(), stored.num_rows());
        inner.last_error = None;
        self.publish(snap, rel, RefreshMode::Delta, rows, String::new(), started);
        Ok(())
    }

    /// Aggregate delta: run only the aggregate's input subtree over the
    /// appended suffix, extend the maintained input, then publish by
    /// re-running the aggregation (and the tail above it) over the
    /// maintained input.
    fn delta_agg(
        &self,
        inner: &mut ViewInner,
        snap: &Snapshot,
        key: &str,
        started: Instant,
    ) -> Result<()> {
        let label = format!("mv:{}@v{}", self.name, snap.version());
        let aggm = inner
            .plan
            .agg
            .as_ref()
            .expect("agg class implies artifacts");
        let old_n = inner.base_rows[key];
        let stored = snap
            .table(key)
            .ok_or_else(|| Error::Exec(format!("view base table '{key}' disappeared")))?;
        let mut temps = FxHashMap::default();
        temps.insert(key.to_string(), suffix_overlay(stored, old_n));
        let (delta_in, _) = run_plan(snap, &aggm.input_query, temps, &self.config, &label)?;
        let rows = delta_in.num_rows() as u64;
        let input = inner
            .agg_input
            .as_mut()
            .ok_or_else(|| Error::Internal("agg maintenance state lost".into()))?;
        append_batch(input, &delta_in)?;
        let temps = mv_input_temp(aggm, input.clone());
        let (content, schema) = run_plan(snap, &aggm.rewritten_query, temps, &self.config, &label)?;
        self.fault_gate(snap)?;
        let rel = Arc::new(content.to_relation(&schema));
        inner.content = Some(content);
        inner.parent_version = snap.version();
        inner.base_rows.insert(key.to_string(), stored.num_rows());
        inner.last_error = None;
        self.publish(snap, rel, RefreshMode::Delta, rows, String::new(), started);
        Ok(())
    }

    /// The prepared plan reads execute (the oracle and `PYTOND_NO_IVM`
    /// recompute-on-read paths). When a referenced-table replacement
    /// invalidated the stored plan, re-prepares from source first — a stale
    /// plan must never run, it could silently bind a
    /// positionally-compatible replacement schema — and errors (leaving the
    /// view stale) if the view still does not compile.
    fn read_prepared(&self, db: &Database) -> Result<PreparedQuery> {
        let mut inner = self.inner.lock().expect("view entry poisoned");
        if inner.plan_stale {
            let prepared = db.prepare(&self.sql, self.config.profile).map_err(|e| {
                Error::Plan(format!(
                    "view '{}' does not prepare against the current schema: {e}",
                    self.name
                ))
            })?;
            inner.plan = build_plan(prepared);
            inner.plan_stale = false;
        }
        Ok(inner.plan.prepared.clone())
    }
}

// ---------------------------------------------------------------------------
// Database API
// ---------------------------------------------------------------------------

impl Database {
    /// Registers a standing query as a materialized view: compiles `sql`
    /// once against the current snapshot, materializes the initial result,
    /// and keeps it maintained on every subsequent [`Database::append`] —
    /// incrementally where the plan shape allows (see the [`crate::mv`]
    /// module docs for the delta rules), by traced full recompute otherwise.
    /// Re-registering a name replaces the view. Uses the default
    /// [`EngineConfig`]; see [`Database::register_view_with`].
    pub fn register_view(&self, name: &str, sql: &str) -> Result<()> {
        self.register_view_with(name, sql, &EngineConfig::default())
    }

    /// Like [`Database::register_view`] with an explicit [`EngineConfig`]
    /// (profile, threads, morsel size, deadline and memory budget) applied
    /// to the initial materialization and to every refresh.
    ///
    /// The initial materialization runs the full standing query, which can
    /// be arbitrarily expensive, so it does **not** hold the database
    /// writer lock: it materializes against a pinned snapshot, then takes
    /// the lock only to validate that no writer intervened and insert the
    /// entry. If a writer did intervene, registration retries against the
    /// new snapshot; after two contended rounds it falls back to
    /// materializing under the lock (guaranteed progress under a hot write
    /// stream, at the cost of stalling writers for that one attempt).
    pub fn register_view_with(&self, name: &str, sql: &str, config: &EngineConfig) -> Result<()> {
        let key = name.to_lowercase();
        for _ in 0..2 {
            let snap = self.shared.current.load();
            let Some(entry) = self.materialize_view(&key, sql, config, &snap)? else {
                // A register landed between the snapshot pin and prepare.
                continue;
            };
            let writer = self.shared.write.lock().expect("database writer poisoned");
            if self.shared.current.load().version() == snap.version() {
                self.shared
                    .views
                    .lock()
                    .expect("view registry poisoned")
                    .insert(key, Arc::new(entry));
                return Ok(());
            }
            // A writer intervened mid-materialization: the result is
            // already stale and must not be published. Retry.
            drop(writer);
        }
        let _writer = self.shared.write.lock().expect("database writer poisoned");
        let snap = self.shared.current.load();
        let entry = self
            .materialize_view(&key, sql, config, &snap)?
            .expect("no writer can intervene while the writer lock is held");
        self.shared
            .views
            .lock()
            .expect("view registry poisoned")
            .insert(key, Arc::new(entry));
        Ok(())
    }

    /// Builds a fully-materialized [`ViewEntry`] for `sql` against the
    /// pinned `snap` (the caller inserts it into the registry). Returns
    /// `Ok(None)` when a concurrent register moved the current snapshot
    /// between the caller's pin and the prepare — the plan would be bound
    /// against a different version than the materialization target.
    fn materialize_view(
        &self,
        key: &str,
        sql: &str,
        config: &EngineConfig,
        snap: &Arc<Snapshot>,
    ) -> Result<Option<ViewEntry>> {
        let started = Instant::now();
        let prepared = self.prepare(sql, config.profile)?;
        if prepared.stats_version() != snap.version() {
            return Ok(None);
        }
        let plan = build_plan(prepared);
        let label = format!("mv:{key}@v{}", snap.version());
        let entry = ViewEntry {
            name: key.to_string(),
            sql: sql.to_string(),
            config: *config,
            // Placeholder published state, replaced below before the entry
            // becomes visible in the registry.
            published: Versioned::new(ViewState {
                name: key.to_string(),
                rel: Arc::new(Relation::empty()),
                snapshot_version: snap.version(),
                mode: RefreshMode::Initial,
                rows_propagated: 0,
                reason: String::new(),
                refresh_ns: 0,
            }),
            inner: Mutex::new(ViewInner {
                plan,
                plan_stale: false,
                parent_version: snap.version(),
                base_rows: FxHashMap::default(),
                content: None,
                agg_input: None,
                last_error: None,
            }),
        };
        {
            let mut inner = entry.inner.lock().expect("fresh entry");
            let inner = &mut *inner;
            let (content, agg_input, schema) = entry.recompute(&inner.plan, snap, &label)?;
            let rel = Arc::new(content.to_relation(&schema));
            let rows = content.num_rows() as u64;
            inner.content = Some(content);
            inner.agg_input = agg_input;
            inner.base_rows = ViewEntry::base_rows(&inner.plan, snap);
            entry.publish(
                snap,
                rel,
                RefreshMode::Initial,
                rows,
                String::new(),
                started,
            );
        }
        Ok(Some(entry))
    }

    fn view_entry(&self, name: &str) -> Result<Arc<ViewEntry>> {
        self.shared
            .views
            .lock()
            .expect("view registry poisoned")
            .get(&name.to_lowercase())
            .cloned()
            .ok_or_else(|| Error::Data(format!("unknown view '{name}'")))
    }

    /// The current published state of a view: the materialized result plus
    /// the snapshot version it is consistent with. Lock-free against
    /// concurrent refreshes — the returned state is immutable and never
    /// torn. Under `PYTOND_NO_IVM=1` the standing query is instead
    /// recomputed from scratch against the current snapshot on every call
    /// (the differential oracle mode).
    pub fn view(&self, name: &str) -> Result<Arc<ViewState>> {
        let entry = self.view_entry(name)?;
        if !no_ivm() {
            return Ok(entry.published.load());
        }
        let started = Instant::now();
        let snap = self.shared.current.load();
        let prepared = entry.read_prepared(self)?;
        let label = format!("mv:{}@v{} (no-ivm)", entry.name, snap.version());
        let (batch, schema) = run_plan(
            &snap,
            prepared.plan(),
            FxHashMap::default(),
            &entry.config,
            &label,
        )?;
        let rows = batch.num_rows() as u64;
        Ok(Arc::new(ViewState {
            name: entry.name.clone(),
            rel: Arc::new(batch.to_relation(&schema)),
            snapshot_version: snap.version(),
            mode: RefreshMode::Recompute,
            rows_propagated: rows,
            reason: "PYTOND_NO_IVM recompute-on-read".to_string(),
            refresh_ns: started.elapsed().as_nanos() as u64,
        }))
    }

    /// From-scratch recompute of a view against the **current** snapshot,
    /// using the view's own prepared plan (so cost-based join orders cannot
    /// drift from the maintained side): the in-process differential oracle.
    pub fn view_oracle(&self, name: &str) -> Result<Relation> {
        let snap = self.shared.current.load();
        self.view_oracle_at(name, &snap)
    }

    /// Like [`Database::view_oracle`] but against an explicitly pinned
    /// snapshot — the primitive the maintenance suite uses to prove that a
    /// state stamped with version *v* is bit-identical to a from-scratch
    /// recompute on snapshot *v*.
    pub fn view_oracle_at(&self, name: &str, snap: &Snapshot) -> Result<Relation> {
        let entry = self.view_entry(name)?;
        let prepared = entry.read_prepared(self)?;
        let label = format!("mv:{}@v{} (oracle)", entry.name, snap.version());
        let (batch, schema) = run_plan(
            snap,
            prepared.plan(),
            FxHashMap::default(),
            &entry.config,
            &label,
        )?;
        Ok(batch.to_relation(&schema))
    }

    /// The `view:` trace of a view: the last refresh's one-line summary
    /// (mode, rows propagated, refresh time — see [`ViewState::summary`])
    /// followed by the per-table maintenance matrix fixed at prepare time
    /// and the last refresh error, if any.
    pub fn view_trace(&self, name: &str) -> Result<String> {
        let entry = self.view_entry(name)?;
        let state = self.view(name)?;
        let mut out = state.summary();
        let inner = entry.inner.lock().expect("view entry poisoned");
        let mut tables: Vec<(&String, &TableClass)> = inner.plan.classes.iter().collect();
        tables.sort_by_key(|(t, _)| t.as_str());
        for (t, class) in tables {
            out.push_str(&format!("\n  {t}: {}", class.render()));
        }
        if inner.plan_stale {
            out.push_str("\n  plan: stale (re-prepare pending)");
        }
        if let Some(e) = &inner.last_error {
            out.push_str(&format!("\n  last-error: {e}"));
        }
        Ok(out)
    }

    /// Names of the registered views, sorted.
    pub fn view_names(&self) -> Vec<String> {
        let mut names: Vec<String> = self
            .shared
            .views
            .lock()
            .expect("view registry poisoned")
            .keys()
            .cloned()
            .collect();
        names.sort();
        names
    }

    /// Removes a view; returns whether it existed. In-flight readers
    /// holding its [`ViewState`] keep it alive.
    pub fn drop_view(&self, name: &str) -> bool {
        self.shared
            .views
            .lock()
            .expect("view registry poisoned")
            .remove(&name.to_lowercase())
            .is_some()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use pytond_common::Column;

    fn db() -> Database {
        let db = Database::new();
        db.register(
            "t",
            Relation::new(vec![
                ("a".into(), Column::from_i64(vec![1, 2, 3, 4])),
                ("b".into(), Column::from_f64(vec![10.0, 20.0, 30.0, 40.0])),
                ("s".into(), Column::from_strs(&["x", "y", "x", "z"])),
            ])
            .unwrap(),
        );
        db.register(
            "u",
            Relation::new(vec![
                ("a".into(), Column::from_i64(vec![2, 3, 5])),
                ("w".into(), Column::from_i64(vec![200, 300, 500])),
            ])
            .unwrap(),
        );
        db
    }

    fn delta_rows() -> Relation {
        Relation::new(vec![
            ("a".into(), Column::from_i64(vec![2, 5])),
            ("b".into(), Column::from_f64(vec![25.0, 55.0])),
            ("s".into(), Column::from_strs(&["y", "x"])),
        ])
        .unwrap()
    }

    fn assert_bits(name: &str, a: &Relation, b: &Relation) {
        assert_eq!(a.num_cols(), b.num_cols(), "{name}: column count");
        assert_eq!(a.num_rows(), b.num_rows(), "{name}: row count");
        for ci in 0..a.num_cols() {
            let (ca, cb) = (a.column_at(ci), b.column_at(ci));
            for i in 0..ca.len() {
                let (va, vb) = (ca.get(i), cb.get(i));
                assert!(
                    va.total_cmp(&vb) == std::cmp::Ordering::Equal,
                    "{name}: cell ({i}, {}) differs: {va:?} vs {vb:?}",
                    a.name_at(ci)
                );
            }
        }
    }

    #[test]
    fn filter_view_refreshes_via_delta() {
        let db = db();
        db.register_view("v", "SELECT a, b FROM t WHERE a >= 2")
            .unwrap();
        let s0 = db.view("v").unwrap();
        assert_eq!(s0.relation().num_rows(), 3);
        db.append("t", &delta_rows()).unwrap();
        let s1 = db.view("v").unwrap();
        assert_eq!(s1.snapshot_version(), db.stats_version());
        assert_bits("filter", &db.view_oracle("v").unwrap(), s1.relation());
        if no_ivm() {
            assert_eq!(s1.mode(), RefreshMode::Recompute);
            assert!(s1.reason().contains("PYTOND_NO_IVM"), "{}", s1.reason());
        } else {
            assert_eq!(s0.mode(), RefreshMode::Initial);
            assert_eq!(s1.mode(), RefreshMode::Delta);
            assert_eq!(s1.rows_propagated(), 2);
            assert!(db.view_trace("v").unwrap().contains("mode=delta"));
        }
    }

    #[test]
    fn agg_view_refreshes_via_delta_bit_identically() {
        let db = db();
        db.register_view(
            "v",
            "SELECT s, SUM(b) AS sb, COUNT(*) AS n, AVG(b) AS ab FROM t GROUP BY s",
        )
        .unwrap();
        db.append("t", &delta_rows()).unwrap();
        let s = db.view("v").unwrap();
        assert_bits("agg", &db.view_oracle("v").unwrap(), s.relation());
        let trace = db.view_trace("v").unwrap();
        assert!(trace.contains("t: delta (agg)"), "{trace}");
        if !no_ivm() {
            assert_eq!(s.mode(), RefreshMode::Delta);
            assert!(trace.contains("mode=delta"), "{trace}");
        }
    }

    #[test]
    fn sort_falls_back_to_recompute() {
        let db = db();
        db.register_view("v", "SELECT a, b FROM t WHERE a >= 2 ORDER BY b DESC")
            .unwrap();
        db.append("t", &delta_rows()).unwrap();
        let s = db.view("v").unwrap();
        assert_eq!(s.mode(), RefreshMode::Recompute);
        assert_bits("sort", &db.view_oracle("v").unwrap(), s.relation());
        assert_eq!(s.snapshot_version(), db.stats_version());
        let trace = db.view_trace("v").unwrap();
        assert!(trace.contains("recompute (sort)"), "{trace}");
    }

    #[test]
    fn agg_above_sortless_join_stays_consistent() {
        let db = db();
        db.register_view(
            "v",
            "SELECT u.w, SUM(t.b) AS sb FROM t, u WHERE t.a = u.a GROUP BY u.w",
        )
        .unwrap();
        db.append("t", &delta_rows()).unwrap();
        let s = db.view("v").unwrap();
        assert_bits("join-agg t", &db.view_oracle("v").unwrap(), s.relation());
        db.append(
            "u",
            &Relation::new(vec![
                ("a".into(), Column::from_i64(vec![4])),
                ("w".into(), Column::from_i64(vec![400])),
            ])
            .unwrap(),
        )
        .unwrap();
        let s = db.view("v").unwrap();
        assert_bits("join-agg u", &db.view_oracle("v").unwrap(), s.relation());
        assert_eq!(s.snapshot_version(), db.stats_version());
    }

    #[test]
    fn unreferenced_append_bumps_stamp_only() {
        let db = db();
        db.register_view("v", "SELECT a FROM u WHERE a > 1")
            .unwrap();
        let before = db.view("v").unwrap();
        db.append("t", &delta_rows()).unwrap();
        let after = db.view("v").unwrap();
        assert_eq!(after.snapshot_version(), db.stats_version());
        assert_bits("unref", before.relation(), after.relation());
        if !no_ivm() {
            assert_eq!(after.rows_propagated(), 0);
            assert!(
                after.reason().contains("not referenced"),
                "{}",
                after.reason()
            );
            // The relation is literally shared, not copied.
            assert!(Arc::ptr_eq(
                &before.shared_relation(),
                &after.shared_relation()
            ));
        }
    }

    #[test]
    fn replacing_a_referenced_table_recomputes() {
        let db = db();
        db.register_view("v", "SELECT a, b FROM t WHERE a >= 2")
            .unwrap();
        db.register(
            "t",
            Relation::new(vec![
                ("a".into(), Column::from_i64(vec![7, 8])),
                ("b".into(), Column::from_f64(vec![70.0, 80.0])),
                ("s".into(), Column::from_strs(&["q", "r"])),
            ])
            .unwrap(),
        );
        let s = db.view("v").unwrap();
        assert_eq!(s.mode(), RefreshMode::Recompute);
        assert_eq!(s.relation().num_rows(), 2);
        assert_bits("replace", &db.view_oracle("v").unwrap(), s.relation());
        // And deltas work again on the replacement table.
        db.append("t", &delta_rows()).unwrap();
        let s = db.view("v").unwrap();
        if !no_ivm() {
            assert_eq!(s.mode(), RefreshMode::Delta);
        }
        assert_bits("replace+delta", &db.view_oracle("v").unwrap(), s.relation());
    }

    #[test]
    fn registry_management() {
        let db = db();
        db.register_view("alpha", "SELECT a FROM t").unwrap();
        db.register_view("beta", "SELECT w FROM u").unwrap();
        assert_eq!(
            db.view_names(),
            vec!["alpha".to_string(), "beta".to_string()]
        );
        assert!(db.drop_view("Alpha"));
        assert!(!db.drop_view("alpha"));
        assert_eq!(db.view_names(), vec!["beta".to_string()]);
        assert!(db.view("alpha").is_err());
    }

    #[test]
    fn stale_plan_never_executes_after_failed_replacement() {
        let db = db();
        db.register_view("v", "SELECT a, b FROM t WHERE a >= 2")
            .unwrap();
        let fresh_version = db.stats_version();
        // Positionally- and dtype-compatible rename: the view no longer
        // prepares, but the stored plan would happily bind the new columns
        // by position and publish plausible-but-wrong rows as fresh.
        let renamed = |lo: i64| {
            Relation::new(vec![
                ("x".into(), Column::from_i64(vec![lo, lo + 1])),
                (
                    "y".into(),
                    Column::from_f64(vec![lo as f64, lo as f64 + 1.0]),
                ),
                ("z".into(), Column::from_strs(&["p", "q"])),
            ])
            .unwrap()
        };
        db.register("t", renamed(7));
        db.append("t", &renamed(9)).unwrap();
        if no_ivm() {
            // Recompute-on-read must not run the stale plan either.
            assert!(db.view("v").is_err());
        } else {
            let s = db.view("v").unwrap();
            assert_eq!(
                s.snapshot_version(),
                fresh_version,
                "an append after a failed re-prepare ran the stale plan"
            );
            assert!(s.snapshot_version() < db.stats_version());
            let trace = db.view_trace("v").unwrap();
            assert!(trace.contains("plan: stale"), "{trace}");
            assert!(trace.contains("last-error"), "{trace}");
        }
        assert!(db.view_oracle("v").is_err());
        // Restoring a compatible schema heals: the next event re-prepares
        // from source and recomputes.
        db.register(
            "t",
            Relation::new(vec![
                ("a".into(), Column::from_i64(vec![5, 6])),
                ("b".into(), Column::from_f64(vec![50.0, 60.0])),
                ("s".into(), Column::from_strs(&["m", "n"])),
            ])
            .unwrap(),
        );
        let s = db.view("v").unwrap();
        assert_eq!(s.snapshot_version(), db.stats_version());
        assert_bits("healed", &db.view_oracle("v").unwrap(), s.relation());
    }

    #[test]
    fn unreferenced_events_never_freshen_a_stale_view() {
        if no_ivm() {
            // No refresh path exists to go stale.
            return;
        }
        let db = Database::new();
        db.register(
            "t",
            Relation::new(vec![("k".into(), Column::from_i64((0..10).collect()))]).unwrap(),
        );
        db.register(
            "u",
            Relation::new(vec![("w".into(), Column::from_i64(vec![1]))]).unwrap(),
        );
        let tight = EngineConfig {
            timeout_ms: Some(50),
            morsel: 256,
            ..EngineConfig::default()
        };
        db.register_view_with(
            "explosive",
            "SELECT SUM(a.k + b.k) AS s FROM t AS a, t AS b WHERE a.k + b.k >= 0",
            &tight,
        )
        .unwrap();
        // Blow the deadline: the refresh for this append fails, the view
        // goes stale at its prior stamp.
        db.append(
            "t",
            &Relation::new(vec![("k".into(), Column::from_i64((10..3_000).collect()))]).unwrap(),
        )
        .unwrap();
        let stale = db.view("explosive").unwrap();
        assert!(stale.snapshot_version() < db.stats_version());
        // An append to an unreferenced table must not re-stamp the stale
        // content as fresh: the heal attempt recomputes (and here blows the
        // deadline again), so the stamp stays put.
        db.append(
            "u",
            &Relation::new(vec![("w".into(), Column::from_i64(vec![2]))]).unwrap(),
        )
        .unwrap();
        let after = db.view("explosive").unwrap();
        assert_eq!(
            after.snapshot_version(),
            stale.snapshot_version(),
            "unreferenced append falsely freshened a stale view"
        );
        assert!(after.snapshot_version() < db.stats_version());
        assert_bits("carried", stale.relation(), after.relation());
        // Registering an unrelated table must not freshen it either.
        db.register(
            "unrelated",
            Relation::new(vec![("w".into(), Column::from_i64(vec![3]))]).unwrap(),
        );
        let after = db.view("explosive").unwrap();
        assert!(
            after.snapshot_version() < db.stats_version(),
            "unreferenced register falsely freshened a stale view"
        );
        // A consistent view still gets the free re-stamp on the same event.
        db.register_view("cheap", "SELECT COUNT(*) AS n FROM t")
            .unwrap();
        db.append(
            "u",
            &Relation::new(vec![("w".into(), Column::from_i64(vec![4]))]).unwrap(),
        )
        .unwrap();
        let cheap = db.view("cheap").unwrap();
        assert_eq!(cheap.snapshot_version(), db.stats_version());
        assert_eq!(cheap.rows_propagated(), 0);
        assert!(
            cheap.reason().contains("not referenced"),
            "{}",
            cheap.reason()
        );
    }

    #[test]
    fn register_view_races_concurrent_appends_consistently() {
        let db = db();
        let writer = {
            let db = db.clone();
            std::thread::spawn(move || {
                for i in 0..40i64 {
                    db.append("t", &delta_rows()).unwrap();
                    if i % 8 == 0 {
                        db.register(
                            "side",
                            Relation::new(vec![("x".into(), Column::from_i64(vec![i]))]).unwrap(),
                        );
                    }
                }
            })
        };
        for round in 0..10 {
            let name = format!("v{round}");
            db.register_view(
                &name,
                "SELECT s, SUM(b) AS sb, COUNT(*) AS n FROM t GROUP BY s",
            )
            .unwrap();
            // Registration raced a live writer: the published state may
            // already be one version behind, but never ahead, and never torn.
            let state = db.view(&name).unwrap();
            assert!(state.snapshot_version() <= db.stats_version(), "{name}");
        }
        writer.join().unwrap();
        // Quiesced: one more append brings every view to the live version,
        // bit-identical to its oracle.
        db.append("t", &delta_rows()).unwrap();
        for name in db.view_names() {
            let state = db.view(&name).unwrap();
            assert_eq!(state.snapshot_version(), db.stats_version(), "{name}");
            assert_bits(&name, &db.view_oracle(&name).unwrap(), state.relation());
        }
    }

    #[test]
    fn view_errors_are_contained_and_heal() {
        let db = db();
        db.register_view("v", "SELECT s, SUM(b) AS sb FROM t GROUP BY s")
            .unwrap();
        // Replace a referenced table with one the view no longer prepares
        // against: the view goes stale (prior version kept), appends still
        // succeed, and the trace reports the error.
        db.register(
            "t",
            Relation::new(vec![("z".into(), Column::from_i64(vec![1]))]).unwrap(),
        );
        if no_ivm() {
            // Recompute-on-read surfaces the broken plan as an error.
            assert!(db.view("v").is_err());
            return;
        }
        let stale = db.view("v").unwrap();
        assert!(stale.snapshot_version() < db.stats_version());
        let trace = db.view_trace("v").unwrap();
        assert!(trace.contains("last-error"), "{trace}");
    }
}
