//! Recursive-descent SQL parser for the engine's dialect subset.

use crate::ast::*;
use crate::lex::{tokenize, Tok};
use pytond_common::{date, Error, Result};

/// Parses one SQL statement (optionally `;`-terminated).
pub fn parse_sql(src: &str) -> Result<Query> {
    let toks = tokenize(src)?;
    let mut p = P { toks, pos: 0 };
    let q = p.query()?;
    p.eat_op(";");
    if !matches!(p.peek(), Tok::Eof) {
        return Err(p.err("trailing tokens after statement"));
    }
    Ok(q)
}

struct P {
    toks: Vec<Tok>,
    pos: usize,
}

impl P {
    fn peek(&self) -> &Tok {
        &self.toks[self.pos]
    }

    fn peek2(&self) -> &Tok {
        &self.toks[(self.pos + 1).min(self.toks.len() - 1)]
    }

    fn bump(&mut self) -> Tok {
        let t = self.toks[self.pos].clone();
        if self.pos + 1 < self.toks.len() {
            self.pos += 1;
        }
        t
    }

    fn err(&self, msg: impl Into<String>) -> Error {
        Error::Sql(format!("{} (near token {:?})", msg.into(), self.peek()))
    }

    fn eat_kw(&mut self, kw: &str) -> bool {
        if self.peek().is_kw(kw) {
            self.bump();
            true
        } else {
            false
        }
    }

    fn expect_kw(&mut self, kw: &str) -> Result<()> {
        if self.eat_kw(kw) {
            Ok(())
        } else {
            Err(self.err(format!("expected {kw}")))
        }
    }

    fn eat_op(&mut self, op: &str) -> bool {
        if matches!(self.peek(), Tok::Op(o) if *o == op) {
            self.bump();
            true
        } else {
            false
        }
    }

    fn expect_op(&mut self, op: &str) -> Result<()> {
        if self.eat_op(op) {
            Ok(())
        } else {
            Err(self.err(format!("expected '{op}'")))
        }
    }

    fn ident(&mut self) -> Result<String> {
        match self.bump() {
            Tok::Word { original, .. } => Ok(original),
            other => Err(Error::Sql(format!("expected identifier, found {other:?}"))),
        }
    }

    // ---------------- query structure ----------------

    fn query(&mut self) -> Result<Query> {
        let mut ctes = Vec::new();
        if self.eat_kw("WITH") {
            loop {
                let name = self.ident()?;
                let columns = if matches!(self.peek(), Tok::Op("(")) && !self.peek().is_kw("AS") {
                    // could be a column list before AS
                    self.expect_op("(")?;
                    let mut cols = Vec::new();
                    loop {
                        cols.push(self.ident()?);
                        if !self.eat_op(",") {
                            break;
                        }
                    }
                    self.expect_op(")")?;
                    Some(cols)
                } else {
                    None
                };
                self.expect_kw("AS")?;
                self.expect_op("(")?;
                let select = self.select()?;
                self.expect_op(")")?;
                ctes.push(Cte {
                    name,
                    columns,
                    select,
                });
                if !self.eat_op(",") {
                    break;
                }
            }
        }
        let body = self.select()?;
        Ok(Query { ctes, body })
    }

    fn select(&mut self) -> Result<Select> {
        if self.peek().is_kw("VALUES") {
            self.bump();
            let mut rows = Vec::new();
            loop {
                self.expect_op("(")?;
                let mut row = Vec::new();
                loop {
                    row.push(self.expr()?);
                    if !self.eat_op(",") {
                        break;
                    }
                }
                self.expect_op(")")?;
                rows.push(row);
                if !self.eat_op(",") {
                    break;
                }
            }
            let mut s = Select::empty();
            s.values = Some(rows);
            return Ok(s);
        }
        self.expect_kw("SELECT")?;
        let mut s = Select::empty();
        s.distinct = self.eat_kw("DISTINCT");
        loop {
            if self.eat_op("*") {
                s.items.push(SelectItem::Wildcard);
            } else if matches!(self.peek(), Tok::Word { .. })
                && matches!(self.peek2(), Tok::Op("."))
                && matches!(&self.toks.get(self.pos + 2), Some(Tok::Op("*")))
            {
                let q = self.ident()?;
                self.expect_op(".")?;
                self.expect_op("*")?;
                s.items.push(SelectItem::QualifiedWildcard(q));
            } else {
                let expr = self.expr()?;
                let alias = if self.eat_kw("AS")
                    || (matches!(self.peek(), Tok::Word { .. }) && !self.peek_is_clause_keyword())
                {
                    Some(self.ident()?)
                } else {
                    None
                };
                s.items.push(SelectItem::Expr { expr, alias });
            }
            if !self.eat_op(",") {
                break;
            }
        }
        if self.eat_kw("FROM") {
            loop {
                s.from.push(self.table_ref()?);
                if !self.eat_op(",") {
                    break;
                }
            }
        }
        if self.eat_kw("WHERE") {
            s.where_clause = Some(self.expr()?);
        }
        if self.eat_kw("GROUP") {
            self.expect_kw("BY")?;
            loop {
                s.group_by.push(self.expr()?);
                if !self.eat_op(",") {
                    break;
                }
            }
        }
        if self.eat_kw("HAVING") {
            s.having = Some(self.expr()?);
        }
        if self.eat_kw("ORDER") {
            self.expect_kw("BY")?;
            s.order_by = self.order_keys()?;
        }
        if self.eat_kw("LIMIT") {
            match self.bump() {
                Tok::Int(n) if n >= 0 => s.limit = Some(n as u64),
                other => return Err(Error::Sql(format!("bad LIMIT value {other:?}"))),
            }
        }
        Ok(s)
    }

    fn order_keys(&mut self) -> Result<Vec<(SqlExpr, bool)>> {
        let mut keys = Vec::new();
        loop {
            let e = self.expr()?;
            let asc = if self.eat_kw("DESC") {
                false
            } else {
                self.eat_kw("ASC");
                true
            };
            // NULLS FIRST/LAST accepted and ignored (engine does NULLS FIRST).
            if self.eat_kw("NULLS") && !self.eat_kw("FIRST") {
                self.expect_kw("LAST")?;
            }
            keys.push((e, asc));
            if !self.eat_op(",") {
                break;
            }
        }
        Ok(keys)
    }

    fn peek_is_clause_keyword(&self) -> bool {
        const CLAUSES: &[&str] = &[
            "FROM", "WHERE", "GROUP", "HAVING", "ORDER", "LIMIT", "UNION", "AS", "ON", "JOIN",
            "INNER", "LEFT", "RIGHT", "FULL", "CROSS", "AND", "OR", "ASC", "DESC",
        ];
        CLAUSES.iter().any(|k| self.peek().is_kw(k))
    }

    fn table_ref(&mut self) -> Result<TableRef> {
        let mut base = self.table_factor()?;
        loop {
            let kind = if self.peek().is_kw("JOIN") || self.peek().is_kw("INNER") {
                self.eat_kw("INNER");
                self.expect_kw("JOIN")?;
                JoinKind::Inner
            } else if self.peek().is_kw("LEFT") {
                self.bump();
                self.eat_kw("OUTER");
                self.expect_kw("JOIN")?;
                JoinKind::Left
            } else if self.peek().is_kw("RIGHT") {
                self.bump();
                self.eat_kw("OUTER");
                self.expect_kw("JOIN")?;
                JoinKind::Right
            } else if self.peek().is_kw("FULL") {
                self.bump();
                self.eat_kw("OUTER");
                self.expect_kw("JOIN")?;
                JoinKind::Full
            } else if self.peek().is_kw("CROSS") {
                self.bump();
                self.expect_kw("JOIN")?;
                JoinKind::Cross
            } else {
                break;
            };
            let right = self.table_factor()?;
            let on = if kind == JoinKind::Cross {
                None
            } else {
                self.expect_kw("ON")?;
                Some(self.expr()?)
            };
            base = TableRef::Join {
                left: Box::new(base),
                right: Box::new(right),
                kind,
                on,
            };
        }
        Ok(base)
    }

    fn table_factor(&mut self) -> Result<TableRef> {
        if self.eat_op("(") {
            let q = self.select()?;
            self.expect_op(")")?;
            self.eat_kw("AS");
            let alias = self.ident()?;
            return Ok(TableRef::Subquery {
                query: Box::new(q),
                alias,
            });
        }
        let name = self.ident()?;
        let alias = if self.eat_kw("AS")
            || (matches!(self.peek(), Tok::Word { .. }) && !self.peek_is_clause_keyword())
        {
            Some(self.ident()?)
        } else {
            None
        };
        Ok(TableRef::Table { name, alias })
    }

    // ---------------- expressions ----------------

    fn expr(&mut self) -> Result<SqlExpr> {
        self.or_expr()
    }

    fn or_expr(&mut self) -> Result<SqlExpr> {
        let mut left = self.and_expr()?;
        while self.eat_kw("OR") {
            let right = self.and_expr()?;
            left = SqlExpr::bin(BinOp::Or, left, right);
        }
        Ok(left)
    }

    fn and_expr(&mut self) -> Result<SqlExpr> {
        let mut left = self.not_expr()?;
        while self.eat_kw("AND") {
            let right = self.not_expr()?;
            left = SqlExpr::bin(BinOp::And, left, right);
        }
        Ok(left)
    }

    fn not_expr(&mut self) -> Result<SqlExpr> {
        if self.eat_kw("NOT") {
            let inner = self.not_expr()?;
            return Ok(SqlExpr::Not(Box::new(inner)));
        }
        self.predicate()
    }

    fn predicate(&mut self) -> Result<SqlExpr> {
        let left = self.additive()?;
        // IS [NOT] NULL
        if self.eat_kw("IS") {
            let negated = self.eat_kw("NOT");
            self.expect_kw("NULL")?;
            return Ok(SqlExpr::IsNull {
                expr: Box::new(left),
                negated,
            });
        }
        let negated = if self.peek().is_kw("NOT")
            && (self.peek2().is_kw("LIKE")
                || self.peek2().is_kw("IN")
                || self.peek2().is_kw("BETWEEN"))
        {
            self.bump();
            true
        } else {
            false
        };
        if self.eat_kw("LIKE") {
            let pattern = match self.bump() {
                Tok::Str(s) => s,
                other => return Err(Error::Sql(format!("LIKE needs a pattern, got {other:?}"))),
            };
            return Ok(SqlExpr::Like {
                expr: Box::new(left),
                pattern,
                negated,
            });
        }
        if self.eat_kw("IN") {
            self.expect_op("(")?;
            if self.peek().is_kw("SELECT") {
                let q = self.select()?;
                self.expect_op(")")?;
                return Ok(SqlExpr::InSubquery {
                    expr: Box::new(left),
                    query: Box::new(q),
                    negated,
                });
            }
            let mut list = Vec::new();
            loop {
                list.push(self.expr()?);
                if !self.eat_op(",") {
                    break;
                }
            }
            self.expect_op(")")?;
            return Ok(SqlExpr::InList {
                expr: Box::new(left),
                list,
                negated,
            });
        }
        if self.eat_kw("BETWEEN") {
            let low = self.additive()?;
            self.expect_kw("AND")?;
            let high = self.additive()?;
            return Ok(SqlExpr::Between {
                expr: Box::new(left),
                low: Box::new(low),
                high: Box::new(high),
                negated,
            });
        }
        if negated {
            return Err(self.err("dangling NOT"));
        }
        // comparison
        let op = if self.eat_op("=") {
            Some(BinOp::Eq)
        } else if self.eat_op("<>") || self.eat_op("!=") {
            Some(BinOp::Ne)
        } else if self.eat_op("<=") {
            Some(BinOp::Le)
        } else if self.eat_op(">=") {
            Some(BinOp::Ge)
        } else if self.eat_op("<") {
            Some(BinOp::Lt)
        } else if self.eat_op(">") {
            Some(BinOp::Gt)
        } else {
            None
        };
        if let Some(op) = op {
            let right = self.additive()?;
            return Ok(SqlExpr::bin(op, left, right));
        }
        Ok(left)
    }

    fn additive(&mut self) -> Result<SqlExpr> {
        let mut left = self.multiplicative()?;
        loop {
            let op = if self.eat_op("+") {
                BinOp::Add
            } else if self.eat_op("-") {
                BinOp::Sub
            } else if self.eat_op("||") {
                BinOp::Concat
            } else {
                break;
            };
            let right = self.multiplicative()?;
            left = SqlExpr::bin(op, left, right);
        }
        Ok(left)
    }

    fn multiplicative(&mut self) -> Result<SqlExpr> {
        let mut left = self.unary()?;
        loop {
            let op = if self.eat_op("*") {
                BinOp::Mul
            } else if self.eat_op("/") {
                BinOp::Div
            } else if self.eat_op("%") {
                BinOp::Mod
            } else {
                break;
            };
            let right = self.unary()?;
            left = SqlExpr::bin(op, left, right);
        }
        Ok(left)
    }

    fn unary(&mut self) -> Result<SqlExpr> {
        if self.eat_op("-") {
            let inner = self.unary()?;
            return Ok(match inner {
                SqlExpr::Int(i) => SqlExpr::Int(-i),
                SqlExpr::Float(f) => SqlExpr::Float(-f),
                other => SqlExpr::Neg(Box::new(other)),
            });
        }
        self.eat_op("+");
        self.atom()
    }

    fn atom(&mut self) -> Result<SqlExpr> {
        match self.bump() {
            Tok::Int(i) => Ok(SqlExpr::Int(i)),
            Tok::Float(f) => Ok(SqlExpr::Float(f)),
            Tok::Str(s) => Ok(SqlExpr::Str(s)),
            Tok::Op("(") => {
                if self.peek().is_kw("SELECT") {
                    let q = self.select()?;
                    self.expect_op(")")?;
                    return Ok(SqlExpr::ScalarSubquery(Box::new(q)));
                }
                let e = self.expr()?;
                self.expect_op(")")?;
                Ok(e)
            }
            Tok::Word {
                upper,
                original,
                quoted,
            } => self.word_expr(upper, original, quoted),
            other => Err(Error::Sql(format!("unexpected token {other:?}"))),
        }
    }

    fn word_expr(&mut self, upper: String, original: String, quoted: bool) -> Result<SqlExpr> {
        const RESERVED: &[&str] = &[
            "SELECT", "FROM", "WHERE", "GROUP", "BY", "HAVING", "ORDER", "LIMIT", "JOIN", "INNER",
            "LEFT", "RIGHT", "FULL", "CROSS", "ON", "AND", "OR", "IN", "IS", "BETWEEN", "LIKE",
            "UNION", "AS", "ASC", "DESC", "DISTINCT", "WITH", "WHEN", "THEN", "ELSE", "END",
            "VALUES",
        ];
        if !quoted && RESERVED.contains(&upper.as_str()) {
            return Err(Error::Sql(format!(
                "reserved keyword '{original}' cannot be used as an expression"
            )));
        }
        if !quoted {
            match upper.as_str() {
                "NULL" => return Ok(SqlExpr::Null),
                "TRUE" => return Ok(SqlExpr::Bool(true)),
                "FALSE" => return Ok(SqlExpr::Bool(false)),
                "DATE" => {
                    if let Tok::Str(s) = self.peek().clone() {
                        self.bump();
                        let d = date::parse(&s)
                            .ok_or_else(|| Error::Sql(format!("bad date literal '{s}'")))?;
                        return Ok(SqlExpr::DateLit(d));
                    }
                }
                "CASE" => return self.case_expr(),
                "CAST" => {
                    self.expect_op("(")?;
                    let e = self.expr()?;
                    self.expect_kw("AS")?;
                    let ty = self.ident()?.to_uppercase();
                    // Accept (and ignore) precision arguments like DECIMAL(12,2).
                    if self.eat_op("(") {
                        while !self.eat_op(")") {
                            self.bump();
                        }
                    }
                    self.expect_op(")")?;
                    return Ok(SqlExpr::Cast {
                        expr: Box::new(e),
                        ty,
                    });
                }
                "EXISTS" => {
                    self.expect_op("(")?;
                    let q = self.select()?;
                    self.expect_op(")")?;
                    return Ok(SqlExpr::Exists {
                        query: Box::new(q),
                        negated: false,
                    });
                }
                "EXTRACT" => {
                    self.expect_op("(")?;
                    let field = self.ident()?.to_uppercase();
                    self.expect_kw("FROM")?;
                    let e = self.expr()?;
                    self.expect_op(")")?;
                    return Ok(SqlExpr::Func {
                        name: field,
                        args: vec![e],
                    });
                }
                "INTERVAL" => {
                    // INTERVAL 'n' UNIT — represented as a Func the binder folds.
                    let qty = match self.bump() {
                        Tok::Str(s) => s,
                        Tok::Int(i) => i.to_string(),
                        other => {
                            return Err(Error::Sql(format!("bad INTERVAL quantity {other:?}")))
                        }
                    };
                    let unit = self.ident()?.to_uppercase();
                    let n: i64 = qty
                        .trim()
                        .parse()
                        .map_err(|_| Error::Sql(format!("bad INTERVAL quantity '{qty}'")))?;
                    return Ok(SqlExpr::Func {
                        name: format!("INTERVAL_{unit}"),
                        args: vec![SqlExpr::Int(n)],
                    });
                }
                _ => {}
            }
        }
        // Function call?
        if matches!(self.peek(), Tok::Op("(")) && !quoted {
            self.bump();
            match upper.as_str() {
                "SUM" | "MIN" | "MAX" | "AVG" | "COUNT" => {
                    let func = match upper.as_str() {
                        "SUM" => AggName::Sum,
                        "MIN" => AggName::Min,
                        "MAX" => AggName::Max,
                        "AVG" => AggName::Avg,
                        _ => AggName::Count,
                    };
                    if self.eat_op("*") {
                        self.expect_op(")")?;
                        return Ok(SqlExpr::Agg {
                            func,
                            arg: None,
                            distinct: false,
                        });
                    }
                    let distinct = self.eat_kw("DISTINCT");
                    let arg = self.expr()?;
                    self.expect_op(")")?;
                    return Ok(SqlExpr::Agg {
                        func,
                        arg: Some(Box::new(arg)),
                        distinct,
                    });
                }
                "ROW_NUMBER" => {
                    self.expect_op(")")?;
                    self.expect_kw("OVER")?;
                    self.expect_op("(")?;
                    let order_by = if self.eat_kw("ORDER") {
                        self.expect_kw("BY")?;
                        self.order_keys()?
                    } else {
                        Vec::new()
                    };
                    self.expect_op(")")?;
                    return Ok(SqlExpr::RowNumber { order_by });
                }
                "SUBSTRING" => {
                    // SUBSTRING(s FROM a FOR b) or SUBSTRING(s, a, b)
                    let s = self.expr()?;
                    let mut args = vec![s];
                    if self.eat_kw("FROM") {
                        args.push(self.expr()?);
                        if self.eat_kw("FOR") {
                            args.push(self.expr()?);
                        }
                    } else {
                        while self.eat_op(",") {
                            args.push(self.expr()?);
                        }
                    }
                    self.expect_op(")")?;
                    return Ok(SqlExpr::Func {
                        name: "SUBSTRING".into(),
                        args,
                    });
                }
                _ => {
                    let mut args = Vec::new();
                    if !self.eat_op(")") {
                        loop {
                            args.push(self.expr()?);
                            if !self.eat_op(",") {
                                break;
                            }
                        }
                        self.expect_op(")")?;
                    }
                    return Ok(SqlExpr::Func { name: upper, args });
                }
            }
        }
        // Column reference (possibly qualified).
        if self.eat_op(".") {
            let col = self.ident()?;
            return Ok(SqlExpr::Column {
                qualifier: Some(original),
                name: col,
            });
        }
        Ok(SqlExpr::Column {
            qualifier: None,
            name: original,
        })
    }

    fn case_expr(&mut self) -> Result<SqlExpr> {
        let mut arms = Vec::new();
        while self.eat_kw("WHEN") {
            let cond = self.expr()?;
            self.expect_kw("THEN")?;
            let value = self.expr()?;
            arms.push((cond, value));
        }
        let else_value = if self.eat_kw("ELSE") {
            Some(Box::new(self.expr()?))
        } else {
            None
        };
        self.expect_kw("END")?;
        if arms.is_empty() {
            return Err(self.err("CASE requires at least one WHEN arm"));
        }
        Ok(SqlExpr::Case { arms, else_value })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Structured mismatch reporting for the shape-checking tests below:
    /// an unexpected AST shape surfaces as an `Error` result, never as a
    /// process abort.
    fn unexpected<T: std::fmt::Debug>(what: &T) -> Error {
        Error::Sql(format!("unexpected {what:?}"))
    }

    #[test]
    fn simple_select() {
        let q = parse_sql("SELECT a, b * 2 AS b2 FROM t WHERE a > 1").unwrap();
        assert_eq!(q.body.items.len(), 2);
        assert!(q.body.where_clause.is_some());
    }

    #[test]
    fn with_chain() {
        let q =
            parse_sql("WITH c1 AS (SELECT a FROM t), c2(x) AS (SELECT a FROM c1) SELECT * FROM c2")
                .unwrap();
        assert_eq!(q.ctes.len(), 2);
        assert_eq!(q.ctes[1].columns.as_deref(), Some(&["x".to_string()][..]));
    }

    #[test]
    fn joins_parse() -> Result<()> {
        let q = parse_sql("SELECT * FROM a LEFT JOIN b ON a.id = b.id INNER JOIN c ON b.k = c.k")?;
        match &q.body.from[0] {
            TableRef::Join { kind, left, .. } => {
                assert_eq!(*kind, JoinKind::Inner);
                assert!(matches!(
                    **left,
                    TableRef::Join {
                        kind: JoinKind::Left,
                        ..
                    }
                ));
                Ok(())
            }
            other => Err(unexpected(other)),
        }
    }

    #[test]
    fn comma_joins_parse() {
        let q = parse_sql("SELECT * FROM a, b AS bb WHERE a.x = bb.y").unwrap();
        assert_eq!(q.body.from.len(), 2);
    }

    #[test]
    fn group_order_limit() {
        let q = parse_sql(
            "SELECT k, SUM(v) AS s FROM t GROUP BY k HAVING SUM(v) > 0 ORDER BY s DESC LIMIT 10",
        )
        .unwrap();
        assert_eq!(q.body.group_by.len(), 1);
        assert!(q.body.having.is_some());
        assert_eq!(q.body.order_by.len(), 1);
        assert!(!q.body.order_by[0].1);
        assert_eq!(q.body.limit, Some(10));
    }

    #[test]
    fn aggregates_and_count_star() -> Result<()> {
        let q = parse_sql("SELECT COUNT(*), COUNT(DISTINCT a), AVG(b) FROM t")?;
        match &q.body.items[0] {
            SelectItem::Expr {
                expr: SqlExpr::Agg { func, arg, .. },
                ..
            } => {
                assert_eq!(*func, AggName::Count);
                assert!(arg.is_none());
            }
            other => return Err(unexpected(other)),
        }
        match &q.body.items[1] {
            SelectItem::Expr {
                expr: SqlExpr::Agg { distinct, .. },
                ..
            } => assert!(distinct),
            other => return Err(unexpected(other)),
        }
        Ok(())
    }

    #[test]
    fn case_when() -> Result<()> {
        let q = parse_sql(
            "SELECT CASE WHEN a = 1 THEN 'one' WHEN a = 2 THEN 'two' ELSE 'many' END FROM t",
        )
        .unwrap();
        match &q.body.items[0] {
            SelectItem::Expr {
                expr: SqlExpr::Case { arms, else_value },
                ..
            } => {
                assert_eq!(arms.len(), 2);
                assert!(else_value.is_some());
                Ok(())
            }
            other => Err(unexpected(other)),
        }
    }

    #[test]
    fn in_list_and_subquery() {
        let q =
            parse_sql("SELECT * FROM t WHERE a IN (1, 2) AND b NOT IN (SELECT x FROM s)").unwrap();
        let w = q.body.where_clause.unwrap();
        assert!(w.any(&mut |e| matches!(e, SqlExpr::InList { .. })));
        assert!(w.any(&mut |e| matches!(e, SqlExpr::InSubquery { negated: true, .. })));
    }

    #[test]
    fn like_between_dates() {
        let q = parse_sql(
            "SELECT * FROM t WHERE s LIKE '%x%' AND d BETWEEN DATE '1994-01-01' AND DATE '1994-12-31'",
        )
        .unwrap();
        let w = q.body.where_clause.unwrap();
        assert!(w.any(&mut |e| matches!(e, SqlExpr::Like { .. })));
        assert!(w.any(&mut |e| matches!(e, SqlExpr::Between { .. })));
        assert!(w.any(&mut |e| matches!(e, SqlExpr::DateLit(_))));
    }

    #[test]
    fn row_number_window() -> Result<()> {
        let q = parse_sql("SELECT row_number() OVER (ORDER BY a) AS id, a FROM t")?;
        match &q.body.items[0] {
            SelectItem::Expr {
                expr: SqlExpr::RowNumber { order_by },
                alias,
            } => {
                assert_eq!(order_by.len(), 1);
                assert_eq!(alias.as_deref(), Some("id"));
                Ok(())
            }
            other => Err(unexpected(other)),
        }
    }

    #[test]
    fn values_constructor() {
        let q = parse_sql("WITH v(c0) AS (VALUES (0), (1)) SELECT * FROM v").unwrap();
        assert_eq!(q.ctes[0].select.values.as_ref().unwrap().len(), 2);
    }

    #[test]
    fn extract_and_interval() -> Result<()> {
        let q = parse_sql("SELECT EXTRACT(YEAR FROM d), d + INTERVAL '3' MONTH FROM t")?;
        match &q.body.items[0] {
            SelectItem::Expr {
                expr: SqlExpr::Func { name, .. },
                ..
            } => {
                assert_eq!(name, "YEAR");
                Ok(())
            }
            other => Err(unexpected(other)),
        }
    }

    #[test]
    fn subquery_in_from() {
        let q = parse_sql("SELECT * FROM (SELECT a FROM t) AS sub WHERE sub.a > 0").unwrap();
        assert!(matches!(&q.body.from[0], TableRef::Subquery { alias, .. } if alias == "sub"));
    }

    #[test]
    fn implicit_alias_without_as() {
        let q = parse_sql("SELECT r1.a FROM t r1").unwrap();
        assert!(matches!(&q.body.from[0], TableRef::Table { alias: Some(a), .. } if a == "r1"));
    }

    #[test]
    fn errors_are_reported() {
        assert!(parse_sql("SELECT FROM").is_err());
        assert!(parse_sql("SELECT a FROM t WHERE").is_err());
        assert!(parse_sql("SELECT a FROM t extra garbage ,").is_err());
    }

    #[test]
    fn exists_subquery() {
        let q = parse_sql(
            "SELECT * FROM t WHERE EXISTS (SELECT x FROM s) AND NOT EXISTS (SELECT y FROM u)",
        )
        .unwrap();
        let w = q.body.where_clause.unwrap();
        assert!(w.any(&mut |e| matches!(e, SqlExpr::Exists { negated: false, .. })));
    }

    #[test]
    fn scalar_subquery() {
        let q = parse_sql("SELECT * FROM t WHERE a > (SELECT AVG(x) FROM s)").unwrap();
        let w = q.body.where_clause.unwrap();
        assert!(w.any(&mut |e| matches!(e, SqlExpr::ScalarSubquery(_))));
    }

    #[test]
    fn cast_with_precision() -> Result<()> {
        let q = parse_sql("SELECT CAST(a AS DECIMAL(12, 2)) FROM t")?;
        match &q.body.items[0] {
            SelectItem::Expr {
                expr: SqlExpr::Cast { ty, .. },
                ..
            } => {
                assert_eq!(ty, "DECIMAL");
                Ok(())
            }
            other => Err(unexpected(other)),
        }
    }
}
