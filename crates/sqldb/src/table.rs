//! Columnar storage: schemas, shared-ownership batches, stored tables.

use pytond_common::{Column, DType, Error, Relation, Result, Value};
use std::sync::Arc;

/// One output/input field: optional table qualifier, name, type.
#[derive(Debug, Clone, PartialEq)]
pub struct Field {
    /// Table alias the field came from (for qualified resolution).
    pub qualifier: Option<String>,
    /// Column name.
    pub name: String,
    /// Column type.
    pub dtype: DType,
}

impl Field {
    /// Unqualified field.
    pub fn new(name: impl Into<String>, dtype: DType) -> Field {
        Field {
            qualifier: None,
            name: name.into(),
            dtype,
        }
    }

    /// Qualified field.
    pub fn qualified(q: impl Into<String>, name: impl Into<String>, dtype: DType) -> Field {
        Field {
            qualifier: Some(q.into()),
            name: name.into(),
            dtype,
        }
    }
}

/// An ordered list of fields.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct Schema {
    /// The fields.
    pub fields: Vec<Field>,
}

impl Schema {
    /// Builds a schema from fields.
    pub fn new(fields: Vec<Field>) -> Schema {
        Schema { fields }
    }

    /// Number of fields.
    pub fn len(&self) -> usize {
        self.fields.len()
    }

    /// `true` when the schema is empty.
    pub fn is_empty(&self) -> bool {
        self.fields.is_empty()
    }

    /// Resolves a possibly-qualified name to a field index.
    ///
    /// Unqualified names must be unambiguous; qualified names match both
    /// qualifier and name. Returns `Err` on ambiguity or absence.
    pub fn resolve(&self, qualifier: Option<&str>, name: &str) -> Result<usize> {
        let matches: Vec<usize> = self
            .fields
            .iter()
            .enumerate()
            .filter(|(_, f)| {
                f.name.eq_ignore_ascii_case(name)
                    && qualifier.map_or(true, |q| {
                        f.qualifier
                            .as_deref()
                            .is_some_and(|fq| fq.eq_ignore_ascii_case(q))
                    })
            })
            .map(|(i, _)| i)
            .collect();
        match matches.len() {
            1 => Ok(matches[0]),
            0 => Err(Error::Plan(format!(
                "column '{}{}' not found",
                qualifier.map(|q| format!("{q}.")).unwrap_or_default(),
                name
            ))),
            _ => Err(Error::Plan(format!(
                "column '{}{}' is ambiguous",
                qualifier.map(|q| format!("{q}.")).unwrap_or_default(),
                name
            ))),
        }
    }

    /// Concatenation (for join outputs).
    pub fn concat(&self, other: &Schema) -> Schema {
        let mut fields = self.fields.clone();
        fields.extend(other.fields.iter().cloned());
        Schema { fields }
    }

    /// Schema with every field re-qualified under one alias.
    pub fn requalify(&self, alias: &str) -> Schema {
        Schema {
            fields: self
                .fields
                .iter()
                .map(|f| Field::qualified(alias, f.name.clone(), f.dtype))
                .collect(),
        }
    }
}

/// A materialized batch: shared-ownership columns of equal length.
///
/// Cloning a batch is O(#columns); scans hand out the stored table's columns
/// without copying data.
#[derive(Debug, Clone, Default)]
pub struct Batch {
    /// Columns, `Arc`-shared.
    pub cols: Vec<Arc<Column>>,
}

impl Batch {
    /// Builds from owned columns.
    pub fn from_columns(cols: Vec<Column>) -> Batch {
        Batch {
            cols: cols.into_iter().map(Arc::new).collect(),
        }
    }

    /// Number of rows.
    pub fn num_rows(&self) -> usize {
        self.cols.first().map_or(0, |c| c.len())
    }

    /// Number of columns.
    pub fn num_cols(&self) -> usize {
        self.cols.len()
    }

    /// Row-gathers every column.
    pub fn gather(&self, indices: &[usize]) -> Batch {
        Batch {
            cols: self
                .cols
                .iter()
                .map(|c| Arc::new(c.gather(indices)))
                .collect(),
        }
    }

    /// Like [`Batch::gather`] with optional (null-producing) indices.
    pub fn gather_opt(&self, indices: &[Option<usize>]) -> Batch {
        Batch {
            cols: self
                .cols
                .iter()
                .map(|c| Arc::new(c.gather_opt(indices)))
                .collect(),
        }
    }

    /// Concatenates batches row-wise (schemas must match).
    pub fn concat_rows(batches: &[Batch]) -> Result<Batch> {
        let Some(first) = batches.first() else {
            return Ok(Batch::default());
        };
        let ncols = first.num_cols();
        let mut out: Vec<Column> = (0..ncols)
            .map(|i| Column::with_capacity(first.cols[i].dtype(), 0))
            .collect();
        for b in batches {
            if b.num_cols() != ncols {
                return Err(Error::Exec("batch column-count mismatch".into()));
            }
            for (o, c) in out.iter_mut().zip(&b.cols) {
                o.append(c)?;
            }
        }
        Ok(Batch::from_columns(out))
    }

    /// Number of dictionary-encoded columns in the batch (the columns
    /// [`Batch::to_relation`] will decode).
    pub fn dict_cols(&self) -> usize {
        self.cols
            .iter()
            .filter(|c| matches!(***c, Column::DictStr { .. }))
            .count()
    }

    /// Converts to a named relation using `schema` for names.
    ///
    /// This is the engine's **decode boundary**: dictionary-encoded string
    /// columns materialize back to plain `Vec<String>` here, and nowhere
    /// earlier — everything upstream stays in code space.
    pub fn to_relation(&self, schema: &Schema) -> Relation {
        let mut used: Vec<String> = Vec::new();
        let cols = self
            .cols
            .iter()
            .zip(&schema.fields)
            .map(|(c, f)| {
                // Disambiguate duplicate output names (e.g. join of same-named cols).
                let mut name = f.name.clone();
                let mut k = 1;
                while used.contains(&name) {
                    name = format!("{}_{k}", f.name);
                    k += 1;
                }
                used.push(name.clone());
                (name, c.decode_str())
            })
            .collect();
        Relation::new(cols).expect("engine batches are rectangular")
    }
}

/// A stored table: schema + batch + optional statistics.
#[derive(Debug, Clone)]
pub struct StoredTable {
    /// Schema (unqualified field names).
    pub schema: Schema,
    /// The data.
    pub batch: Batch,
    /// Column statistics and zone maps. Present on registered base tables;
    /// `None` on CTE temporaries (not worth a stats pass per query).
    pub stats: Option<crate::stats::TableStats>,
}

impl StoredTable {
    /// Builds from a relation, computing full column statistics.
    pub fn from_relation(rel: &Relation) -> StoredTable {
        StoredTable::from_relation_encoded(rel, false)
    }

    /// Like [`StoredTable::from_relation`]; with `encode` set, string
    /// columns are dictionary-encoded on the way in (the stored dtype stays
    /// `Str` — encoding is a representation, not a schema change).
    pub fn from_relation_encoded(rel: &Relation, encode: bool) -> StoredTable {
        let schema = Schema::new(
            rel.columns()
                .iter()
                .map(|(n, c)| Field::new(n.clone(), c.dtype()))
                .collect(),
        );
        let batch = Batch::from_columns(
            rel.columns()
                .iter()
                .map(|(_, c)| if encode { c.encode_str() } else { c.clone() })
                .collect(),
        );
        let stats = Some(crate::stats::TableStats::compute(&batch.cols));
        StoredTable {
            schema,
            batch,
            stats,
        }
    }

    /// Appends the rows of `rel` (same column names and dtypes, in order),
    /// updating statistics incrementally.
    pub fn append_relation(&mut self, rel: &Relation) -> Result<()> {
        if rel.columns().len() != self.batch.num_cols() {
            return Err(Error::Data(format!(
                "append: expected {} columns, got {}",
                self.batch.num_cols(),
                rel.columns().len()
            )));
        }
        // Validate every column before mutating anything: a mid-append error
        // must not leave the table with unequal column lengths.
        for ((name, col), field) in rel.columns().iter().zip(&self.schema.fields) {
            if !field.name.eq_ignore_ascii_case(name) || field.dtype != col.dtype() {
                return Err(Error::Data(format!(
                    "append: column '{name}' ({}) does not match stored '{}' ({})",
                    col.dtype(),
                    field.name,
                    field.dtype
                )));
            }
        }
        for ((_, col), stored) in rel.columns().iter().zip(&mut self.batch.cols) {
            Arc::make_mut(stored).append(col)?;
        }
        if let Some(stats) = &mut self.stats {
            stats.extend(&self.batch.cols);
        }
        Ok(())
    }

    /// Number of rows.
    pub fn num_rows(&self) -> usize {
        self.batch.num_rows()
    }
}

/// Builds a single-value batch (used for scalar subquery results).
pub fn scalar_batch(v: Value) -> Result<Batch> {
    Ok(Batch::from_columns(vec![Column::from_values(&[v])?]))
}

#[cfg(test)]
mod tests {
    use super::*;

    fn schema() -> Schema {
        Schema::new(vec![
            Field::qualified("t", "a", DType::Int),
            Field::qualified("t", "b", DType::Str),
            Field::qualified("s", "a", DType::Int),
        ])
    }

    #[test]
    fn resolve_qualified_and_unqualified() {
        let s = schema();
        assert_eq!(s.resolve(Some("t"), "a").unwrap(), 0);
        assert_eq!(s.resolve(Some("s"), "a").unwrap(), 2);
        assert_eq!(s.resolve(None, "b").unwrap(), 1);
        assert!(s.resolve(None, "a").is_err()); // ambiguous
        assert!(s.resolve(Some("t"), "zz").is_err());
    }

    #[test]
    fn resolve_is_case_insensitive() {
        let s = schema();
        assert_eq!(s.resolve(Some("T"), "A").unwrap(), 0);
    }

    #[test]
    fn batch_gather_and_concat() {
        let b = Batch::from_columns(vec![
            Column::from_i64(vec![1, 2, 3]),
            Column::from_strs(&["x", "y", "z"]),
        ]);
        let g = b.gather(&[2, 0]);
        assert_eq!(g.num_rows(), 2);
        assert_eq!(g.cols[0].get(0), Value::Int(3));
        let c = Batch::concat_rows(&[b.clone(), g]).unwrap();
        assert_eq!(c.num_rows(), 5);
    }

    #[test]
    fn relation_conversion_disambiguates_names() {
        let b = Batch::from_columns(vec![Column::from_i64(vec![1]), Column::from_i64(vec![2])]);
        let s = Schema::new(vec![
            Field::qualified("t", "a", DType::Int),
            Field::qualified("s", "a", DType::Int),
        ]);
        let rel = b.to_relation(&s);
        assert_eq!(rel.names(), vec!["a", "a_1"]);
    }
}
