//! The database façade: the `Arc`-cloneable multi-client [`Database`]
//! handle, immutable [`Snapshot`] versions of the table set, the
//! compile-once/execute-many [`PreparedQuery`] API, and the convenience
//! `execute_sql` wrappers.
//!
//! **Concurrency model** (full treatment in `docs/SERVING.md`): a
//! `Database` is a cheap-to-clone handle that any number of threads may
//! read and write simultaneously. The table set lives in immutable,
//! versioned [`Snapshot`]s published through
//! [`pytond_common::version::Versioned`]; every query pins exactly one
//! snapshot for its whole execution, so concurrent `register`/`append`
//! calls never tear, block, or become partially visible to an in-flight
//! read. Writers serialize among themselves and publish a new version by
//! copy-on-append — readers of older versions keep them alive via `Arc`.
//!
//! Planning (parse → bind → optimize) and execution are separate phases:
//! [`Database::prepare`] (from SQL text) and [`Database::prepare_query`]
//! (from an already-built AST, e.g. the direct TondIR lowering in
//! [`crate::lower`]) run the whole front-end once against a pinned snapshot
//! and return a [`PreparedQuery`]; [`Database::execute_prepared`] then runs
//! the stored plan as many times as desired with zero per-call lexing,
//! parsing, binding or optimization. Every `register`/`append` publishes a
//! new snapshot version ([`Database::stats_version`]) so callers caching
//! prepared plans can detect when the statistics that drove cost-based
//! planning moved.

use crate::ast::{Query, Select, SelectItem, SqlExpr, TableRef};
use crate::bind::bind_query;
use crate::exec::{execute_traced, ExecMetrics, ExecOptions};
use crate::optimize::{estimate, optimize_with, StatsCatalog};
use crate::parser::parse_sql;
use crate::plan::BoundQuery;
use crate::table::StoredTable;
use pytond_common::cancel::CancelToken;
use pytond_common::fault::{self, FaultSite};
use pytond_common::hash::FxHashMap;
use pytond_common::version::Versioned;
use pytond_common::{pool, Error, Relation, Result};
use std::sync::{Arc, Mutex, OnceLock};
use std::time::Duration;

/// Execution profile emulating the paper's three backends (see crate docs).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub enum Profile {
    /// DuckDB-like: vectorized operator-at-a-time with materialized
    /// intermediates.
    #[default]
    Vectorized,
    /// Hyper-like: fused pipelines with late materialization.
    Fused,
    /// LingoDB-like: the fused engine minus the research prototype's gaps
    /// (no window functions; no aggregates over disjunctive CASE conditions).
    Lingo,
}

impl Profile {
    /// Short display name used in benchmark output.
    pub fn name(self) -> &'static str {
        match self {
            Profile::Vectorized => "duckdb-sim",
            Profile::Fused => "hyper-sim",
            Profile::Lingo => "lingodb-sim",
        }
    }
}

/// Engine configuration: profile + thread count.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct EngineConfig {
    /// Execution profile.
    pub profile: Profile,
    /// Worker threads. `0` (the default) means **auto**: resolve to
    /// [`pytond_common::pool::default_threads`] — the `PYTOND_THREADS`
    /// environment variable when set, otherwise the machine's hardware
    /// parallelism — at execution time. `1` forces the serial path (no
    /// worker threads are ever spawned); any other value is taken literally.
    pub threads: usize,
    /// Rows per morsel (default 16 Ki).
    pub morsel: usize,
    /// Zone-map scan pruning (default on; benchmarks disable it to measure
    /// the pruned-vs-unpruned delta).
    pub zone_prune: bool,
    /// Per-query deadline in milliseconds. `None` (the default) falls back
    /// to the `PYTOND_QUERY_TIMEOUT_MS` environment variable; `Some(0)`
    /// explicitly disables the deadline for this config regardless of the
    /// environment. The deadline covers the whole lifecycle from submission
    /// (admission queueing included) and trips as the transient
    /// [`Error::Timeout`] within one morsel claim. See `docs/RESILIENCE.md`.
    pub timeout_ms: Option<u64>,
    /// Per-query memory budget in MiB, accounted at coarse allocation sites
    /// (join build tables, aggregation state, materialized intermediates).
    /// `None` falls back to `PYTOND_QUERY_MEM_MB`; `Some(0)` explicitly
    /// disables the budget. Exceeding it trips the transient
    /// [`Error::ResourceExhausted`], leaving snapshots and plan caches
    /// untouched.
    pub mem_budget_mb: Option<u64>,
}

impl Default for EngineConfig {
    fn default() -> Self {
        EngineConfig {
            profile: Profile::Vectorized,
            threads: 0,
            morsel: 16 * 1024,
            zone_prune: true,
            timeout_ms: None,
            mem_budget_mb: None,
        }
    }
}

/// Process-wide default per-query deadline: `PYTOND_QUERY_TIMEOUT_MS` when
/// set to a positive integer (read once, like `PYTOND_THREADS`).
pub(crate) fn default_timeout_ms() -> Option<u64> {
    static CACHED: OnceLock<Option<u64>> = OnceLock::new();
    *CACHED.get_or_init(|| {
        std::env::var("PYTOND_QUERY_TIMEOUT_MS")
            .ok()
            .and_then(|v| v.trim().parse::<u64>().ok())
            .filter(|&ms| ms > 0)
    })
}

/// Process-wide default per-query memory budget: `PYTOND_QUERY_MEM_MB` when
/// set to a positive integer (read once).
pub(crate) fn default_mem_budget_mb() -> Option<u64> {
    static CACHED: OnceLock<Option<u64>> = OnceLock::new();
    *CACHED.get_or_init(|| {
        std::env::var("PYTOND_QUERY_MEM_MB")
            .ok()
            .and_then(|v| v.trim().parse::<u64>().ok())
            .filter(|&mb| mb > 0)
    })
}

/// `PYTOND_NO_FUSE=1` forces the materializing (operator-at-a-time) path
/// even under the fused profiles — the differential oracle the pipeline
/// fuzzing suites run the whole test corpus against (read once).
pub(crate) fn no_fuse() -> bool {
    static CACHED: OnceLock<bool> = OnceLock::new();
    *CACHED.get_or_init(|| {
        std::env::var("PYTOND_NO_FUSE").is_ok_and(|v| {
            let v = v.trim();
            !v.is_empty() && v != "0"
        })
    })
}

/// `PYTOND_NO_DICT=1` disables dictionary encoding of string columns at
/// `register`/`append` — tables store plain `Vec<String>` and every string
/// kernel takes the byte path. This is the in-process differential oracle
/// the dictionary property suite runs the whole corpus against (read once).
pub(crate) fn no_dict() -> bool {
    static CACHED: OnceLock<bool> = OnceLock::new();
    *CACHED.get_or_init(|| {
        std::env::var("PYTOND_NO_DICT").is_ok_and(|v| {
            let v = v.trim();
            !v.is_empty() && v != "0"
        })
    })
}

/// `PYTOND_NO_IVM=1` disables incremental maintenance of registered views —
/// [`Database::view`] recomputes the standing query from scratch on every
/// read instead of serving the maintained result. This is the in-process
/// differential oracle the view maintenance suite runs the whole corpus
/// against (read once).
pub(crate) fn no_ivm() -> bool {
    static CACHED: OnceLock<bool> = OnceLock::new();
    *CACHED.get_or_init(|| {
        std::env::var("PYTOND_NO_IVM").is_ok_and(|v| {
            let v = v.trim();
            !v.is_empty() && v != "0"
        })
    })
}

impl EngineConfig {
    /// Convenience constructor.
    pub fn new(profile: Profile, threads: usize) -> EngineConfig {
        EngineConfig {
            profile,
            threads,
            ..EngineConfig::default()
        }
    }

    /// A copy with [`EngineConfig::timeout_ms`] set (builder style).
    pub fn with_timeout(mut self, timeout_ms: Option<u64>) -> EngineConfig {
        self.timeout_ms = timeout_ms;
        self
    }

    /// A copy with [`EngineConfig::mem_budget_mb`] set (builder style).
    pub fn with_mem_budget(mut self, mem_budget_mb: Option<u64>) -> EngineConfig {
        self.mem_budget_mb = mem_budget_mb;
        self
    }
}

/// One immutable, versioned view of the table set: what a single query
/// executes against.
///
/// Snapshots are published by [`Database::register`]/[`Database::append`]
/// and pinned by readers via [`Database::snapshot`] (or implicitly by every
/// `prepare`/`execute` call). A pinned snapshot never changes — columns,
/// statistics and zone maps are frozen at [`Snapshot::version`] — so a
/// query's result is bit-identical to a serial run against that version
/// regardless of concurrent writes. Stored tables are `Arc`-shared between
/// versions; publishing version *v+1* clones only the table that changed
/// (copy-on-append), the rest are pointer bumps.
#[derive(Debug, Default)]
pub struct Snapshot {
    tables: FxHashMap<String, Arc<StoredTable>>,
    /// The stats version this snapshot carries (0 = the empty database).
    version: u64,
}

impl Snapshot {
    /// The version counter of this view: incremented by every `register`
    /// and successful `append` that produced it.
    pub fn version(&self) -> u64 {
        self.version
    }

    /// Looks a table up (case-insensitive).
    pub fn table(&self, name: &str) -> Option<&StoredTable> {
        self.tables.get(&name.to_lowercase()).map(Arc::as_ref)
    }

    /// Table names, sorted.
    pub fn table_names(&self) -> Vec<String> {
        let mut names: Vec<String> = self.tables.keys().cloned().collect();
        names.sort();
        names
    }

    /// Statistics snapshot over every table in this version, for the
    /// optimizer.
    fn stats_catalog(&self) -> StatsCatalog<'_> {
        let mut ctx = StatsCatalog::empty();
        for (name, stored) in &self.tables {
            if let Some(stats) = &stored.stats {
                ctx.add_table(name, stats);
            }
        }
        ctx
    }

    /// Executes a prepared plan against **this** pinned version of the
    /// data, regardless of what has been appended since. This is the
    /// primitive the differential serving suite uses to prove snapshot
    /// isolation: re-running the same plan on the same snapshot serially
    /// must reproduce a concurrent run bit-for-bit.
    pub fn execute_prepared(
        &self,
        prepared: &PreparedQuery,
        config: &EngineConfig,
    ) -> Result<Relation> {
        let (rel, _) = self.run_bound(&prepared.bound, config, None)?;
        Ok(rel)
    }

    /// Like [`Snapshot::execute_prepared`] but the caller supplies the
    /// [`CancelToken`]: hold a clone and call [`CancelToken::cancel`] from
    /// any thread to abort the query mid-flight (it returns the transient
    /// [`Error::Cancelled`] within one morsel claim). Deadline and memory
    /// budget from `config`/environment are still applied to the token
    /// (tightest wins).
    pub fn execute_prepared_with(
        &self,
        prepared: &PreparedQuery,
        config: &EngineConfig,
        cancel: CancelToken,
    ) -> Result<Relation> {
        let (rel, _) = self.run_bound(&prepared.bound, config, Some(cancel))?;
        Ok(rel)
    }

    /// Like [`Snapshot::execute_prepared`] but also returns a
    /// [`QueryTrace`] (EXPLAIN rendering + executor counters, headed by the
    /// snapshot version, the admission queue wait, and the lifecycle
    /// limits in force).
    pub fn execute_prepared_traced(
        &self,
        prepared: &PreparedQuery,
        config: &EngineConfig,
    ) -> Result<(Relation, QueryTrace)> {
        let (rel, metrics) = self.run_bound(&prepared.bound, config, None)?;
        let deadline = if metrics.deadline_ms == 0 {
            "none".to_string()
        } else {
            format!("{}ms", metrics.deadline_ms)
        };
        let budget = if metrics.mem_budget_bytes == 0 {
            "none".to_string()
        } else {
            format!("{} bytes", metrics.mem_budget_bytes)
        };
        // Under the fused profiles the trace also shows the pipeline
        // decomposition the driver will execute (`PYTOND_NO_FUSE=1` reverts
        // to pure operator-at-a-time, so no pipelines are shown).
        let fused = matches!(prepared.profile, Profile::Fused | Profile::Lingo) && !no_fuse();
        let pipelines = if fused {
            crate::pipeline::describe(&prepared.bound)
        } else {
            String::new()
        };
        let trace = QueryTrace {
            plan: format!(
                "parallelism: {} worker thread(s)\nsnapshot: v{} (queue wait {} ns)\nlimits: deadline {deadline}, mem budget {budget}\n{}{}",
                metrics.threads,
                metrics.snapshot_version,
                metrics.queue_wait_ns,
                render_plans(&prepared.bound),
                pipelines
            ),
            threads: metrics.threads,
            snapshot_version: metrics.snapshot_version,
            metrics,
        };
        Ok((rel, trace))
    }

    /// Pure execution of a bound query against this snapshot (shared by the
    /// prepared entry points). The full lifecycle runs here:
    ///
    /// 1. A [`CancelToken`] is armed with the deadline/memory budget from
    ///    `config` (environment defaults `PYTOND_QUERY_TIMEOUT_MS` /
    ///    `PYTOND_QUERY_MEM_MB` when unset). The deadline clock starts
    ///    *before* admission, so queue wait counts against it.
    /// 2. The query passes the process-wide [`pool::admission`] gate,
    ///    bounded by `PYTOND_ADMIT_TIMEOUT_MS` — an overloaded gate rejects
    ///    with the transient [`Error::Overloaded`] before any work is done.
    /// 3. Execution polls the token at every morsel claim, join build and
    ///    aggregation merge; worker panics (including injected dispatch
    ///    faults) are contained to this query and surface as the transient
    ///    [`Error::Internal`]. The snapshot and plan cache are never
    ///    poisoned by a failed query.
    fn run_bound(
        &self,
        bound: &BoundQuery,
        config: &EngineConfig,
        cancel: Option<CancelToken>,
    ) -> Result<(Relation, ExecMetrics)> {
        let timeout_ms = config
            .timeout_ms
            .or_else(default_timeout_ms)
            .filter(|&ms| ms > 0);
        let budget_mb = config
            .mem_budget_mb
            .or_else(default_mem_budget_mb)
            .filter(|&mb| mb > 0);
        let cancel = match cancel {
            Some(t) => t,
            None if timeout_ms.is_some() || budget_mb.is_some() => CancelToken::new(),
            None => CancelToken::disarmed(),
        };
        cancel.set_label(format!("q@v{}", self.version));
        if let Some(ms) = timeout_ms {
            cancel.set_deadline(Duration::from_millis(ms));
        }
        if let Some(mb) = budget_mb {
            cancel.set_budget_bytes(mb.saturating_mul(1024 * 1024));
        }
        let ticket = pool::admission().admit_within(pool::default_admit_timeout())?;
        let opts = ExecOptions {
            threads: pool::resolve_threads(config.threads),
            fused: matches!(config.profile, Profile::Fused | Profile::Lingo) && !no_fuse(),
            morsel: config.morsel,
            zone_prune: config.zone_prune,
            cancel: cancel.clone(),
        };
        // Contain worker panics (the pool re-raises them on the submitting
        // thread with the job label attached): the helpers have already
        // drained, the snapshot is immutable, so the query slot stays
        // serviceable — map the payload to a transient error instead of
        // unwinding through the caller.
        let run = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
            execute_traced(self, bound, opts)
        }));
        let (batch, schema, mut metrics) = match run {
            Ok(r) => r?,
            Err(payload) => {
                return Err(Error::Internal(format!(
                    "query '{}' aborted by worker panic: {}",
                    cancel.label(),
                    panic_payload_message(payload.as_ref())
                )))
            }
        };
        metrics.snapshot_version = self.version;
        metrics.queue_wait_ns = ticket.queue_wait_ns;
        metrics.dict_decoded_cols = batch.dict_cols() as u64;
        drop(ticket);
        Ok((batch.to_relation(&schema), metrics))
    }
}

/// Best-effort rendering of a caught panic payload (mirrors the pool's
/// re-raise formatting: `&str` and `String` payloads pass through).
pub(crate) fn panic_payload_message(payload: &(dyn std::any::Any + Send)) -> String {
    if let Some(s) = payload.downcast_ref::<&str>() {
        (*s).to_string()
    } else if let Some(s) = payload.downcast_ref::<String>() {
        s.clone()
    } else {
        "<non-string panic payload>".to_string()
    }
}

/// Everything the `Database` handles share: the current snapshot plus the
/// writer lock that serializes version publication.
#[derive(Debug, Default)]
pub(crate) struct DbShared {
    pub(crate) current: Versioned<Snapshot>,
    /// Serializes writers: `register`/`append` read the current version,
    /// build the next one off it, and publish — two concurrent writers must
    /// not both base their copy on the same parent version.
    pub(crate) write: Mutex<()>,
    /// Registered standing queries, refreshed by the writer that publishes
    /// each new snapshot version (see [`crate::mv`]).
    pub(crate) views: Mutex<FxHashMap<String, Arc<crate::mv::ViewEntry>>>,
}

/// An in-memory database: named tables + SQL execution, shared by any
/// number of client threads.
///
/// `Database` is a cheap `Clone` handle (an `Arc` internally): clone it
/// into every client thread, or share one instance — all methods take
/// `&self`. Reads pin an immutable [`Snapshot`]; writes publish a new
/// version without blocking in-flight reads. See the module docs and
/// `docs/SERVING.md` for the visibility rules.
#[derive(Debug, Clone, Default)]
pub struct Database {
    pub(crate) shared: Arc<DbShared>,
}

impl Database {
    /// An empty database.
    pub fn new() -> Database {
        Database::default()
    }

    /// Pins the current version of the table set. The returned snapshot is
    /// immutable and stays valid (and consistent) for as long as the `Arc`
    /// is held, no matter how many appends land after this call.
    pub fn snapshot(&self) -> Arc<Snapshot> {
        self.shared.current.load()
    }

    /// Registers (or replaces) a table, computing column statistics and zone
    /// maps for the optimizer and the pruning scan path, and publishes a new
    /// snapshot version — invalidating cached prepared plans. In-flight
    /// queries keep the version they pinned; they never observe the new
    /// table.
    ///
    /// String columns are dictionary-encoded on the way in (dedup on build,
    /// first-occurrence code order) unless `PYTOND_NO_DICT=1`; results decode
    /// back to plain strings at materialization, so callers never observe
    /// codes.
    pub fn register(&self, name: &str, rel: Relation) {
        self.register_table(name, rel, !no_dict());
    }

    /// Like [`Database::register`] but never dictionary-encodes, regardless
    /// of environment — the explicit plain-string path benchmarks and the
    /// differential dictionary suite compare against.
    pub fn register_plain(&self, name: &str, rel: Relation) {
        self.register_table(name, rel, false);
    }

    fn register_table(&self, name: &str, rel: Relation, encode: bool) {
        let _writer = self.shared.write.lock().expect("database writer poisoned");
        let cur = self.shared.current.load();
        let key = name.to_lowercase();
        let mut tables = cur.tables.clone();
        tables.insert(
            key.clone(),
            Arc::new(StoredTable::from_relation_encoded(&rel, encode)),
        );
        let next = Arc::new(Snapshot {
            tables,
            version: cur.version + 1,
        });
        self.shared.current.publish(next.clone());
        // Still under the writer lock: views referencing the replaced table
        // re-prepare and recompute against the version just published.
        crate::mv::on_register(self, &next, &key);
    }

    /// Appends a batch of rows to an existing table (columns must match the
    /// stored schema in name, order and dtype) and publishes a new snapshot
    /// version on success, invalidating cached prepared plans (their
    /// cost-based join orders were chosen for the old row counts).
    ///
    /// Appends are **copy-on-append**: the appended table's columns are
    /// copied into the new version (readers may still hold the old one),
    /// all other tables are shared by pointer, and statistics update
    /// incrementally (only the trailing partial zone is recomputed). A
    /// failed append publishes nothing — the current version is untouched.
    pub fn append(&self, name: &str, rel: &Relation) -> Result<()> {
        let _writer = self.shared.write.lock().expect("database writer poisoned");
        let cur = self.shared.current.load();
        let key = name.to_lowercase();
        let stored = cur
            .tables
            .get(&key)
            .ok_or_else(|| Error::Data(format!("unknown table '{name}'")))?;
        // Copy-on-append: deep-clone the one table being appended (its
        // columns are Arc-shared with the published snapshot, so the first
        // mutation copies them), leave every other table Arc-shared.
        let mut grown = (**stored).clone();
        grown.append_relation(rel)?;
        // Fault-injection site: fail *after* the copy is built but *before*
        // publication — the resilience suite proves a failed append leaves
        // the current version untouched (nothing is published).
        if fault::injected(FaultSite::AppendPublish) {
            return Err(Error::Internal(format!(
                "injected fault: append-publish ('{name}' at v{})",
                cur.version
            )));
        }
        let mut tables = cur.tables.clone();
        tables.insert(key.clone(), Arc::new(grown));
        let next = Arc::new(Snapshot {
            tables,
            version: cur.version + 1,
        });
        self.shared.current.publish(next.clone());
        // Still under the writer lock: registered views absorb the appended
        // rows (delta propagation where eligible, full recompute otherwise)
        // before the next writer can publish another version. A failed view
        // refresh never fails the append — the view just stays at its prior
        // consistent version (see `crate::mv`).
        crate::mv::on_append(self, &next, &key);
        Ok(())
    }

    /// Version counter of the table set + statistics: incremented by every
    /// [`Database::register`] and successful [`Database::append`]. A
    /// [`PreparedQuery`] whose [`PreparedQuery::stats_version`] differs was
    /// planned against stale statistics and should be re-prepared — for
    /// fresh join orders after appends, and for correctness if a `register`
    /// replaced a table's schema (see [`Database::execute_prepared`]).
    pub fn stats_version(&self) -> u64 {
        self.shared.current.load().version
    }

    /// Looks a table up in the current version (case-insensitive). The
    /// returned `Arc` is a pinned, immutable view of that one table.
    pub fn table(&self, name: &str) -> Option<Arc<StoredTable>> {
        self.shared
            .current
            .load()
            .tables
            .get(&name.to_lowercase())
            .cloned()
    }

    /// Parses one SQL statement and prepares it against the current
    /// snapshot: profile checks, binding and the full optimizer pipeline
    /// run **once**, here; the returned [`PreparedQuery`] can then be
    /// executed any number of times.
    pub fn prepare(&self, sql: &str, profile: Profile) -> Result<PreparedQuery> {
        let query = parse_sql(sql)?;
        self.prepare_query(&query, profile)
    }

    /// Prepares an already-built SQL AST (no text involved): the entry point
    /// for [`crate::lower`]'s direct TondIR lowering, and the tail of
    /// [`Database::prepare`]. Binding and optimization are shared with the
    /// text path, so both produce identical plans by construction. The
    /// whole pipeline runs against one pinned snapshot — a concurrent
    /// append cannot feed binding one version and costing another.
    pub fn prepare_query(&self, query: &Query, profile: Profile) -> Result<PreparedQuery> {
        if profile == Profile::Lingo {
            lingo_check(query)?;
        }
        let snap = self.snapshot();
        let mut bound = bind_query(&snap, query)?;
        let mut ctx = snap.stats_catalog();
        bound.ctes = bound
            .ctes
            .into_iter()
            .map(|(n, p)| {
                let p = optimize_with(p, &ctx);
                ctx.set_rows(&n, estimate(&p, &ctx));
                (n, p)
            })
            .collect();
        bound.root = optimize_with(bound.root, &ctx);
        Ok(PreparedQuery {
            bound,
            profile,
            stats_version: snap.version,
        })
    }

    /// Executes a prepared plan against the current snapshot, pinned for
    /// the whole run. No lexing, parsing, binding or planning happens here —
    /// only the physical execution options are derived from `config`. A
    /// plan gone stale through [`Database::append`] still executes
    /// correctly (appends never change a table's schema); it merely keeps
    /// the join order chosen for the old statistics. A plan gone stale
    /// through [`Database::register`] **replacing** a table must be
    /// re-prepared instead — scans bind stored column indices, so a changed
    /// schema invalidates the plan itself (the `Pytond` facade's cache never
    /// executes stale plans for exactly this reason).
    ///
    /// To execute against an explicitly pinned older version, use
    /// [`Database::snapshot`] + [`Snapshot::execute_prepared`].
    pub fn execute_prepared(
        &self,
        prepared: &PreparedQuery,
        config: &EngineConfig,
    ) -> Result<Relation> {
        self.snapshot().execute_prepared(prepared, config)
    }

    /// Like [`Database::execute_prepared`] but the caller supplies the
    /// [`CancelToken`] (see [`Snapshot::execute_prepared_with`]): hold a
    /// clone and call [`CancelToken::cancel`] from any thread to abort the
    /// query mid-flight.
    pub fn execute_prepared_with(
        &self,
        prepared: &PreparedQuery,
        config: &EngineConfig,
        cancel: CancelToken,
    ) -> Result<Relation> {
        self.snapshot()
            .execute_prepared_with(prepared, config, cancel)
    }

    /// Like [`Database::execute_prepared`] but also returns a [`QueryTrace`]
    /// (EXPLAIN rendering + executor counters, including the pinned
    /// snapshot version and the admission queue wait).
    pub fn execute_prepared_traced(
        &self,
        prepared: &PreparedQuery,
        config: &EngineConfig,
    ) -> Result<(Relation, QueryTrace)> {
        self.snapshot().execute_prepared_traced(prepared, config)
    }

    /// Table names in the current version, sorted.
    pub fn table_names(&self) -> Vec<String> {
        self.shared.current.load().table_names()
    }

    /// Parses, binds, optimizes and executes one SQL statement — the
    /// one-shot convenience wrapper over [`Database::prepare`] +
    /// [`Database::execute_prepared`].
    ///
    /// Note prepare and execute pin *separate* snapshots here: an append
    /// landing between them executes the (still correct) plan against the
    /// newer data, exactly like any other stale-plan execution.
    pub fn execute_sql(&self, sql: &str, config: &EngineConfig) -> Result<Relation> {
        let prepared = self.prepare(sql, config.profile)?;
        self.execute_prepared(&prepared, config)
    }

    /// Like [`Database::execute_sql`] but also returns a [`QueryTrace`] with
    /// the optimized plan rendering and the executor's zone-pruning / join
    /// counters, so tests and benchmarks can assert on planner decisions.
    pub fn execute_sql_traced(
        &self,
        sql: &str,
        config: &EngineConfig,
    ) -> Result<(Relation, QueryTrace)> {
        let prepared = self.prepare(sql, config.profile)?;
        self.execute_prepared_traced(&prepared, config)
    }

    /// Like [`Database::execute_sql`] but returns the optimized plan's
    /// EXPLAIN rendering instead of running it.
    pub fn explain_sql(&self, sql: &str) -> Result<String> {
        let prepared = self.prepare(sql, Profile::Vectorized)?;
        Ok(prepared.explain())
    }
}

/// A bound + cost-optimized query plan, detached from the SQL (or TondIR)
/// source that produced it: the compile-once/execute-many unit.
///
/// Created by [`Database::prepare`] / [`Database::prepare_query`] /
/// [`crate::lower::lower_program`]; executed by
/// [`Database::execute_prepared`]. Carries the [`Database::stats_version`]
/// observed at planning time so callers can detect when the cost model's
/// inputs have moved and transparently re-plan.
#[derive(Debug, Clone)]
pub struct PreparedQuery {
    bound: BoundQuery,
    profile: Profile,
    stats_version: u64,
}

impl PreparedQuery {
    /// The optimized plans (CTEs in materialization order + root).
    pub fn plan(&self) -> &BoundQuery {
        &self.bound
    }

    /// The profile the query was validated against at prepare time (the
    /// LingoDB profile's semantic gates run during `prepare`, not execute).
    pub fn profile(&self) -> Profile {
        self.profile
    }

    /// The [`Database::stats_version`] this plan was optimized under.
    pub fn stats_version(&self) -> u64 {
        self.stats_version
    }

    /// `true` while the database's statistics have not moved since planning:
    /// the cost-based join orders in this plan are still the ones the
    /// optimizer would pick today.
    pub fn is_current(&self, db: &Database) -> bool {
        self.stats_version == db.stats_version()
    }

    /// EXPLAIN rendering of every plan in the query (CTEs + root).
    pub fn explain(&self) -> String {
        render_plans(&self.bound)
    }
}

/// EXPLAIN rendering of every optimized plan in a bound query.
fn render_plans(bound: &BoundQuery) -> String {
    let mut out = String::new();
    for (name, plan) in &bound.ctes {
        out.push_str(&format!("CTE {name}:\n"));
        out.push_str(&plan.explain());
    }
    out.push_str("ROOT:\n");
    out.push_str(&bound.root.explain());
    out
}

/// Planner + executor report for one traced query: the EXPLAIN rendering of
/// the optimized plans (join order included, headed by the resolved degree
/// of parallelism) plus runtime counters.
#[derive(Debug, Clone)]
pub struct QueryTrace {
    /// EXPLAIN rendering of all CTE plans and the root plan, headed by a
    /// `parallelism: N worker thread(s)` line and a
    /// `snapshot: vN (queue wait N ns)` line.
    pub plan: String,
    /// Resolved degree of parallelism the query executed with.
    pub threads: usize,
    /// The table-set version the query executed against (pinned for the
    /// whole run — see `docs/SERVING.md`).
    pub snapshot_version: u64,
    /// Executor counters (zones pruned/scanned, joins flipped, dispenser
    /// claims per worker, join-build partitions, snapshot version and
    /// admission queue wait).
    pub metrics: ExecMetrics,
}

impl QueryTrace {
    /// Human-readable runtime summary: parallelism, snapshot version,
    /// admission queue wait, per-worker morsel claims, scan pruning and
    /// join counters — the numbers the `docs/EXECUTION.md`,
    /// `docs/SERVING.md` and ARCHITECTURE.md walk-throughs quote.
    pub fn summary(&self) -> String {
        let deadline = if self.metrics.deadline_ms == 0 {
            "none".to_string()
        } else {
            format!("{}ms", self.metrics.deadline_ms)
        };
        let budget = if self.metrics.mem_budget_bytes == 0 {
            "none".to_string()
        } else {
            format!("{} bytes", self.metrics.mem_budget_bytes)
        };
        format!(
            "parallelism: {} worker thread(s)\n\
             snapshot: v{} (queue wait {} ns)\n\
             limits: deadline {}, mem budget {}\n\
             cancel checks: {}, mem charged: {} bytes\n\
             morsels claimed per worker: {:?}\n\
             scan zones: {} evaluated, {} pruned\n\
             joins flipped: {}, build partitions: {}\n\
             pipelines: {}, fused ops per pipeline: {:?}, intermediates avoided: {}\n\
             dict: {} encoded col(s) scanned, {} dict-probe pipeline(s), {} col(s) decoded",
            self.threads,
            self.metrics.snapshot_version,
            self.metrics.queue_wait_ns,
            deadline,
            budget,
            self.metrics.cancel_checks,
            self.metrics.mem_peak_bytes,
            self.metrics.morsels_claimed_per_worker,
            self.metrics.morsels_scanned,
            self.metrics.morsels_pruned,
            self.metrics.joins_flipped,
            self.metrics.partitions_built,
            self.metrics.pipelines,
            self.metrics.pipeline_ops,
            self.metrics.intermediates_avoided,
            self.metrics.dict_encoded_cols,
            self.metrics.dict_probe_pipelines,
            self.metrics.dict_decoded_cols,
        )
    }
}

/// The documented LingoDB-profile restrictions (see crate docs): reject
/// window functions and aggregates over disjunctive CASE conditions.
fn lingo_check(q: &Query) -> Result<()> {
    for cte in &q.ctes {
        lingo_check_select(&cte.select)?;
    }
    lingo_check_select(&q.body)
}

fn lingo_check_select(s: &Select) -> Result<()> {
    let check_expr = |e: &SqlExpr| -> Result<()> {
        if e.contains_window() {
            return Err(Error::Unsupported(
                "lingodb-sim profile does not support window functions".into(),
            ));
        }
        let mut bad = false;
        e.any(&mut |x| {
            if let SqlExpr::Agg { arg: Some(a), .. } = x {
                a.any(&mut |inner| {
                    if let SqlExpr::Case { arms, .. } = inner {
                        for (cond, _) in arms {
                            if cond.any(&mut |c| {
                                matches!(
                                    c,
                                    SqlExpr::Bin {
                                        op: crate::ast::BinOp::Or,
                                        ..
                                    }
                                )
                            }) {
                                bad = true;
                            }
                        }
                    }
                    false
                });
            }
            false
        });
        if bad {
            return Err(Error::Unsupported(
                "lingodb-sim profile cannot process aggregates over disjunctive CASE \
                 conditions (the shape of PyTond's Q12 SQL)"
                    .into(),
            ));
        }
        Ok(())
    };
    for item in &s.items {
        if let SelectItem::Expr { expr, .. } = item {
            check_expr(expr)?;
        }
    }
    if let Some(w) = &s.where_clause {
        check_expr(w)?;
    }
    if let Some(h) = &s.having {
        check_expr(h)?;
    }
    for (e, _) in &s.order_by {
        check_expr(e)?;
    }
    for tr in &s.from {
        lingo_check_tableref(tr)?;
    }
    Ok(())
}

fn lingo_check_tableref(tr: &TableRef) -> Result<()> {
    match tr {
        TableRef::Subquery { query, .. } => lingo_check_select(query),
        TableRef::Join { left, right, .. } => {
            lingo_check_tableref(left)?;
            lingo_check_tableref(right)
        }
        TableRef::Table { .. } => Ok(()),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use pytond_common::{Column, Value};

    fn db() -> Database {
        let db = Database::new();
        db.register(
            "t",
            Relation::new(vec![
                ("a".into(), Column::from_i64(vec![1, 2, 3, 4])),
                ("b".into(), Column::from_f64(vec![10.0, 20.0, 30.0, 40.0])),
                ("s".into(), Column::from_strs(&["x", "y", "x", "z"])),
            ])
            .unwrap(),
        );
        db.register(
            "u",
            Relation::new(vec![
                ("a".into(), Column::from_i64(vec![2, 3, 5])),
                ("w".into(), Column::from_i64(vec![200, 300, 500])),
            ])
            .unwrap(),
        );
        db
    }

    fn run(sql: &str) -> Relation {
        db().execute_sql(sql, &EngineConfig::default()).unwrap()
    }

    #[test]
    fn select_filter_project() {
        let r = run("SELECT a, b * 2 AS b2 FROM t WHERE a >= 2");
        assert_eq!(r.num_rows(), 3);
        assert_eq!(r.column("b2").unwrap().as_float(), &[40.0, 60.0, 80.0]);
    }

    #[test]
    fn join_inner() {
        let r = run("SELECT t.a, u.w FROM t, u WHERE t.a = u.a");
        assert_eq!(r.num_rows(), 2);
        assert_eq!(r.column("w").unwrap().as_int(), &[200, 300]);
    }

    #[test]
    fn join_left_outer() {
        let r = run("SELECT t.a, u.w FROM t LEFT JOIN u ON t.a = u.a ORDER BY a");
        assert_eq!(r.num_rows(), 4);
        assert_eq!(r.column("w").unwrap().get(0), Value::Null);
        assert_eq!(r.column("w").unwrap().get(1), Value::Int(200));
    }

    #[test]
    fn group_by_with_having_and_order() {
        let r = run(
            "SELECT s, SUM(b) AS total, COUNT(*) AS n FROM t GROUP BY s \
             HAVING COUNT(*) >= 1 ORDER BY total DESC",
        );
        assert_eq!(r.num_rows(), 3);
        assert_eq!(r.column("s").unwrap().get(0), Value::Str("x".into()));
        assert_eq!(r.column("total").unwrap().get(0), Value::Float(40.0));
    }

    #[test]
    fn scalar_aggregate_without_group() {
        let r = run("SELECT SUM(a) AS s, AVG(b) AS m, COUNT(*) AS n FROM t");
        assert_eq!(r.num_rows(), 1);
        assert_eq!(r.column("s").unwrap().get(0), Value::Int(10));
        assert_eq!(r.column("m").unwrap().get(0), Value::Float(25.0));
        assert_eq!(r.column("n").unwrap().get(0), Value::Int(4));
    }

    #[test]
    fn with_chain_and_reuse() {
        let r = run("WITH big AS (SELECT a, b FROM t WHERE b > 15), \
             top AS (SELECT a FROM big WHERE a < 4) \
             SELECT big.a, big.b FROM big, top WHERE big.a = top.a ORDER BY a");
        assert_eq!(r.num_rows(), 2);
        assert_eq!(r.column("a").unwrap().as_int(), &[2, 3]);
    }

    #[test]
    fn in_subquery_semi_join() {
        let r = run("SELECT a FROM t WHERE a IN (SELECT a FROM u) ORDER BY a");
        assert_eq!(r.column("a").unwrap().as_int(), &[2, 3]);
        let r = run("SELECT a FROM t WHERE a NOT IN (SELECT a FROM u) ORDER BY a");
        assert_eq!(r.column("a").unwrap().as_int(), &[1, 4]);
    }

    #[test]
    fn distinct_and_limit() {
        let r = run("SELECT DISTINCT s FROM t ORDER BY s LIMIT 2");
        assert_eq!(r.num_rows(), 2);
        assert_eq!(
            r.column("s").unwrap().as_str_col(),
            &["x".to_string(), "y".into()]
        );
    }

    #[test]
    fn row_number_window() {
        let r = run("SELECT a, row_number() OVER (ORDER BY b DESC) AS rn FROM t ORDER BY a");
        assert_eq!(r.column("rn").unwrap().as_int(), &[4, 3, 2, 1]);
    }

    #[test]
    fn values_cte() {
        let r = run("WITH v(c0) AS (VALUES (0), (1)) SELECT c0 FROM v ORDER BY c0");
        assert_eq!(r.column("c0").unwrap().as_int(), &[0, 1]);
    }

    #[test]
    fn case_when_aggregation() {
        let r = run("SELECT SUM(CASE WHEN s = 'x' THEN b ELSE 0 END) AS x_total FROM t");
        assert_eq!(r.column("x_total").unwrap().get(0), Value::Float(40.0));
    }

    #[test]
    fn scalar_subquery_in_where() {
        let r = run("SELECT a FROM t WHERE b > (SELECT AVG(b) FROM t) ORDER BY a");
        assert_eq!(r.column("a").unwrap().as_int(), &[3, 4]);
    }

    #[test]
    fn count_distinct() {
        let r = run("SELECT COUNT(DISTINCT s) AS n FROM t");
        assert_eq!(r.column("n").unwrap().get(0), Value::Int(3));
    }

    #[test]
    fn like_filtering() {
        let r = run("SELECT a FROM t WHERE s LIKE 'x%'");
        assert_eq!(r.num_rows(), 2);
    }

    #[test]
    fn profiles_agree() {
        let sql = "SELECT s, SUM(a) AS n FROM t WHERE b >= 20 GROUP BY s ORDER BY s";
        let base = db()
            .execute_sql(sql, &EngineConfig::new(Profile::Vectorized, 1))
            .unwrap();
        for profile in [Profile::Fused, Profile::Lingo] {
            for threads in [1, 4] {
                let r = db()
                    .execute_sql(sql, &EngineConfig::new(profile, threads))
                    .unwrap();
                assert!(base.approx_eq(&r, 1e-9), "{profile:?}/{threads}");
            }
        }
    }

    #[test]
    fn lingo_rejects_window_functions() {
        let err = db()
            .execute_sql(
                "SELECT row_number() OVER (ORDER BY a) AS id FROM t",
                &EngineConfig::new(Profile::Lingo, 1),
            )
            .unwrap_err();
        assert!(matches!(err, Error::Unsupported(_)), "{err}");
    }

    #[test]
    fn lingo_rejects_disjunctive_case_aggregates() {
        let err = db()
            .execute_sql(
                "SELECT SUM(CASE WHEN s = 'x' OR s = 'y' THEN 1 ELSE 0 END) AS n FROM t",
                &EngineConfig::new(Profile::Lingo, 1),
            )
            .unwrap_err();
        assert!(matches!(err, Error::Unsupported(_)), "{err}");
        // The vectorized profile runs the same query fine.
        let ok = db()
            .execute_sql(
                "SELECT SUM(CASE WHEN s = 'x' OR s = 'y' THEN 1 ELSE 0 END) AS n FROM t",
                &EngineConfig::default(),
            )
            .unwrap();
        assert_eq!(ok.column("n").unwrap().get(0), Value::Int(3));
    }

    #[test]
    fn explain_renders_plan() {
        let text = db().explain_sql("SELECT a FROM t WHERE a > 1").unwrap();
        assert!(text.contains("Scan t"), "{text}");
        // The filter was sunk into the scan node.
        assert!(text.contains("where"), "{text}");
    }

    /// A clustered (sequentially keyed) table: zone maps give tight per-zone
    /// bounds, so selective range scans skip most morsels.
    fn clustered_db(rows: i64) -> Database {
        let db = Database::new();
        db.register(
            "events",
            Relation::new(vec![
                ("id".into(), Column::from_i64((0..rows).collect())),
                (
                    "v".into(),
                    Column::from_f64((0..rows).map(|i| (i % 97) as f64).collect()),
                ),
            ])
            .unwrap(),
        );
        db
    }

    #[test]
    fn zone_pruning_skips_morsels_and_preserves_results() {
        let db = clustered_db(40_000);
        let sql = "SELECT id, v FROM events WHERE id >= 100 AND id < 300";
        let (pruned, trace) = db
            .execute_sql_traced(sql, &EngineConfig::default())
            .unwrap();
        assert!(
            trace.metrics.morsels_pruned > 0,
            "expected pruned morsels, got {:?}\n{}",
            trace.metrics,
            trace.plan
        );
        // Same query with pruning disabled scans every morsel and agrees.
        let cfg = EngineConfig {
            zone_prune: false,
            ..EngineConfig::default()
        };
        let (full, t2) = db.execute_sql_traced(sql, &cfg).unwrap();
        assert_eq!(t2.metrics.morsels_pruned, 0);
        assert!(t2.metrics.morsels_scanned > trace.metrics.morsels_scanned);
        assert!(pruned.approx_eq(&full, 0.0), "pruned scan changed results");
        assert_eq!(pruned.num_rows(), 200);
    }

    #[test]
    fn zone_pruning_handles_in_lists_and_equality() {
        let db = clustered_db(40_000);
        let (r, trace) = db
            .execute_sql_traced(
                "SELECT id FROM events WHERE id IN (5, 39999)",
                &EngineConfig::default(),
            )
            .unwrap();
        assert_eq!(r.num_rows(), 2);
        assert!(trace.metrics.morsels_pruned > 0, "{:?}", trace.metrics);
        let (r, trace) = db
            .execute_sql_traced(
                "SELECT id FROM events WHERE id = 12345",
                &EngineConfig::default(),
            )
            .unwrap();
        assert_eq!(r.num_rows(), 1);
        assert_eq!(trace.metrics.morsels_scanned, 1, "{:?}", trace.metrics);
    }

    /// TPC-H Q3 shape with the FROM clause in a deliberately bad order:
    /// the greedy cost-based rewrite must start from the cheap
    /// customer⋈orders pair instead of crossing lineitem with customer.
    fn q3_shaped_db() -> Database {
        let db = Database::new();
        let n_li = 8_000i64;
        db.register(
            "lineitem",
            Relation::new(vec![
                (
                    "l_orderkey".into(),
                    Column::from_i64((0..n_li).map(|i| i / 4).collect()),
                ),
                (
                    "l_extendedprice".into(),
                    Column::from_f64((0..n_li).map(|i| (i % 100) as f64).collect()),
                ),
            ])
            .unwrap(),
        );
        db.register(
            "orders",
            Relation::new(vec![
                ("o_orderkey".into(), Column::from_i64((0..2_000).collect())),
                (
                    "o_custkey".into(),
                    Column::from_i64((0..2_000).map(|i| i % 100).collect()),
                ),
            ])
            .unwrap(),
        );
        db.register(
            "customer",
            Relation::new(vec![(
                "c_custkey".into(),
                Column::from_i64((0..100).collect()),
            )])
            .unwrap(),
        );
        db
    }

    #[test]
    fn cost_based_rewrite_changes_join_order() {
        let db = q3_shaped_db();
        let sql = "SELECT SUM(l_extendedprice) AS rev \
                   FROM lineitem, customer, orders \
                   WHERE l_orderkey = o_orderkey AND c_custkey = o_custkey";
        let plan = db.explain_sql(sql).unwrap();
        let pos = |t: &str| plan.find(&format!("Scan {t}")).expect(t);
        // The FROM clause leads with lineitem; the rewrite starts from the
        // cheap orders⋈customer pair and attaches lineitem last.
        assert!(
            pos("lineitem") > pos("orders") && pos("lineitem") > pos("customer"),
            "join order not rewritten:\n{plan}"
        );
        // The rewritten plan computes the same answer as the well-ordered
        // query.
        let good = "SELECT SUM(l_extendedprice) AS rev \
                    FROM customer, orders, lineitem \
                    WHERE c_custkey = o_custkey AND l_orderkey = o_orderkey";
        let a = db.execute_sql(sql, &EngineConfig::default()).unwrap();
        let b = db.execute_sql(good, &EngineConfig::default()).unwrap();
        assert!(a.approx_eq(&b, 1e-9));
    }

    #[test]
    fn well_ordered_joins_are_left_alone() {
        let db = q3_shaped_db();
        let plan = db
            .explain_sql(
                "SELECT SUM(l_extendedprice) AS rev \
                 FROM customer, orders, lineitem \
                 WHERE c_custkey = o_custkey AND l_orderkey = o_orderkey",
            )
            .unwrap();
        let pos = |t: &str| plan.find(&format!("Scan {t}")).expect(t);
        assert!(
            pos("customer") < pos("orders") && pos("orders") < pos("lineitem"),
            "optimal FROM order should be preserved:\n{plan}"
        );
    }

    #[test]
    fn joins_build_on_smaller_side() {
        let db = q3_shaped_db();
        // lineitem (8000 rows) probes; orders (2000 rows) should build even
        // though it is the left input here.
        let (_, trace) = db
            .execute_sql_traced(
                "SELECT o_orderkey FROM orders, lineitem WHERE o_orderkey = l_orderkey",
                &EngineConfig::default(),
            )
            .unwrap();
        assert!(trace.metrics.joins_flipped >= 1, "{:?}", trace.metrics);
    }

    #[test]
    fn joins_over_empty_tables_plan_and_run() {
        let db = db();
        db.register(
            "e",
            Relation::new(vec![("a".into(), Column::from_i64(vec![]))]).unwrap(),
        );
        // A zero-row input must not panic cardinality estimation.
        let r = db
            .execute_sql(
                "SELECT t.a FROM t, e WHERE t.a = e.a",
                &EngineConfig::default(),
            )
            .unwrap();
        assert_eq!(r.num_rows(), 0);
    }

    #[test]
    fn failed_append_leaves_table_untouched() {
        let db = clustered_db(100);
        // Second column has the wrong dtype: nothing may be appended.
        let bad = Relation::new(vec![
            ("id".into(), Column::from_i64(vec![100])),
            ("v".into(), Column::from_strs(&["oops"])),
        ])
        .unwrap();
        assert!(db.append("events", &bad).is_err());
        let stored = db.table("events").unwrap();
        assert!(stored.batch.cols.iter().all(|c| c.len() == 100));
        let r = db
            .execute_sql("SELECT COUNT(*) AS n FROM events", &EngineConfig::default())
            .unwrap();
        assert_eq!(r.column("n").unwrap().get(0), Value::Int(100));
    }

    #[test]
    fn append_updates_data_and_stats() {
        let db = clustered_db(5_000);
        let more = Relation::new(vec![
            ("id".into(), Column::from_i64((5_000..6_000).collect())),
            ("v".into(), Column::from_f64(vec![1.0; 1_000])),
        ])
        .unwrap();
        db.append("events", &more).unwrap();
        let r = db
            .execute_sql(
                "SELECT COUNT(*) AS n FROM events WHERE id >= 5000",
                &EngineConfig::default(),
            )
            .unwrap();
        assert_eq!(r.column("n").unwrap().get(0), Value::Int(1_000));
        let stored = db.table("events").unwrap();
        let stats = stored.stats.as_ref().unwrap();
        assert_eq!(stats.row_count, 6_000);
        assert_eq!(stats.columns[0].max, Value::Int(5_999));
        // Mismatched schema is rejected.
        let bad = Relation::new(vec![("id".into(), Column::from_i64(vec![1]))]).unwrap();
        assert!(db.append("events", &bad).is_err());
    }

    #[test]
    fn register_and_append_bump_stats_version() {
        let db = Database::new();
        assert_eq!(db.stats_version(), 0);
        db.register(
            "t",
            Relation::new(vec![("a".into(), Column::from_i64(vec![1]))]).unwrap(),
        );
        assert_eq!(db.stats_version(), 1);
        db.append(
            "t",
            &Relation::new(vec![("a".into(), Column::from_i64(vec![2]))]).unwrap(),
        )
        .unwrap();
        assert_eq!(db.stats_version(), 2);
        // A failed append must NOT bump the version (nothing changed).
        let bad = Relation::new(vec![("a".into(), Column::from_f64(vec![1.0]))]).unwrap();
        assert!(db.append("t", &bad).is_err());
        assert_eq!(db.stats_version(), 2);
    }

    #[test]
    fn prepared_query_executes_without_replanning() {
        let db = db();
        let sql = "SELECT s, SUM(b) AS total FROM t WHERE a >= 2 GROUP BY s ORDER BY s";
        let prepared = db.prepare(sql, Profile::Vectorized).unwrap();
        assert!(prepared.is_current(&db));
        let reference = db.execute_sql(sql, &EngineConfig::default()).unwrap();
        // Execute the same prepared plan repeatedly; results are identical
        // to the one-shot path every time.
        for _ in 0..3 {
            let r = db
                .execute_prepared(&prepared, &EngineConfig::default())
                .unwrap();
            assert!(reference.approx_eq(&r, 0.0));
        }
        // The prepared EXPLAIN matches the one-shot EXPLAIN.
        assert_eq!(prepared.explain(), db.explain_sql(sql).unwrap());
    }

    /// The stale-plan hazard regression: a query prepared while `lineitem`
    /// is tiny joins it first; after appending enough rows to make it the
    /// biggest input, the stats version has moved, `is_current` turns false,
    /// and re-preparing yields a different (lineitem-last) join order while
    /// both plans still agree on results over the current data.
    #[test]
    fn append_invalidates_prepared_plans_and_replans_join_order() {
        let db = Database::new();
        let small_li = 40i64;
        db.register(
            "lineitem",
            Relation::new(vec![
                (
                    "l_orderkey".into(),
                    Column::from_i64((0..small_li).map(|i| i / 4).collect()),
                ),
                (
                    "l_extendedprice".into(),
                    Column::from_f64((0..small_li).map(|i| (i % 100) as f64).collect()),
                ),
            ])
            .unwrap(),
        );
        db.register(
            "orders",
            Relation::new(vec![
                ("o_orderkey".into(), Column::from_i64((0..2_000).collect())),
                (
                    "o_custkey".into(),
                    Column::from_i64((0..2_000).map(|i| i % 100).collect()),
                ),
            ])
            .unwrap(),
        );
        db.register(
            "customer",
            Relation::new(vec![(
                "c_custkey".into(),
                Column::from_i64((0..100).collect()),
            )])
            .unwrap(),
        );
        let sql = "SELECT SUM(l_extendedprice) AS rev \
                   FROM lineitem, customer, orders \
                   WHERE l_orderkey = o_orderkey AND c_custkey = o_custkey";
        let before = db.prepare(sql, Profile::Vectorized).unwrap();
        assert!(before.is_current(&db));
        let order_before = before.plan().root.scan_order();
        assert_eq!(
            order_before[0], "lineitem",
            "tiny lineitem should lead: {order_before:?}"
        );
        // Grow lineitem to 20k+ rows: it is now by far the largest input.
        let n = 20_000i64;
        db.append(
            "lineitem",
            &Relation::new(vec![
                (
                    "l_orderkey".into(),
                    Column::from_i64((0..n).map(|i| (small_li + i) / 4 % 2_000).collect()),
                ),
                (
                    "l_extendedprice".into(),
                    Column::from_f64((0..n).map(|i| (i % 100) as f64).collect()),
                ),
            ])
            .unwrap(),
        )
        .unwrap();
        assert!(
            !before.is_current(&db),
            "append must invalidate prepared plans"
        );
        let after = db.prepare(sql, Profile::Vectorized).unwrap();
        let order_after = after.plan().root.scan_order();
        assert_eq!(
            order_after.last().map(String::as_str),
            Some("lineitem"),
            "re-planned join order should attach the now-huge lineitem last: {order_after:?}"
        );
        assert_ne!(order_before, order_after, "join order must be re-planned");
        // Stale plans stay *correct* — they just keep the old join order.
        let a = db
            .execute_prepared(&before, &EngineConfig::default())
            .unwrap();
        let b = db
            .execute_prepared(&after, &EngineConfig::default())
            .unwrap();
        assert!(a.approx_eq(&b, 1e-9));
    }

    #[test]
    fn full_outer_join() {
        let r =
            run("SELECT t.a, u.w FROM t FULL OUTER JOIN u ON t.a = u.a ORDER BY t.a NULLS FIRST");
        assert_eq!(r.num_rows(), 5);
        // Row with u.a = 5 has null t.a.
        assert_eq!(r.column("a").unwrap().get(0), Value::Null);
        assert_eq!(r.column("w").unwrap().get(0), Value::Int(500));
    }

    #[test]
    fn exists_uncorrelated() {
        let r = run("SELECT a FROM t WHERE EXISTS (SELECT a FROM u WHERE a > 100)");
        assert_eq!(r.num_rows(), 0);
        let r = run("SELECT a FROM t WHERE EXISTS (SELECT a FROM u WHERE a > 2)");
        assert_eq!(r.num_rows(), 4);
    }

    #[test]
    fn between_and_in_list() {
        let r = run("SELECT a FROM t WHERE a BETWEEN 2 AND 3 AND a IN (1, 3, 4)");
        assert_eq!(r.column("a").unwrap().as_int(), &[3]);
    }

    #[test]
    fn order_by_multiple_keys_with_desc() {
        let r = run("SELECT s, a FROM t ORDER BY s ASC, a DESC");
        assert_eq!(r.column("a").unwrap().as_int(), &[3, 1, 2, 4]);
    }

    #[test]
    fn arithmetic_in_group_keys() {
        let r = run("SELECT a % 2 AS parity, COUNT(*) AS n FROM t GROUP BY a % 2 ORDER BY parity");
        assert_eq!(r.column("n").unwrap().as_int(), &[2, 2]);
    }
}
