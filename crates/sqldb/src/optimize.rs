//! Logical-plan rewrites: filter pushdown, cross→inner join promotion, and
//! projection (scan-column) pruning.

use crate::ast::BinOp;
use crate::expr::BExpr;
use crate::plan::{JKind, LogicalPlan};
use crate::table::Schema;

/// Runs all rewrite passes.
pub fn optimize(plan: LogicalPlan) -> LogicalPlan {
    let plan = push_filters(plan);
    let all: Vec<usize> = (0..plan.schema().len()).collect();
    let (plan, _map) = prune(plan, &all);
    plan
}

// ---------------- filter pushdown ----------------

fn split_and(e: BExpr, out: &mut Vec<BExpr>) {
    match e {
        BExpr::Bin {
            op: BinOp::And,
            l,
            r,
        } => {
            split_and(*l, out);
            split_and(*r, out);
        }
        other => out.push(other),
    }
}

fn conjoin(mut conjs: Vec<BExpr>) -> Option<BExpr> {
    let mut acc = conjs.pop()?;
    while let Some(c) = conjs.pop() {
        acc = BExpr::Bin {
            op: BinOp::And,
            l: Box::new(c),
            r: Box::new(acc),
        };
    }
    Some(acc)
}

fn cols_of(e: &BExpr) -> Vec<usize> {
    let mut v = Vec::new();
    e.columns_used(&mut v);
    v
}

/// Pushes filter conjuncts toward the scans.
pub fn push_filters(plan: LogicalPlan) -> LogicalPlan {
    match plan {
        LogicalPlan::Filter { input, pred } => {
            let mut conjs = Vec::new();
            split_and(pred, &mut conjs);
            push_conjuncts(*input, conjs)
        }
        LogicalPlan::Project {
            input,
            exprs,
            schema,
        } => LogicalPlan::Project {
            input: Box::new(push_filters(*input)),
            exprs,
            schema,
        },
        LogicalPlan::Join {
            left,
            right,
            kind,
            left_keys,
            right_keys,
            residual,
            schema,
        } => LogicalPlan::Join {
            left: Box::new(push_filters(*left)),
            right: Box::new(push_filters(*right)),
            kind,
            left_keys,
            right_keys,
            residual,
            schema,
        },
        LogicalPlan::Aggregate {
            input,
            group,
            aggs,
            schema,
        } => LogicalPlan::Aggregate {
            input: Box::new(push_filters(*input)),
            group,
            aggs,
            schema,
        },
        LogicalPlan::Sort { input, keys } => LogicalPlan::Sort {
            input: Box::new(push_filters(*input)),
            keys,
        },
        LogicalPlan::Limit { input, n } => LogicalPlan::Limit {
            input: Box::new(push_filters(*input)),
            n,
        },
        LogicalPlan::Window {
            input,
            order,
            schema,
        } => LogicalPlan::Window {
            input: Box::new(push_filters(*input)),
            order,
            schema,
        },
        LogicalPlan::Distinct { input } => LogicalPlan::Distinct {
            input: Box::new(push_filters(*input)),
        },
        leaf => leaf,
    }
}

/// Pushes a set of conjuncts into `plan`, keeping the un-pushable ones in a
/// Filter directly above it.
fn push_conjuncts(plan: LogicalPlan, conjs: Vec<BExpr>) -> LogicalPlan {
    match plan {
        LogicalPlan::Filter { input, pred } => {
            let mut all = conjs;
            split_and(pred, &mut all);
            push_conjuncts(*input, all)
        }
        LogicalPlan::Project {
            input,
            exprs,
            schema,
        } => {
            // Substitute projection expressions into each conjunct and push.
            let mut pushed = Vec::new();
            for mut c in conjs {
                substitute_cols(&mut c, &exprs);
                pushed.push(c);
            }
            LogicalPlan::Project {
                input: Box::new(push_conjuncts(*input, pushed)),
                exprs,
                schema,
            }
        }
        LogicalPlan::Join {
            left,
            right,
            kind,
            mut left_keys,
            mut right_keys,
            residual,
            schema,
        } => {
            let lw = left.schema().len();
            let mut left_conjs = Vec::new();
            let mut right_conjs = Vec::new();
            let mut keep = Vec::new();
            let left_pushable = matches!(
                kind,
                JKind::Inner | JKind::Cross | JKind::Semi | JKind::Anti | JKind::Left
            );
            let right_pushable = matches!(kind, JKind::Inner | JKind::Cross);
            for c in conjs {
                let cols = cols_of(&c);
                let all_left = cols.iter().all(|&i| i < lw);
                let all_right = cols.iter().all(|&i| i >= lw);
                if all_left && left_pushable && !cols.is_empty() {
                    left_conjs.push(c);
                } else if all_right && right_pushable && !cols.is_empty() {
                    let mut c = c;
                    c.remap_columns(&|i| i - lw);
                    right_conjs.push(c);
                } else if matches!(kind, JKind::Inner | JKind::Cross) {
                    // Equi-predicate across sides → promote to join key.
                    if let BExpr::Bin {
                        op: BinOp::Eq,
                        l,
                        r,
                    } = &c
                    {
                        let lc = cols_of(l);
                        let rc = cols_of(r);
                        let l_is_left = !lc.is_empty() && lc.iter().all(|&i| i < lw);
                        let r_is_right = !rc.is_empty() && rc.iter().all(|&i| i >= lw);
                        let l_is_right = !lc.is_empty() && lc.iter().all(|&i| i >= lw);
                        let r_is_left = !rc.is_empty() && rc.iter().all(|&i| i < lw);
                        if l_is_left && r_is_right {
                            let mut rk = (**r).clone();
                            rk.remap_columns(&|i| i - lw);
                            left_keys.push((**l).clone());
                            right_keys.push(rk);
                            continue;
                        }
                        if l_is_right && r_is_left {
                            let mut lk = (**l).clone();
                            lk.remap_columns(&|i| i - lw);
                            left_keys.push((**r).clone());
                            right_keys.push(lk);
                            continue;
                        }
                    }
                    keep.push(c);
                } else {
                    keep.push(c);
                }
            }
            let kind = if kind == JKind::Cross && !left_keys.is_empty() {
                JKind::Inner
            } else {
                kind
            };
            let new_join = LogicalPlan::Join {
                left: Box::new(push_conjuncts_opt(*left, left_conjs)),
                right: Box::new(push_conjuncts_opt(*right, right_conjs)),
                kind,
                left_keys,
                right_keys,
                residual,
                schema,
            };
            wrap_filter(new_join, keep)
        }
        LogicalPlan::Sort { input, keys } => LogicalPlan::Sort {
            input: Box::new(push_conjuncts(*input, conjs)),
            keys,
        },
        LogicalPlan::Limit { .. } => {
            // Cannot push through LIMIT (changes which rows survive).
            let inner = push_filters(plan);
            wrap_filter(inner, conjs)
        }
        LogicalPlan::Distinct { input } => LogicalPlan::Distinct {
            input: Box::new(push_conjuncts(*input, conjs)),
        },
        other => {
            let inner = push_filters(other);
            wrap_filter(inner, conjs)
        }
    }
}

fn push_conjuncts_opt(plan: LogicalPlan, conjs: Vec<BExpr>) -> LogicalPlan {
    if conjs.is_empty() {
        push_filters(plan)
    } else {
        push_conjuncts(plan, conjs)
    }
}

fn wrap_filter(plan: LogicalPlan, conjs: Vec<BExpr>) -> LogicalPlan {
    match conjoin(conjs) {
        Some(pred) => LogicalPlan::Filter {
            input: Box::new(plan),
            pred,
        },
        None => plan,
    }
}

/// Replaces `Col(i)` with `exprs[i]` (pushdown through projections).
fn substitute_cols(e: &mut BExpr, exprs: &[BExpr]) {
    match e {
        BExpr::Col(i) => *e = exprs[*i].clone(),
        BExpr::Lit(_) => {}
        BExpr::Bin { l, r, .. } => {
            substitute_cols(l, exprs);
            substitute_cols(r, exprs);
        }
        BExpr::Not(x) | BExpr::Neg(x) => substitute_cols(x, exprs),
        BExpr::IsNull { e: x, .. } | BExpr::Like { e: x, .. } | BExpr::InList { e: x, .. } => {
            substitute_cols(x, exprs)
        }
        BExpr::Case { arms, else_value } => {
            for (c, v) in arms {
                substitute_cols(c, exprs);
                substitute_cols(v, exprs);
            }
            if let Some(x) = else_value {
                substitute_cols(x, exprs);
            }
        }
        BExpr::Func { args, .. } => args.iter_mut().for_each(|a| substitute_cols(a, exprs)),
        BExpr::Cast { e: x, .. } => substitute_cols(x, exprs),
    }
}

// ---------------- projection pruning ----------------

/// Rewrites `plan` to produce only the columns in `required` (in ascending
/// old-index order). Returns the new plan and the mapping old→new index.
fn prune(plan: LogicalPlan, required: &[usize]) -> (LogicalPlan, Vec<(usize, usize)>) {
    let mut req: Vec<usize> = required.to_vec();
    req.sort_unstable();
    req.dedup();
    match plan {
        LogicalPlan::Scan {
            table,
            schema,
            projection,
        } => {
            let base: Vec<usize> = match &projection {
                Some(p) => p.clone(),
                None => (0..schema.len()).collect(),
            };
            let kept: Vec<usize> = req.iter().map(|&i| base[i]).collect();
            let fields = req.iter().map(|&i| schema.fields[i].clone()).collect();
            let mapping = req
                .iter()
                .enumerate()
                .map(|(new, &old)| (old, new))
                .collect();
            (
                LogicalPlan::Scan {
                    table,
                    schema: Schema::new(fields),
                    projection: Some(kept),
                },
                mapping,
            )
        }
        LogicalPlan::Values { schema, rows } => {
            let fields = req.iter().map(|&i| schema.fields[i].clone()).collect();
            let rows = rows
                .into_iter()
                .map(|r| req.iter().map(|&i| r[i].clone()).collect())
                .collect();
            let mapping = req
                .iter()
                .enumerate()
                .map(|(new, &old)| (old, new))
                .collect();
            (
                LogicalPlan::Values {
                    schema: Schema::new(fields),
                    rows,
                },
                mapping,
            )
        }
        LogicalPlan::Filter { input, mut pred } => {
            let mut need = req.clone();
            need.extend(cols_of(&pred));
            let (new_input, mapping) = prune(*input, &need);
            {
                let remap = to_remap(&mapping);
                pred.remap_columns(&remap);
            }
            // Output schema is the input schema; caller's required indices map
            // through `mapping` — but the Filter output now has the pruned
            // width, so expose the full mapping.
            (
                LogicalPlan::Filter {
                    input: Box::new(new_input),
                    pred,
                },
                mapping,
            )
        }
        LogicalPlan::Project {
            input,
            exprs,
            schema,
        } => {
            let kept_exprs: Vec<BExpr> = req.iter().map(|&i| exprs[i].clone()).collect();
            let kept_fields = req.iter().map(|&i| schema.fields[i].clone()).collect();
            let mut need = Vec::new();
            for e in &kept_exprs {
                need.extend(cols_of(e));
            }
            let (new_input, mapping) = prune(*input, &need);
            let remap = to_remap(&mapping);
            let kept_exprs = kept_exprs
                .into_iter()
                .map(|mut e| {
                    e.remap_columns(&remap);
                    e
                })
                .collect();
            let out_map = req
                .iter()
                .enumerate()
                .map(|(new, &old)| (old, new))
                .collect();
            (
                LogicalPlan::Project {
                    input: Box::new(new_input),
                    exprs: kept_exprs,
                    schema: Schema::new(kept_fields),
                },
                out_map,
            )
        }
        LogicalPlan::Join {
            left,
            right,
            kind,
            left_keys,
            right_keys,
            residual,
            schema,
        } => {
            let lw = left.schema().len();
            let semi = matches!(kind, JKind::Semi | JKind::Anti);
            let mut lneed: Vec<usize> = Vec::new();
            let mut rneed: Vec<usize> = Vec::new();
            for &i in &req {
                if i < lw {
                    lneed.push(i);
                } else {
                    rneed.push(i - lw);
                }
            }
            for k in &left_keys {
                lneed.extend(cols_of(k));
            }
            for k in &right_keys {
                rneed.extend(cols_of(k));
            }
            if let Some(res) = &residual {
                for c in cols_of(res) {
                    if c < lw {
                        lneed.push(c);
                    } else {
                        rneed.push(c - lw);
                    }
                }
            }
            let (new_left, lmap) = prune(*left, &lneed);
            let (new_right, rmap) = if semi && rneed.is_empty() && right_keys.is_empty() {
                // Keyless semi/anti join needs nothing from the right but its
                // row count; keep one column if available.
                let keep: Vec<usize> = if right.schema().is_empty() {
                    vec![]
                } else {
                    vec![0]
                };
                prune(*right, &keep)
            } else {
                prune(*right, &rneed)
            };
            let lremap = to_remap(&lmap);
            let rremap = to_remap(&rmap);
            let new_lw = new_left.schema().len();
            let left_keys = left_keys
                .into_iter()
                .map(|mut k| {
                    k.remap_columns(&lremap);
                    k
                })
                .collect();
            let right_keys = right_keys
                .into_iter()
                .map(|mut k| {
                    k.remap_columns(&rremap);
                    k
                })
                .collect();
            let residual = residual.map(|mut r| {
                r.remap_columns(&|i| {
                    if i < lw {
                        lremap(i)
                    } else {
                        new_lw + rremap(i - lw)
                    }
                });
                r
            });
            // New schema: pruned left ++ pruned right (or left only).
            let new_schema = if semi {
                new_left.schema().clone()
            } else {
                new_left.schema().concat(new_right.schema())
            };
            let _ = schema;
            let mut mapping: Vec<(usize, usize)> = Vec::new();
            for (old, new) in &lmap {
                mapping.push((*old, *new));
            }
            if !semi {
                for (old, new) in &rmap {
                    mapping.push((old + lw, new + new_lw));
                }
            }
            (
                LogicalPlan::Join {
                    left: Box::new(new_left),
                    right: Box::new(new_right),
                    kind,
                    left_keys,
                    right_keys,
                    residual,
                    schema: new_schema,
                },
                mapping,
            )
        }
        LogicalPlan::Aggregate {
            input,
            group,
            aggs,
            schema,
        } => {
            // Group keys and aggregates all stay (grouping semantics); prune
            // only the input.
            let mut need = Vec::new();
            for g in &group {
                need.extend(cols_of(g));
            }
            for a in &aggs {
                if let Some(arg) = &a.arg {
                    need.extend(cols_of(arg));
                }
            }
            let (new_input, mapping) = prune(*input, &need);
            let remap = to_remap(&mapping);
            let group = group
                .into_iter()
                .map(|mut g| {
                    g.remap_columns(&remap);
                    g
                })
                .collect();
            let aggs = aggs
                .into_iter()
                .map(|mut a| {
                    if let Some(arg) = &mut a.arg {
                        arg.remap_columns(&remap);
                    }
                    a
                })
                .collect();
            let identity = (0..schema.len()).map(|i| (i, i)).collect();
            (
                LogicalPlan::Aggregate {
                    input: Box::new(new_input),
                    group,
                    aggs,
                    schema,
                },
                identity,
            )
        }
        LogicalPlan::Sort { input, keys } => {
            let mut need = req.clone();
            for (k, _) in &keys {
                need.extend(cols_of(k));
            }
            let (new_input, mapping) = prune(*input, &need);
            let keys = {
                let remap = to_remap(&mapping);
                keys.into_iter()
                    .map(|(mut k, asc)| {
                        k.remap_columns(&remap);
                        (k, asc)
                    })
                    .collect()
            };
            (
                LogicalPlan::Sort {
                    input: Box::new(new_input),
                    keys,
                },
                mapping,
            )
        }
        LogicalPlan::Limit { input, n } => {
            let (new_input, mapping) = prune(*input, &req);
            (
                LogicalPlan::Limit {
                    input: Box::new(new_input),
                    n,
                },
                mapping,
            )
        }
        LogicalPlan::Window {
            input,
            order,
            schema,
        } => {
            let in_width = schema.len() - 1;
            let mut need: Vec<usize> = req.iter().filter(|&&i| i < in_width).copied().collect();
            // The window column itself requires nothing extra; order keys do.
            for (k, _) in &order {
                need.extend(cols_of(k));
            }
            // Window appends a column, so the input must keep everything the
            // parent wants below the appended index.
            let (new_input, mapping) = prune(*input, &need);
            let remap = to_remap(&mapping);
            let order = order
                .into_iter()
                .map(|(mut k, asc)| {
                    k.remap_columns(&remap);
                    (k, asc)
                })
                .collect();
            let new_in_schema = new_input.schema().clone();
            let mut fields = new_in_schema.fields.clone();
            fields.push(schema.fields[in_width].clone());
            let mut out_map = mapping.clone();
            out_map.push((in_width, fields.len() - 1));
            (
                LogicalPlan::Window {
                    input: Box::new(new_input),
                    order,
                    schema: Schema::new(fields),
                },
                out_map,
            )
        }
        LogicalPlan::Distinct { input } => {
            // Distinct semantics depend on every column: prune nothing.
            let all: Vec<usize> = (0..input.schema().len()).collect();
            let (new_input, mapping) = prune(*input, &all);
            (
                LogicalPlan::Distinct {
                    input: Box::new(new_input),
                },
                mapping,
            )
        }
    }
}

fn to_remap(mapping: &[(usize, usize)]) -> impl Fn(usize) -> usize + '_ {
    move |old| {
        mapping
            .iter()
            .find(|(o, _)| *o == old)
            .map(|(_, n)| *n)
            .unwrap_or(old)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::table::{Field, Schema};
    use pytond_common::{DType, Value};

    fn scan(cols: usize) -> LogicalPlan {
        LogicalPlan::Scan {
            table: "t".into(),
            schema: Schema::new(
                (0..cols)
                    .map(|i| Field::new(format!("c{i}"), DType::Int))
                    .collect(),
            ),
            projection: None,
        }
    }

    fn col_eq_lit(i: usize, v: i64) -> BExpr {
        BExpr::Bin {
            op: BinOp::Eq,
            l: Box::new(BExpr::Col(i)),
            r: Box::new(BExpr::Lit(Value::Int(v))),
        }
    }

    #[test]
    fn filter_pushes_into_join_sides() {
        let join = LogicalPlan::Join {
            left: Box::new(scan(2)),
            right: Box::new(scan(2)),
            kind: JKind::Inner,
            left_keys: vec![BExpr::Col(0)],
            right_keys: vec![BExpr::Col(0)],
            residual: None,
            schema: scan(2).schema().concat(scan(2).schema()),
        };
        let filtered = LogicalPlan::Filter {
            input: Box::new(join),
            pred: BExpr::Bin {
                op: BinOp::And,
                l: Box::new(col_eq_lit(1, 5)), // left side
                r: Box::new(col_eq_lit(3, 7)), // right side
            },
        };
        let out = push_filters(filtered);
        // Top node is the join now; both sides gained filters.
        match out {
            LogicalPlan::Join { left, right, .. } => {
                assert!(matches!(*left, LogicalPlan::Filter { .. }));
                assert!(matches!(*right, LogicalPlan::Filter { .. }));
            }
            other => panic!("expected join on top, got {}", other.name()),
        }
    }

    #[test]
    fn cross_join_promoted_to_inner() {
        let join = LogicalPlan::Join {
            left: Box::new(scan(1)),
            right: Box::new(scan(1)),
            kind: JKind::Cross,
            left_keys: vec![],
            right_keys: vec![],
            residual: None,
            schema: scan(1).schema().concat(scan(1).schema()),
        };
        let filtered = LogicalPlan::Filter {
            input: Box::new(join),
            pred: BExpr::Bin {
                op: BinOp::Eq,
                l: Box::new(BExpr::Col(0)),
                r: Box::new(BExpr::Col(1)),
            },
        };
        match push_filters(filtered) {
            LogicalPlan::Join {
                kind, left_keys, ..
            } => {
                assert_eq!(kind, JKind::Inner);
                assert_eq!(left_keys.len(), 1);
            }
            other => panic!("expected join, got {}", other.name()),
        }
    }

    #[test]
    fn prune_narrows_scan() {
        let project = LogicalPlan::Project {
            input: Box::new(scan(10)),
            exprs: vec![BExpr::Col(7), BExpr::Col(2)],
            schema: Schema::new(vec![
                Field::new("a", DType::Int),
                Field::new("b", DType::Int),
            ]),
        };
        let out = optimize(project);
        fn find_scan(p: &LogicalPlan) -> Option<&LogicalPlan> {
            if matches!(p, LogicalPlan::Scan { .. }) {
                return Some(p);
            }
            p.children().into_iter().find_map(find_scan)
        }
        match find_scan(&out).unwrap() {
            LogicalPlan::Scan { projection, .. } => {
                assert_eq!(projection.as_deref(), Some(&[2usize, 7][..]));
            }
            _ => unreachable!(),
        }
    }

    #[test]
    fn filter_not_pushed_through_limit() {
        let limited = LogicalPlan::Limit {
            input: Box::new(scan(2)),
            n: 5,
        };
        let filtered = LogicalPlan::Filter {
            input: Box::new(limited),
            pred: col_eq_lit(0, 1),
        };
        match push_filters(filtered) {
            LogicalPlan::Filter { input, .. } => {
                assert!(matches!(*input, LogicalPlan::Limit { .. }));
            }
            other => panic!("expected filter above limit, got {}", other.name()),
        }
    }
}
