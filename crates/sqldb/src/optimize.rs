//! Logical-plan rewrites: filter pushdown, cross→inner join promotion,
//! scan-predicate sinking, statistics-driven join ordering, and projection
//! (scan-column) pruning.
//!
//! The statistics-aware passes consume a [`StatsCatalog`] snapshot of the
//! database's [`crate::stats::TableStats`]: [`estimate`] predicts operator
//! cardinalities from row counts, null fractions, min/max bounds and
//! distinct-count estimates, and [`reorder_joins`] uses those predictions to
//! greedily re-order contiguous inner/cross-join regions (outer joins,
//! semi/anti joins and every other operator are barriers the rewrite never
//! crosses). A region is only rebuilt when the estimated cost — sum of hash
//! build sizes and intermediate cardinalities — strictly improves, so plans
//! without useful statistics keep their original shape.

use crate::ast::BinOp;
use crate::expr::BExpr;
use crate::plan::{JKind, LogicalPlan};
use crate::stats::TableStats;
use crate::table::Schema;
use pytond_common::hash::FxHashMap;
use pytond_common::Value;

/// Runs all rewrite passes without statistics (tests / standalone use).
pub fn optimize(plan: LogicalPlan) -> LogicalPlan {
    optimize_with(plan, &StatsCatalog::empty())
}

/// Runs all rewrite passes with a statistics catalog: filter pushdown,
/// scan-predicate sinking, cost-based join ordering, projection pruning.
pub fn optimize_with(plan: LogicalPlan, ctx: &StatsCatalog<'_>) -> LogicalPlan {
    let plan = push_filters(plan);
    let plan = sink_scan_filters(plan);
    let plan = reorder_joins(plan, ctx);
    let all: Vec<usize> = (0..plan.schema().len()).collect();
    let (plan, _map) = prune(plan, &all);
    plan
}

// ---------------- filter pushdown ----------------

fn split_and(e: BExpr, out: &mut Vec<BExpr>) {
    match e {
        BExpr::Bin {
            op: BinOp::And,
            l,
            r,
        } => {
            split_and(*l, out);
            split_and(*r, out);
        }
        other => out.push(other),
    }
}

fn conjoin(mut conjs: Vec<BExpr>) -> Option<BExpr> {
    let mut acc = conjs.pop()?;
    while let Some(c) = conjs.pop() {
        acc = BExpr::Bin {
            op: BinOp::And,
            l: Box::new(c),
            r: Box::new(acc),
        };
    }
    Some(acc)
}

fn cols_of(e: &BExpr) -> Vec<usize> {
    let mut v = Vec::new();
    e.columns_used(&mut v);
    v
}

/// Pushes filter conjuncts toward the scans.
pub fn push_filters(plan: LogicalPlan) -> LogicalPlan {
    match plan {
        LogicalPlan::Filter { input, pred } => {
            let mut conjs = Vec::new();
            split_and(pred, &mut conjs);
            push_conjuncts(*input, conjs)
        }
        LogicalPlan::Project {
            input,
            exprs,
            schema,
        } => LogicalPlan::Project {
            input: Box::new(push_filters(*input)),
            exprs,
            schema,
        },
        LogicalPlan::Join {
            left,
            right,
            kind,
            left_keys,
            right_keys,
            residual,
            schema,
        } => LogicalPlan::Join {
            left: Box::new(push_filters(*left)),
            right: Box::new(push_filters(*right)),
            kind,
            left_keys,
            right_keys,
            residual,
            schema,
        },
        LogicalPlan::Aggregate {
            input,
            group,
            aggs,
            schema,
        } => LogicalPlan::Aggregate {
            input: Box::new(push_filters(*input)),
            group,
            aggs,
            schema,
        },
        LogicalPlan::Sort { input, keys } => LogicalPlan::Sort {
            input: Box::new(push_filters(*input)),
            keys,
        },
        LogicalPlan::Limit { input, n } => LogicalPlan::Limit {
            input: Box::new(push_filters(*input)),
            n,
        },
        LogicalPlan::Window {
            input,
            order,
            schema,
        } => LogicalPlan::Window {
            input: Box::new(push_filters(*input)),
            order,
            schema,
        },
        LogicalPlan::Distinct { input } => LogicalPlan::Distinct {
            input: Box::new(push_filters(*input)),
        },
        leaf => leaf,
    }
}

/// Pushes a set of conjuncts into `plan`, keeping the un-pushable ones in a
/// Filter directly above it.
fn push_conjuncts(plan: LogicalPlan, conjs: Vec<BExpr>) -> LogicalPlan {
    match plan {
        LogicalPlan::Filter { input, pred } => {
            let mut all = conjs;
            split_and(pred, &mut all);
            push_conjuncts(*input, all)
        }
        LogicalPlan::Project {
            input,
            exprs,
            schema,
        } => {
            // Substitute projection expressions into each conjunct and push.
            let mut pushed = Vec::new();
            for mut c in conjs {
                substitute_cols(&mut c, &exprs);
                pushed.push(c);
            }
            LogicalPlan::Project {
                input: Box::new(push_conjuncts(*input, pushed)),
                exprs,
                schema,
            }
        }
        LogicalPlan::Join {
            left,
            right,
            kind,
            mut left_keys,
            mut right_keys,
            residual,
            schema,
        } => {
            let lw = left.schema().len();
            let mut left_conjs = Vec::new();
            let mut right_conjs = Vec::new();
            let mut keep = Vec::new();
            let left_pushable = matches!(
                kind,
                JKind::Inner | JKind::Cross | JKind::Semi | JKind::Anti | JKind::Left
            );
            let right_pushable = matches!(kind, JKind::Inner | JKind::Cross);
            for c in conjs {
                let cols = cols_of(&c);
                let all_left = cols.iter().all(|&i| i < lw);
                let all_right = cols.iter().all(|&i| i >= lw);
                if all_left && left_pushable && !cols.is_empty() {
                    left_conjs.push(c);
                } else if all_right && right_pushable && !cols.is_empty() {
                    let mut c = c;
                    c.remap_columns(&|i| i - lw);
                    right_conjs.push(c);
                } else if matches!(kind, JKind::Inner | JKind::Cross) {
                    // Equi-predicate across sides → promote to join key.
                    if let BExpr::Bin {
                        op: BinOp::Eq,
                        l,
                        r,
                    } = &c
                    {
                        let lc = cols_of(l);
                        let rc = cols_of(r);
                        let l_is_left = !lc.is_empty() && lc.iter().all(|&i| i < lw);
                        let r_is_right = !rc.is_empty() && rc.iter().all(|&i| i >= lw);
                        let l_is_right = !lc.is_empty() && lc.iter().all(|&i| i >= lw);
                        let r_is_left = !rc.is_empty() && rc.iter().all(|&i| i < lw);
                        if l_is_left && r_is_right {
                            let mut rk = (**r).clone();
                            rk.remap_columns(&|i| i - lw);
                            left_keys.push((**l).clone());
                            right_keys.push(rk);
                            continue;
                        }
                        if l_is_right && r_is_left {
                            let mut lk = (**l).clone();
                            lk.remap_columns(&|i| i - lw);
                            left_keys.push((**r).clone());
                            right_keys.push(lk);
                            continue;
                        }
                    }
                    keep.push(c);
                } else {
                    keep.push(c);
                }
            }
            let kind = if kind == JKind::Cross && !left_keys.is_empty() {
                JKind::Inner
            } else {
                kind
            };
            let new_join = LogicalPlan::Join {
                left: Box::new(push_conjuncts_opt(*left, left_conjs)),
                right: Box::new(push_conjuncts_opt(*right, right_conjs)),
                kind,
                left_keys,
                right_keys,
                residual,
                schema,
            };
            wrap_filter(new_join, keep)
        }
        LogicalPlan::Sort { input, keys } => LogicalPlan::Sort {
            input: Box::new(push_conjuncts(*input, conjs)),
            keys,
        },
        LogicalPlan::Limit { .. } => {
            // Cannot push through LIMIT (changes which rows survive).
            let inner = push_filters(plan);
            wrap_filter(inner, conjs)
        }
        LogicalPlan::Distinct { input } => LogicalPlan::Distinct {
            input: Box::new(push_conjuncts(*input, conjs)),
        },
        other => {
            let inner = push_filters(other);
            wrap_filter(inner, conjs)
        }
    }
}

fn push_conjuncts_opt(plan: LogicalPlan, conjs: Vec<BExpr>) -> LogicalPlan {
    if conjs.is_empty() {
        push_filters(plan)
    } else {
        push_conjuncts(plan, conjs)
    }
}

fn wrap_filter(plan: LogicalPlan, conjs: Vec<BExpr>) -> LogicalPlan {
    match conjoin(conjs) {
        Some(pred) => LogicalPlan::Filter {
            input: Box::new(plan),
            pred,
        },
        None => plan,
    }
}

/// Replaces `Col(i)` with `exprs[i]` (pushdown through projections).
fn substitute_cols(e: &mut BExpr, exprs: &[BExpr]) {
    match e {
        BExpr::Col(i) => *e = exprs[*i].clone(),
        BExpr::Lit(_) => {}
        BExpr::Bin { l, r, .. } => {
            substitute_cols(l, exprs);
            substitute_cols(r, exprs);
        }
        BExpr::Not(x) | BExpr::Neg(x) => substitute_cols(x, exprs),
        BExpr::IsNull { e: x, .. } | BExpr::Like { e: x, .. } | BExpr::InList { e: x, .. } => {
            substitute_cols(x, exprs)
        }
        BExpr::Case { arms, else_value } => {
            for (c, v) in arms {
                substitute_cols(c, exprs);
                substitute_cols(v, exprs);
            }
            if let Some(x) = else_value {
                substitute_cols(x, exprs);
            }
        }
        BExpr::Func { args, .. } => args.iter_mut().for_each(|a| substitute_cols(a, exprs)),
        BExpr::Cast { e: x, .. } => substitute_cols(x, exprs),
    }
}

// ---------------- projection pruning ----------------

/// Rewrites `plan` to produce only the columns in `required` (in ascending
/// old-index order). Returns the new plan and the mapping old→new index.
fn prune(plan: LogicalPlan, required: &[usize]) -> (LogicalPlan, Vec<(usize, usize)>) {
    let mut req: Vec<usize> = required.to_vec();
    req.sort_unstable();
    req.dedup();
    // A leaf pruned to zero columns would lose its row count (batches carry
    // no explicit length), silently emptying `COUNT(*)`-style aggregates:
    // keep one column.
    if req.is_empty()
        && matches!(plan, LogicalPlan::Scan { .. } | LogicalPlan::Values { .. })
        && !plan.schema().is_empty()
    {
        req.push(0);
    }
    match plan {
        LogicalPlan::Scan {
            table,
            schema,
            projection,
            pred,
        } => {
            let base: Vec<usize> = match &projection {
                Some(p) => p.clone(),
                None => (0..schema.len()).collect(),
            };
            let kept: Vec<usize> = req.iter().map(|&i| base[i]).collect();
            let fields = req.iter().map(|&i| schema.fields[i].clone()).collect();
            let mapping = req
                .iter()
                .enumerate()
                .map(|(new, &old)| (old, new))
                .collect();
            (
                LogicalPlan::Scan {
                    table,
                    schema: Schema::new(fields),
                    projection: Some(kept),
                    // The scan predicate addresses the stored table directly,
                    // so projection pruning never touches it.
                    pred,
                },
                mapping,
            )
        }
        LogicalPlan::Values { schema, rows } => {
            let fields = req.iter().map(|&i| schema.fields[i].clone()).collect();
            let rows = rows
                .into_iter()
                .map(|r| req.iter().map(|&i| r[i].clone()).collect())
                .collect();
            let mapping = req
                .iter()
                .enumerate()
                .map(|(new, &old)| (old, new))
                .collect();
            (
                LogicalPlan::Values {
                    schema: Schema::new(fields),
                    rows,
                },
                mapping,
            )
        }
        LogicalPlan::Filter { input, mut pred } => {
            let mut need = req.clone();
            need.extend(cols_of(&pred));
            let (new_input, mapping) = prune(*input, &need);
            {
                let remap = to_remap(&mapping);
                pred.remap_columns(&remap);
            }
            // Output schema is the input schema; caller's required indices map
            // through `mapping` — but the Filter output now has the pruned
            // width, so expose the full mapping.
            (
                LogicalPlan::Filter {
                    input: Box::new(new_input),
                    pred,
                },
                mapping,
            )
        }
        LogicalPlan::Project {
            input,
            exprs,
            schema,
        } => {
            let kept_exprs: Vec<BExpr> = req.iter().map(|&i| exprs[i].clone()).collect();
            let kept_fields = req.iter().map(|&i| schema.fields[i].clone()).collect();
            let mut need = Vec::new();
            for e in &kept_exprs {
                need.extend(cols_of(e));
            }
            let (new_input, mapping) = prune(*input, &need);
            let remap = to_remap(&mapping);
            let kept_exprs = kept_exprs
                .into_iter()
                .map(|mut e| {
                    e.remap_columns(&remap);
                    e
                })
                .collect();
            let out_map = req
                .iter()
                .enumerate()
                .map(|(new, &old)| (old, new))
                .collect();
            (
                LogicalPlan::Project {
                    input: Box::new(new_input),
                    exprs: kept_exprs,
                    schema: Schema::new(kept_fields),
                },
                out_map,
            )
        }
        LogicalPlan::Join {
            left,
            right,
            kind,
            left_keys,
            right_keys,
            residual,
            schema,
        } => {
            let lw = left.schema().len();
            let semi = matches!(kind, JKind::Semi | JKind::Anti);
            let mut lneed: Vec<usize> = Vec::new();
            let mut rneed: Vec<usize> = Vec::new();
            for &i in &req {
                if i < lw {
                    lneed.push(i);
                } else {
                    rneed.push(i - lw);
                }
            }
            for k in &left_keys {
                lneed.extend(cols_of(k));
            }
            for k in &right_keys {
                rneed.extend(cols_of(k));
            }
            if let Some(res) = &residual {
                for c in cols_of(res) {
                    if c < lw {
                        lneed.push(c);
                    } else {
                        rneed.push(c - lw);
                    }
                }
            }
            let (new_left, lmap) = prune(*left, &lneed);
            let (new_right, rmap) = if semi && rneed.is_empty() && right_keys.is_empty() {
                // Keyless semi/anti join needs nothing from the right but its
                // row count; keep one column if available.
                let keep: Vec<usize> = if right.schema().is_empty() {
                    vec![]
                } else {
                    vec![0]
                };
                prune(*right, &keep)
            } else {
                prune(*right, &rneed)
            };
            let lremap = to_remap(&lmap);
            let rremap = to_remap(&rmap);
            let new_lw = new_left.schema().len();
            let left_keys = left_keys
                .into_iter()
                .map(|mut k| {
                    k.remap_columns(&lremap);
                    k
                })
                .collect();
            let right_keys = right_keys
                .into_iter()
                .map(|mut k| {
                    k.remap_columns(&rremap);
                    k
                })
                .collect();
            let residual = residual.map(|mut r| {
                r.remap_columns(&|i| {
                    if i < lw {
                        lremap(i)
                    } else {
                        new_lw + rremap(i - lw)
                    }
                });
                r
            });
            // New schema: pruned left ++ pruned right (or left only).
            let new_schema = if semi {
                new_left.schema().clone()
            } else {
                new_left.schema().concat(new_right.schema())
            };
            let _ = schema;
            let mut mapping: Vec<(usize, usize)> = Vec::new();
            for (old, new) in &lmap {
                mapping.push((*old, *new));
            }
            if !semi {
                for (old, new) in &rmap {
                    mapping.push((old + lw, new + new_lw));
                }
            }
            (
                LogicalPlan::Join {
                    left: Box::new(new_left),
                    right: Box::new(new_right),
                    kind,
                    left_keys,
                    right_keys,
                    residual,
                    schema: new_schema,
                },
                mapping,
            )
        }
        LogicalPlan::Aggregate {
            input,
            group,
            aggs,
            schema,
        } => {
            // Group keys and aggregates all stay (grouping semantics); prune
            // only the input.
            let mut need = Vec::new();
            for g in &group {
                need.extend(cols_of(g));
            }
            for a in &aggs {
                if let Some(arg) = &a.arg {
                    need.extend(cols_of(arg));
                }
            }
            let (new_input, mapping) = prune(*input, &need);
            let remap = to_remap(&mapping);
            let group = group
                .into_iter()
                .map(|mut g| {
                    g.remap_columns(&remap);
                    g
                })
                .collect();
            let aggs = aggs
                .into_iter()
                .map(|mut a| {
                    if let Some(arg) = &mut a.arg {
                        arg.remap_columns(&remap);
                    }
                    a
                })
                .collect();
            let identity = (0..schema.len()).map(|i| (i, i)).collect();
            (
                LogicalPlan::Aggregate {
                    input: Box::new(new_input),
                    group,
                    aggs,
                    schema,
                },
                identity,
            )
        }
        LogicalPlan::Sort { input, keys } => {
            let mut need = req.clone();
            for (k, _) in &keys {
                need.extend(cols_of(k));
            }
            let (new_input, mapping) = prune(*input, &need);
            let keys = {
                let remap = to_remap(&mapping);
                keys.into_iter()
                    .map(|(mut k, asc)| {
                        k.remap_columns(&remap);
                        (k, asc)
                    })
                    .collect()
            };
            (
                LogicalPlan::Sort {
                    input: Box::new(new_input),
                    keys,
                },
                mapping,
            )
        }
        LogicalPlan::Limit { input, n } => {
            let (new_input, mapping) = prune(*input, &req);
            (
                LogicalPlan::Limit {
                    input: Box::new(new_input),
                    n,
                },
                mapping,
            )
        }
        LogicalPlan::Window {
            input,
            order,
            schema,
        } => {
            let in_width = schema.len() - 1;
            let mut need: Vec<usize> = req.iter().filter(|&&i| i < in_width).copied().collect();
            // The window column itself requires nothing extra; order keys do.
            for (k, _) in &order {
                need.extend(cols_of(k));
            }
            // Window appends a column, so the input must keep everything the
            // parent wants below the appended index.
            let (new_input, mapping) = prune(*input, &need);
            let remap = to_remap(&mapping);
            let order = order
                .into_iter()
                .map(|(mut k, asc)| {
                    k.remap_columns(&remap);
                    (k, asc)
                })
                .collect();
            let new_in_schema = new_input.schema().clone();
            let mut fields = new_in_schema.fields.clone();
            fields.push(schema.fields[in_width].clone());
            let mut out_map = mapping.clone();
            out_map.push((in_width, fields.len() - 1));
            (
                LogicalPlan::Window {
                    input: Box::new(new_input),
                    order,
                    schema: Schema::new(fields),
                },
                out_map,
            )
        }
        LogicalPlan::Distinct { input } => {
            // Distinct semantics depend on every column: prune nothing.
            let all: Vec<usize> = (0..input.schema().len()).collect();
            let (new_input, mapping) = prune(*input, &all);
            (
                LogicalPlan::Distinct {
                    input: Box::new(new_input),
                },
                mapping,
            )
        }
    }
}

fn to_remap(mapping: &[(usize, usize)]) -> impl Fn(usize) -> usize + '_ {
    move |old| {
        mapping
            .iter()
            .find(|(o, _)| *o == old)
            .map(|(_, n)| *n)
            .unwrap_or(old)
    }
}

// ---------------- scan-predicate sinking ----------------

/// Folds `Filter(Scan)` into the scan node itself, rewriting the predicate
/// into the stored table's column space. The executor can then consult zone
/// maps before materializing anything.
pub fn sink_scan_filters(plan: LogicalPlan) -> LogicalPlan {
    map_inputs(plan, &|p| match p {
        LogicalPlan::Filter { input, pred } => match *input {
            LogicalPlan::Scan {
                table,
                schema,
                projection,
                pred: existing,
            } => {
                let mut stored_pred = pred;
                if let Some(proj) = &projection {
                    stored_pred.remap_columns(&|i| proj[i]);
                }
                let pred = Some(match existing {
                    Some(old) => BExpr::Bin {
                        op: BinOp::And,
                        l: Box::new(old),
                        r: Box::new(stored_pred),
                    },
                    None => stored_pred,
                });
                LogicalPlan::Scan {
                    table,
                    schema,
                    projection,
                    pred,
                }
            }
            other => LogicalPlan::Filter {
                input: Box::new(other),
                pred,
            },
        },
        other => other,
    })
}

/// Rebuilds `plan` with `f` applied bottom-up to every node.
fn map_inputs(plan: LogicalPlan, f: &impl Fn(LogicalPlan) -> LogicalPlan) -> LogicalPlan {
    let mapped = match plan {
        LogicalPlan::Filter { input, pred } => LogicalPlan::Filter {
            input: Box::new(map_inputs(*input, f)),
            pred,
        },
        LogicalPlan::Project {
            input,
            exprs,
            schema,
        } => LogicalPlan::Project {
            input: Box::new(map_inputs(*input, f)),
            exprs,
            schema,
        },
        LogicalPlan::Join {
            left,
            right,
            kind,
            left_keys,
            right_keys,
            residual,
            schema,
        } => LogicalPlan::Join {
            left: Box::new(map_inputs(*left, f)),
            right: Box::new(map_inputs(*right, f)),
            kind,
            left_keys,
            right_keys,
            residual,
            schema,
        },
        LogicalPlan::Aggregate {
            input,
            group,
            aggs,
            schema,
        } => LogicalPlan::Aggregate {
            input: Box::new(map_inputs(*input, f)),
            group,
            aggs,
            schema,
        },
        LogicalPlan::Sort { input, keys } => LogicalPlan::Sort {
            input: Box::new(map_inputs(*input, f)),
            keys,
        },
        LogicalPlan::Limit { input, n } => LogicalPlan::Limit {
            input: Box::new(map_inputs(*input, f)),
            n,
        },
        LogicalPlan::Window {
            input,
            order,
            schema,
        } => LogicalPlan::Window {
            input: Box::new(map_inputs(*input, f)),
            order,
            schema,
        },
        LogicalPlan::Distinct { input } => LogicalPlan::Distinct {
            input: Box::new(map_inputs(*input, f)),
        },
        leaf => leaf,
    };
    f(mapped)
}

// ---------------- statistics catalog & cardinality estimation ----------------

/// Assumed row count for tables without statistics (CTE temps and the like).
const DEFAULT_ROWS: f64 = 1000.0;
/// Default selectivity of an equality predicate without statistics.
const SEL_EQ: f64 = 0.1;
/// Default selectivity of a range predicate without statistics.
const SEL_RANGE: f64 = 0.3;
/// Default selectivity of any other predicate shape.
const SEL_OTHER: f64 = 0.25;
/// Cardinality shrink factor of a GROUP BY without key statistics.
const SEL_GROUP: f64 = 0.2;

/// A snapshot of per-table statistics the optimizer plans against: base
/// tables carry full [`TableStats`]; CTE results are registered with their
/// estimated row counts as each CTE plan is optimized.
#[derive(Debug, Default)]
pub struct StatsCatalog<'a> {
    tables: FxHashMap<String, (f64, Option<&'a TableStats>)>,
}

impl<'a> StatsCatalog<'a> {
    /// A catalog with no information (every lookup uses defaults).
    pub fn empty() -> StatsCatalog<'static> {
        StatsCatalog::default()
    }

    /// Registers a base table's statistics.
    pub fn add_table(&mut self, name: &str, stats: &'a TableStats) {
        self.tables
            .insert(name.to_lowercase(), (stats.row_count as f64, Some(stats)));
    }

    /// Registers (or overrides) a bare row-count estimate, e.g. for a CTE
    /// whose plan was just optimized.
    pub fn set_rows(&mut self, name: &str, rows: f64) {
        self.tables
            .insert(name.to_lowercase(), (rows.max(0.0), None));
    }

    fn lookup(&self, name: &str) -> (f64, Option<&'a TableStats>) {
        self.tables
            .get(&name.to_lowercase())
            .copied()
            .unwrap_or((DEFAULT_ROWS, None))
    }
}

/// Estimated output cardinality of a plan node.
pub fn estimate(plan: &LogicalPlan, ctx: &StatsCatalog<'_>) -> f64 {
    match plan {
        LogicalPlan::Scan { table, pred, .. } => {
            let (rows, stats) = ctx.lookup(table);
            match pred {
                Some(p) => (rows * selectivity(p, stats)).max(1.0).min(rows.max(1.0)),
                None => rows,
            }
        }
        LogicalPlan::Values { rows, .. } => rows.len() as f64,
        LogicalPlan::Filter { input, pred } => {
            (estimate(input, ctx) * selectivity(pred, None)).max(1.0)
        }
        LogicalPlan::Project { input, .. }
        | LogicalPlan::Sort { input, .. }
        | LogicalPlan::Window { input, .. } => estimate(input, ctx),
        LogicalPlan::Limit { input, n } => estimate(input, ctx).min(*n as f64),
        LogicalPlan::Distinct { input } => (estimate(input, ctx) * 0.5).max(1.0),
        LogicalPlan::Aggregate { input, group, .. } => {
            if group.is_empty() {
                1.0
            } else {
                (estimate(input, ctx) * SEL_GROUP).max(1.0)
            }
        }
        LogicalPlan::Join {
            left,
            right,
            kind,
            left_keys,
            right_keys,
            ..
        } => {
            let l = estimate(left, ctx);
            let r = estimate(right, ctx);
            // Key-domain size: the largest NDV among key pairs whose columns
            // trace back to a base-table scan.
            let divisor = left_keys
                .iter()
                .zip(right_keys)
                .filter_map(|(lk, rk)| {
                    let dl = expr_ndv(left, lk, ctx);
                    let dr = expr_ndv(right, rk, ctx);
                    match (dl, dr) {
                        (Some(a), Some(b)) => Some(a.max(b)),
                        (one, other) => one.or(other),
                    }
                })
                .fold(None::<f64>, |acc, d| Some(acc.map_or(d, |a| a.max(d))));
            join_estimate(*kind, !left_keys.is_empty(), l, r, divisor)
        }
    }
}

/// Textbook join-cardinality estimate `|L|·|R| / V(key)`: `divisor` is the
/// key domain size (max NDV across key pairs) when statistics could resolve
/// it; otherwise the larger input stands in for the domain (the "key side
/// covers the domain" assumption).
fn join_estimate(kind: JKind, has_keys: bool, l: f64, r: f64, divisor: Option<f64>) -> f64 {
    let inner = if has_keys {
        let d = divisor.unwrap_or_else(|| l.max(r)).max(1.0);
        // Lower bound before upper: an empty input makes l*r = 0, and
        // f64::clamp(1.0, 0.0) would panic on the inverted range.
        (l * r / d).max(1.0).min((l * r).max(1.0))
    } else {
        (l * r).max(1.0)
    };
    match kind {
        JKind::Inner | JKind::Cross => inner,
        JKind::Left => inner.max(l),
        JKind::Right => inner.max(r),
        JKind::Full => inner.max(l).max(r),
        JKind::Semi | JKind::Anti => (l * 0.5).max(1.0),
    }
}

/// Distinct-count estimate of a bare-column key expression, traced through
/// filters, projections and joins down to a base-table scan. `None` when the
/// column's provenance leaves the statistics' reach. Pushed-down filters do
/// not scale the NDV (domain preservation: join keys keep their domain).
fn expr_ndv(plan: &LogicalPlan, key: &BExpr, ctx: &StatsCatalog<'_>) -> Option<f64> {
    match key {
        BExpr::Col(i) => col_ndv(plan, *i, ctx),
        _ => None,
    }
}

fn col_ndv(plan: &LogicalPlan, i: usize, ctx: &StatsCatalog<'_>) -> Option<f64> {
    match plan {
        LogicalPlan::Scan {
            table, projection, ..
        } => {
            let (_, stats) = ctx.lookup(table);
            let stored = projection.as_ref().map_or(i, |p| p[i]);
            Some(stats?.columns.get(stored)?.distinct_estimate())
        }
        LogicalPlan::Filter { input, .. }
        | LogicalPlan::Sort { input, .. }
        | LogicalPlan::Limit { input, .. }
        | LogicalPlan::Distinct { input } => col_ndv(input, i, ctx),
        LogicalPlan::Project { input, exprs, .. } => match exprs.get(i)? {
            BExpr::Col(j) => col_ndv(input, *j, ctx),
            _ => None,
        },
        LogicalPlan::Join { left, right, .. } => {
            let lw = left.schema().len();
            if i < lw {
                col_ndv(left, i, ctx)
            } else {
                col_ndv(right, i - lw, ctx)
            }
        }
        _ => None,
    }
}

/// Estimated fraction of rows satisfying `pred`.
///
/// With `stats` (scan predicates, where column indices address the stored
/// table) equality uses `1/NDV`, ranges interpolate into the `[min, max]`
/// span, and NULL tests use the null fraction; without stats each shape falls
/// back to a fixed default.
pub fn selectivity(pred: &BExpr, stats: Option<&TableStats>) -> f64 {
    let s = match pred {
        BExpr::Lit(Value::Bool(b)) => {
            if *b {
                1.0
            } else {
                0.0
            }
        }
        BExpr::Bin {
            op: BinOp::And,
            l,
            r,
        } => selectivity(l, stats) * selectivity(r, stats),
        BExpr::Bin {
            op: BinOp::Or,
            l,
            r,
        } => selectivity(l, stats) + selectivity(r, stats),
        BExpr::Not(e) => 1.0 - selectivity(e, stats),
        BExpr::Bin { op, l, r } => match (col_of(l), lit_of(r), col_of(r), lit_of(l)) {
            (Some(c), Some(v), _, _) => cmp_selectivity(*op, c, v, stats),
            (_, _, Some(c), Some(v)) => cmp_selectivity(mirror(*op), c, v, stats),
            _ => match op {
                BinOp::Eq => SEL_EQ,
                BinOp::Ne => 1.0 - SEL_EQ,
                BinOp::Lt | BinOp::Le | BinOp::Gt | BinOp::Ge => SEL_RANGE,
                _ => SEL_OTHER,
            },
        },
        BExpr::InList { e, list, negated } => {
            let eq = col_of(e)
                .map(|c| eq_selectivity(c, stats))
                .unwrap_or(SEL_EQ);
            let s = eq * list.len() as f64;
            if *negated {
                1.0 - s
            } else {
                s
            }
        }
        BExpr::IsNull { e, negated } => {
            let frac = match (col_of(e), stats) {
                (Some(c), Some(st)) if c < st.columns.len() && st.row_count > 0 => {
                    st.columns[c].null_count as f64 / st.row_count as f64
                }
                _ => 0.05,
            };
            if *negated {
                1.0 - frac
            } else {
                frac
            }
        }
        BExpr::Like { negated, .. } => {
            if *negated {
                0.75
            } else {
                0.25
            }
        }
        _ => SEL_OTHER,
    };
    s.clamp(0.0, 1.0)
}

fn col_of(e: &BExpr) -> Option<usize> {
    match e {
        BExpr::Col(i) => Some(*i),
        _ => None,
    }
}

fn lit_of(e: &BExpr) -> Option<&Value> {
    match e {
        BExpr::Lit(v) if !v.is_null() => Some(v),
        _ => None,
    }
}

fn mirror(op: BinOp) -> BinOp {
    match op {
        BinOp::Lt => BinOp::Gt,
        BinOp::Le => BinOp::Ge,
        BinOp::Gt => BinOp::Lt,
        BinOp::Ge => BinOp::Le,
        other => other,
    }
}

fn eq_selectivity(col: usize, stats: Option<&TableStats>) -> f64 {
    match stats {
        Some(st) if col < st.columns.len() => 1.0 / st.columns[col].distinct_estimate(),
        _ => SEL_EQ,
    }
}

fn cmp_selectivity(op: BinOp, col: usize, lit: &Value, stats: Option<&TableStats>) -> f64 {
    match op {
        BinOp::Eq => eq_selectivity(col, stats),
        BinOp::Ne => 1.0 - eq_selectivity(col, stats),
        BinOp::Lt | BinOp::Le | BinOp::Gt | BinOp::Ge => {
            let Some(st) = stats else { return SEL_RANGE };
            let Some(cs) = st.columns.get(col) else {
                return SEL_RANGE;
            };
            let (Some(min), Some(max), Some(v)) = (cs.min.as_f64(), cs.max.as_f64(), lit.as_f64())
            else {
                return SEL_RANGE;
            };
            if max <= min {
                return SEL_RANGE;
            }
            let frac = ((v - min) / (max - min)).clamp(0.0, 1.0);
            match op {
                BinOp::Lt | BinOp::Le => frac,
                _ => 1.0 - frac,
            }
        }
        _ => SEL_OTHER,
    }
}

// ---------------- cost-based join ordering ----------------

/// Largest join region the reorderer flattens (inputs are tracked in a
/// 64-bit set; regions beyond this are left untouched).
const MAX_REGION_INPUTS: usize = 32;
/// A rewritten region must be at least this much cheaper to be kept.
const COST_IMPROVEMENT: f64 = 0.99;

/// Greedy cost-based join-order rewrite.
///
/// Contiguous regions of inner/cross joins (and the filters between them)
/// are flattened into base inputs plus equi-join edges, then rebuilt
/// left-deep: start from the cheapest connected pair, then repeatedly attach
/// the input that minimizes estimated build + output cost. Outer joins,
/// semi/anti joins, aggregates — anything that is not an inner/cross join —
/// are barriers: they become atomic region inputs and their subtrees are
/// reordered independently. The rewrite keeps the original plan unless the
/// new order's estimated cost strictly improves, and re-establishes the
/// original output column order with a closing projection.
pub fn reorder_joins(plan: LogicalPlan, ctx: &StatsCatalog<'_>) -> LogicalPlan {
    match plan {
        LogicalPlan::Join {
            kind: JKind::Inner | JKind::Cross,
            ..
        } if region_size(&plan) <= MAX_REGION_INPUTS => reorder_region(plan, ctx),
        other => map_children_reorder(other, ctx),
    }
}

/// Number of base inputs an inner/cross-join region would flatten into.
/// Oversized regions (beyond the input bitmask) are skipped whole; their
/// nested sub-regions still get visited through the generic recursion.
fn region_size(plan: &LogicalPlan) -> usize {
    match plan {
        LogicalPlan::Join {
            left,
            right,
            kind: JKind::Inner | JKind::Cross,
            ..
        } => region_size(left) + region_size(right),
        LogicalPlan::Filter { input, .. }
            if matches!(
                **input,
                LogicalPlan::Join {
                    kind: JKind::Inner | JKind::Cross,
                    ..
                }
            ) =>
        {
            region_size(input)
        }
        _ => 1,
    }
}

fn map_children_reorder(plan: LogicalPlan, ctx: &StatsCatalog<'_>) -> LogicalPlan {
    map_inputs_shallow(plan, &|c| reorder_joins(c, ctx))
}

/// Applies `f` to the direct children only (not bottom-up like
/// [`map_inputs`]) — region detection must run top-down so a nested join
/// region is flattened from its topmost node.
fn map_inputs_shallow(plan: LogicalPlan, f: &impl Fn(LogicalPlan) -> LogicalPlan) -> LogicalPlan {
    match plan {
        LogicalPlan::Filter { input, pred } => LogicalPlan::Filter {
            input: Box::new(f(*input)),
            pred,
        },
        LogicalPlan::Project {
            input,
            exprs,
            schema,
        } => LogicalPlan::Project {
            input: Box::new(f(*input)),
            exprs,
            schema,
        },
        LogicalPlan::Join {
            left,
            right,
            kind,
            left_keys,
            right_keys,
            residual,
            schema,
        } => LogicalPlan::Join {
            left: Box::new(f(*left)),
            right: Box::new(f(*right)),
            kind,
            left_keys,
            right_keys,
            residual,
            schema,
        },
        LogicalPlan::Aggregate {
            input,
            group,
            aggs,
            schema,
        } => LogicalPlan::Aggregate {
            input: Box::new(f(*input)),
            group,
            aggs,
            schema,
        },
        LogicalPlan::Sort { input, keys } => LogicalPlan::Sort {
            input: Box::new(f(*input)),
            keys,
        },
        LogicalPlan::Limit { input, n } => LogicalPlan::Limit {
            input: Box::new(f(*input)),
            n,
        },
        LogicalPlan::Window {
            input,
            order,
            schema,
        } => LogicalPlan::Window {
            input: Box::new(f(*input)),
            order,
            schema,
        },
        LogicalPlan::Distinct { input } => LogicalPlan::Distinct {
            input: Box::new(f(*input)),
        },
        leaf => leaf,
    }
}

/// One base input of a flattened join region, with its column span in the
/// region's global (original concatenation) column space.
struct RegionInput {
    base: usize,
    width: usize,
    plan: LogicalPlan,
}

/// One equi-join edge between region inputs, in global column space.
struct Edge {
    l: BExpr,
    r: BExpr,
}

/// Estimated cost of every join in a subtree: hash build (smaller side, since
/// the executor picks build/probe by actual size) plus output cardinality.
fn plan_cost(plan: &LogicalPlan, ctx: &StatsCatalog<'_>) -> f64 {
    let own = match plan {
        LogicalPlan::Join { left, right, .. } => {
            let l = estimate(left, ctx);
            let r = estimate(right, ctx);
            l.min(r) + estimate(plan, ctx)
        }
        _ => 0.0,
    };
    own + plan
        .children()
        .iter()
        .map(|c| plan_cost(c, ctx))
        .sum::<f64>()
}

fn reorder_region(plan: LogicalPlan, ctx: &StatsCatalog<'_>) -> LogicalPlan {
    let orig_schema = plan.schema().clone();
    let total = orig_schema.len();
    let orig_cost = plan_cost(&plan, ctx);
    // Keep the original tree (bushy shapes included) for the no-improvement
    // path; only its children still need the recursive rewrite then.
    let original = plan.clone();
    let mut inputs: Vec<RegionInput> = Vec::new();
    let mut edges: Vec<Edge> = Vec::new();
    let mut filters: Vec<BExpr> = Vec::new();
    flatten_region(plan, 0, &mut inputs, &mut edges, &mut filters, ctx);
    let n = inputs.len();
    let identity: Vec<usize> = (0..n).collect();
    if (2..=MAX_REGION_INPUTS).contains(&n) {
        let est: Vec<f64> = inputs.iter().map(|i| estimate(&i.plan, ctx)).collect();
        let order = greedy_order(&inputs, &edges, &est, ctx);
        if order != identity {
            let candidate = build_region(&order, &inputs, &edges, &filters, total, &orig_schema);
            if plan_cost(&candidate, ctx) < orig_cost * COST_IMPROVEMENT {
                return candidate;
            }
        }
    }
    // No strict improvement: return the original shape; sub-regions and
    // barrier subtrees are still rewritten through the child recursion.
    map_inputs_shallow(original, &|c| reorder_joins(c, ctx))
}

/// Flattens a maximal inner/cross-join region into base inputs, global-space
/// equi edges, and global-space residual filter conjuncts. Non-region nodes
/// become inputs after being reordered recursively themselves.
fn flatten_region(
    plan: LogicalPlan,
    base: usize,
    inputs: &mut Vec<RegionInput>,
    edges: &mut Vec<Edge>,
    filters: &mut Vec<BExpr>,
    ctx: &StatsCatalog<'_>,
) {
    match plan {
        LogicalPlan::Join {
            left,
            right,
            kind: JKind::Inner | JKind::Cross,
            left_keys,
            right_keys,
            residual,
            ..
        } => {
            let lw = left.schema().len();
            let rbase = base + lw;
            flatten_region(*left, base, inputs, edges, filters, ctx);
            flatten_region(*right, rbase, inputs, edges, filters, ctx);
            for (mut lk, mut rk) in left_keys.into_iter().zip(right_keys) {
                lk.remap_columns(&|i| i + base);
                rk.remap_columns(&|i| i + rbase);
                edges.push(Edge { l: lk, r: rk });
            }
            if let Some(mut res) = residual {
                res.remap_columns(&|i| i + base);
                split_and(res, filters);
            }
        }
        LogicalPlan::Filter { input, pred }
            if matches!(
                *input,
                LogicalPlan::Join {
                    kind: JKind::Inner | JKind::Cross,
                    ..
                }
            ) =>
        {
            let mut p = pred;
            p.remap_columns(&|i| i + base);
            split_and(p, filters);
            flatten_region(*input, base, inputs, edges, filters, ctx);
        }
        other => {
            let width = other.schema().len();
            inputs.push(RegionInput {
                base,
                width,
                plan: reorder_joins(other, ctx),
            });
        }
    }
}

/// Bitmask of region inputs whose span contains any of `cols`.
fn input_mask(cols: &[usize], inputs: &[RegionInput]) -> u64 {
    let mut mask = 0u64;
    for &c in cols {
        for (i, inp) in inputs.iter().enumerate() {
            if c >= inp.base && c < inp.base + inp.width {
                mask |= 1 << i;
                break;
            }
        }
    }
    mask
}

/// Greedy join order: cheapest connected pair first, then repeatedly attach
/// the input minimizing estimated build-side + output cost. Ties keep the
/// original (flatten) order so symmetric estimates never churn plans.
fn greedy_order(
    inputs: &[RegionInput],
    edges: &[Edge],
    est: &[f64],
    ctx: &StatsCatalog<'_>,
) -> Vec<usize> {
    let n = inputs.len();
    let identity: Vec<usize> = (0..n).collect();
    if edges.is_empty() {
        return identity;
    }
    let masks: Vec<(u64, u64)> = edges
        .iter()
        .map(|e| {
            (
                input_mask(&cols_of(&e.l), inputs),
                input_mask(&cols_of(&e.r), inputs),
            )
        })
        .collect();
    // Key-domain (NDV) divisor per edge, resolved against the base inputs.
    let edge_div: Vec<Option<f64>> = edges
        .iter()
        .map(|e| {
            let side = |expr: &BExpr| -> Option<f64> {
                let cols = cols_of(expr);
                let [g] = cols[..] else { return None };
                let inp = inputs
                    .iter()
                    .find(|i| g >= i.base && g < i.base + i.width)?;
                expr_ndv_local(&inp.plan, expr, g, inp.base, ctx)
            };
            match (side(&e.l), side(&e.r)) {
                (Some(a), Some(b)) => Some(a.max(b)),
                (one, other) => one.or(other),
            }
        })
        .collect();
    // Strongest (max-NDV) edge between the included set and one candidate.
    let pair_div = |inc: u64, kb: u64| -> (bool, Option<f64>) {
        let mut connected = false;
        let mut div: Option<f64> = None;
        for ((lm, rm), d) in masks.iter().zip(&edge_div) {
            let usable =
                (*lm != 0 && lm & !inc == 0 && *rm != 0 && rm & !(inc | kb) == 0 && rm & kb != 0)
                    || (*rm != 0
                        && rm & !inc == 0
                        && *lm != 0
                        && lm & !(inc | kb) == 0
                        && lm & kb != 0);
            if usable {
                connected = true;
                if let Some(d) = d {
                    div = Some(div.map_or(*d, |a: f64| a.max(*d)));
                }
            }
        }
        (connected, div)
    };
    // Completes a greedy order from a start pair, returning (order, cost):
    // each step attaches the input minimizing build-side + output estimate.
    let complete = |a: usize, b: usize| -> (Vec<usize>, f64) {
        let mut order = vec![a, b];
        let mut included: u64 = (1 << a) | (1 << b);
        let (_, start_div) = pair_div(1 << a, 1 << b);
        let mut cur_est = join_estimate(JKind::Inner, true, est[a], est[b], start_div);
        let mut total = est[a].min(est[b]) + cur_est;
        while order.len() < n {
            let mut best: Option<(f64, usize, f64)> = None; // (cost, input, out)
            for (k, &k_est) in est.iter().enumerate() {
                if included & (1 << k) != 0 {
                    continue;
                }
                let kb = 1u64 << k;
                let (connected, div) = pair_div(included, kb);
                let out = join_estimate(JKind::Inner, connected, cur_est, k_est, div);
                let cost = cur_est.min(k_est) + out;
                if best.map_or(true, |(c, bk, _)| cost < c || (cost == c && k < bk)) {
                    best = Some((cost, k, out));
                }
            }
            let (cost, k, out) = best.expect("region has >= 1 remaining input");
            order.push(k);
            included |= 1 << k;
            cur_est = out;
            total += cost;
        }
        (order, total)
    };
    // Tournament over start pairs: a locally-cheapest first join can force a
    // huge input through a wide intermediate later (the classic greedy trap),
    // so every connected two-input pair seeds a full greedy order and the
    // cheapest complete order wins. Ties keep the earliest pair.
    let mut best: Option<(f64, Vec<usize>)> = None;
    let mut seen_pairs: Vec<(usize, usize)> = Vec::new();
    for (lm, rm) in &masks {
        if lm.count_ones() == 1 && rm.count_ones() == 1 && lm != rm {
            let (a, b) = (lm.trailing_zeros() as usize, rm.trailing_zeros() as usize);
            let (a, b) = (a.min(b), a.max(b));
            if seen_pairs.contains(&(a, b)) {
                continue;
            }
            seen_pairs.push((a, b));
            let (order, cost) = complete(a, b);
            if best.as_ref().map_or(true, |(c, _)| cost < *c) {
                best = Some((cost, order));
            }
        }
    }
    best.map_or(identity, |(_, order)| order)
}

/// NDV of a global-space bare-column edge expression within one region input.
fn expr_ndv_local(
    plan: &LogicalPlan,
    expr: &BExpr,
    global: usize,
    base: usize,
    ctx: &StatsCatalog<'_>,
) -> Option<f64> {
    match expr {
        BExpr::Col(_) => col_ndv(plan, global - base, ctx),
        _ => None,
    }
}

/// Rebuilds a flattened region left-deep in `order`, wiring each equi edge
/// and residual filter at the first join where all its inputs are available,
/// and restoring the original column order with a closing projection when the
/// order changed.
fn build_region(
    order: &[usize],
    inputs: &[RegionInput],
    edges: &[Edge],
    filters: &[BExpr],
    total: usize,
    orig_schema: &Schema,
) -> LogicalPlan {
    // Global column -> position in the current concatenation.
    let mut map: Vec<usize> = vec![usize::MAX; total];
    let first = &inputs[order[0]];
    for g in 0..first.width {
        map[first.base + g] = g;
    }
    let mut cur = first.plan.clone();
    let mut included: u64 = 1 << order[0];
    let mut edge_used = vec![false; edges.len()];
    let mut filter_used = vec![false; filters.len()];
    for &k in &order[1..] {
        let cand = &inputs[k];
        let lw = cur.schema().len();
        let avail = included | (1 << k);
        let in_cand = |g: usize| g >= cand.base && g < cand.base + cand.width;
        let mut left_keys = Vec::new();
        let mut right_keys = Vec::new();
        let mut residual_conjs: Vec<BExpr> = Vec::new();
        // Remap a global-space expression into the join output (cur ++ cand).
        let joint_remap = |e: &BExpr| {
            let mut e = e.clone();
            e.remap_columns(&|g| {
                if in_cand(g) {
                    lw + (g - cand.base)
                } else {
                    map[g]
                }
            });
            e
        };
        for (ei, edge) in edges.iter().enumerate() {
            if edge_used[ei] {
                continue;
            }
            let lm = input_mask(&cols_of(&edge.l), inputs);
            let rm = input_mask(&cols_of(&edge.r), inputs);
            if lm & !avail != 0 || rm & !avail != 0 {
                continue; // references an input not yet joined
            }
            edge_used[ei] = true;
            let kb = 1u64 << k;
            if lm & !included == 0 && rm & kb == rm && rm != 0 {
                // left side fully in current, right side fully in candidate
                left_keys.push(remap_into(&edge.l, &map));
                let mut rk = edge.r.clone();
                rk.remap_columns(&|g| g - cand.base);
                right_keys.push(rk);
            } else if rm & !included == 0 && lm & kb == lm && lm != 0 {
                right_keys.push({
                    let mut rk = edge.l.clone();
                    rk.remap_columns(&|g| g - cand.base);
                    rk
                });
                left_keys.push(remap_into(&edge.r, &map));
            } else {
                // Mixed-span equality: apply as a residual after the join.
                residual_conjs.push(BExpr::Bin {
                    op: BinOp::Eq,
                    l: Box::new(joint_remap(&edge.l)),
                    r: Box::new(joint_remap(&edge.r)),
                });
            }
        }
        for (fi, filt) in filters.iter().enumerate() {
            if filter_used[fi] {
                continue;
            }
            let fm = input_mask(&cols_of(filt), inputs);
            if fm & !avail == 0 {
                filter_used[fi] = true;
                residual_conjs.push(joint_remap(filt));
            }
        }
        let kind = if left_keys.is_empty() {
            JKind::Cross
        } else {
            JKind::Inner
        };
        let schema = cur.schema().concat(cand.plan.schema());
        cur = LogicalPlan::Join {
            left: Box::new(cur),
            right: Box::new(cand.plan.clone()),
            kind,
            left_keys,
            right_keys,
            residual: conjoin(residual_conjs),
            schema,
        };
        for g in 0..cand.width {
            map[cand.base + g] = lw + g;
        }
        included = avail;
    }
    // Restore the region's original output column order when it changed.
    if map.iter().enumerate().any(|(g, &p)| g != p) {
        cur = LogicalPlan::Project {
            exprs: (0..total).map(|g| BExpr::Col(map[g])).collect(),
            input: Box::new(cur),
            schema: orig_schema.clone(),
        };
    }
    cur
}

fn remap_into(e: &BExpr, map: &[usize]) -> BExpr {
    let mut e = e.clone();
    e.remap_columns(&|g| map[g]);
    e
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::table::{Field, Schema};
    use pytond_common::{DType, Value};

    fn scan(cols: usize) -> LogicalPlan {
        LogicalPlan::Scan {
            table: "t".into(),
            schema: Schema::new(
                (0..cols)
                    .map(|i| Field::new(format!("c{i}"), DType::Int))
                    .collect(),
            ),
            projection: None,
            pred: None,
        }
    }

    fn col_eq_lit(i: usize, v: i64) -> BExpr {
        BExpr::Bin {
            op: BinOp::Eq,
            l: Box::new(BExpr::Col(i)),
            r: Box::new(BExpr::Lit(Value::Int(v))),
        }
    }

    #[test]
    fn filter_pushes_into_join_sides() {
        let join = LogicalPlan::Join {
            left: Box::new(scan(2)),
            right: Box::new(scan(2)),
            kind: JKind::Inner,
            left_keys: vec![BExpr::Col(0)],
            right_keys: vec![BExpr::Col(0)],
            residual: None,
            schema: scan(2).schema().concat(scan(2).schema()),
        };
        let filtered = LogicalPlan::Filter {
            input: Box::new(join),
            pred: BExpr::Bin {
                op: BinOp::And,
                l: Box::new(col_eq_lit(1, 5)), // left side
                r: Box::new(col_eq_lit(3, 7)), // right side
            },
        };
        let out = push_filters(filtered);
        // Top node is the join now; both sides gained filters.
        match out {
            LogicalPlan::Join { left, right, .. } => {
                assert!(matches!(*left, LogicalPlan::Filter { .. }));
                assert!(matches!(*right, LogicalPlan::Filter { .. }));
            }
            other => panic!("expected join on top, got {}", other.name()),
        }
    }

    #[test]
    fn cross_join_promoted_to_inner() {
        let join = LogicalPlan::Join {
            left: Box::new(scan(1)),
            right: Box::new(scan(1)),
            kind: JKind::Cross,
            left_keys: vec![],
            right_keys: vec![],
            residual: None,
            schema: scan(1).schema().concat(scan(1).schema()),
        };
        let filtered = LogicalPlan::Filter {
            input: Box::new(join),
            pred: BExpr::Bin {
                op: BinOp::Eq,
                l: Box::new(BExpr::Col(0)),
                r: Box::new(BExpr::Col(1)),
            },
        };
        match push_filters(filtered) {
            LogicalPlan::Join {
                kind, left_keys, ..
            } => {
                assert_eq!(kind, JKind::Inner);
                assert_eq!(left_keys.len(), 1);
            }
            other => panic!("expected join, got {}", other.name()),
        }
    }

    #[test]
    fn prune_narrows_scan() {
        let project = LogicalPlan::Project {
            input: Box::new(scan(10)),
            exprs: vec![BExpr::Col(7), BExpr::Col(2)],
            schema: Schema::new(vec![
                Field::new("a", DType::Int),
                Field::new("b", DType::Int),
            ]),
        };
        let out = optimize(project);
        fn find_scan(p: &LogicalPlan) -> Option<&LogicalPlan> {
            if matches!(p, LogicalPlan::Scan { .. }) {
                return Some(p);
            }
            p.children().into_iter().find_map(find_scan)
        }
        match find_scan(&out).unwrap() {
            LogicalPlan::Scan { projection, .. } => {
                assert_eq!(projection.as_deref(), Some(&[2usize, 7][..]));
            }
            _ => unreachable!(),
        }
    }

    #[test]
    fn sink_scan_filters_folds_filter_into_scan() {
        let filtered = LogicalPlan::Filter {
            input: Box::new(scan(3)),
            pred: col_eq_lit(2, 9),
        };
        match sink_scan_filters(filtered) {
            LogicalPlan::Scan { pred: Some(p), .. } => {
                // Predicate columns address the stored table.
                assert_eq!(cols_of(&p), vec![2]);
            }
            other => panic!("expected scan with pred, got {}", other.name()),
        }
        // Through an existing projection the predicate remaps to stored space.
        let projected_scan = LogicalPlan::Scan {
            table: "t".into(),
            schema: Schema::new(vec![Field::new("c5", DType::Int)]),
            projection: Some(vec![5]),
            pred: None,
        };
        let filtered = LogicalPlan::Filter {
            input: Box::new(projected_scan),
            pred: col_eq_lit(0, 1),
        };
        match sink_scan_filters(filtered) {
            LogicalPlan::Scan { pred: Some(p), .. } => assert_eq!(cols_of(&p), vec![5]),
            other => panic!("expected scan with pred, got {}", other.name()),
        }
    }

    #[test]
    fn estimate_uses_table_stats() {
        use crate::stats::TableStats;
        use pytond_common::Column;
        let col = Column::from_i64((0..1000).collect());
        let stats = TableStats::compute(&[&col]);
        let mut ctx = StatsCatalog::empty();
        ctx.add_table("t", &stats);
        let plain = LogicalPlan::Scan {
            table: "t".into(),
            schema: Schema::new(vec![Field::new("c0", DType::Int)]),
            projection: None,
            pred: None,
        };
        assert_eq!(estimate(&plain, &ctx), 1000.0);
        // Equality selectivity ≈ 1/NDV.
        let eq = LogicalPlan::Scan {
            table: "t".into(),
            schema: Schema::new(vec![Field::new("c0", DType::Int)]),
            projection: None,
            pred: Some(col_eq_lit(0, 5)),
        };
        let est = estimate(&eq, &ctx);
        assert!((0.5..=10.0).contains(&est), "eq estimate {est}");
        // Unknown tables fall back to the default row count.
        assert_eq!(estimate(&scan(1), &ctx), 1000.0);
    }

    #[test]
    fn reorder_without_stats_keeps_plan_shape() {
        let join = LogicalPlan::Join {
            left: Box::new(scan(2)),
            right: Box::new(scan(2)),
            kind: JKind::Inner,
            left_keys: vec![BExpr::Col(0)],
            right_keys: vec![BExpr::Col(0)],
            residual: None,
            schema: scan(2).schema().concat(scan(2).schema()),
        };
        let out = reorder_joins(join, &StatsCatalog::empty());
        // Identical estimates on both sides: identity order, no restore
        // projection, same scan sequence.
        assert_eq!(out.scan_order(), vec!["t", "t"]);
        assert!(matches!(out, LogicalPlan::Join { .. }), "{}", out.name());
    }

    #[test]
    fn filter_not_pushed_through_limit() {
        let limited = LogicalPlan::Limit {
            input: Box::new(scan(2)),
            n: 5,
        };
        let filtered = LogicalPlan::Filter {
            input: Box::new(limited),
            pred: col_eq_lit(0, 1),
        };
        match push_filters(filtered) {
            LogicalPlan::Filter { input, .. } => {
                assert!(matches!(*input, LogicalPlan::Limit { .. }));
            }
            other => panic!("expected filter above limit, got {}", other.name()),
        }
    }
}
