//! Table and column statistics: zone maps, min/max bounds, null counts and
//! distinct-count sketches.
//!
//! Statistics are computed when a table is registered (and maintained
//! incrementally on [`crate::db::Database::append`]) and drive two layers of
//! the engine:
//!
//! * **planning** — [`crate::optimize`] estimates predicate selectivities and
//!   join cardinalities from row counts, min/max bounds and the
//!   distinct-count estimate, feeding the greedy cost-based join-order
//!   rewrite;
//! * **execution** — scans consult the per-zone min/max **zone maps** to skip
//!   whole row zones whose bounds prove a pushed-down range/equality/IN
//!   predicate cannot match ([`crate::exec`] reports pruned/scanned counts).
//!
//! Zone maps cover the fixed-width dtypes (`Int`, `Date`, `Float`, `Bool`)
//! plus dictionary-encoded strings (zones over the integer codes; scans
//! translate string equality/IN literals to codes before pruning); plain
//! string columns keep only global stats. All pruning decisions are
//! conservative: any comparison that cannot be decided keeps the zone.

use crate::ast::BinOp;
use crate::expr::BExpr;
use pytond_common::hash::{canonical_f64_bits, FxHasher};
use pytond_common::{Column, Value};
use std::hash::Hasher;

/// Rows per statistics zone ("morsel" at the storage layer): the granularity
/// at which min/max zone maps are kept and scans can skip input.
pub const ZONE_ROWS: usize = 4096;

/// Number of minimum hashes the distinct-count sketch retains.
const KMV_K: usize = 256;

/// Per-zone summary of one column: row/null counts and min/max over the
/// zone's valid (non-null) rows.
#[derive(Debug, Clone, PartialEq)]
pub struct ZoneStat {
    /// Rows in the zone (the last zone of a table may be short).
    pub rows: u32,
    /// Null rows in the zone.
    pub null_count: u32,
    /// Minimum valid value; `Value::Null` when every row is null.
    pub min: Value,
    /// Maximum valid value; `Value::Null` when every row is null.
    pub max: Value,
}

impl ZoneStat {
    fn empty() -> ZoneStat {
        ZoneStat {
            rows: 0,
            null_count: 0,
            min: Value::Null,
            max: Value::Null,
        }
    }
}

/// A k-minimum-values sketch over 64-bit value hashes: keeps the `KMV_K`
/// smallest distinct hashes seen and estimates the total distinct count from
/// their density. Exact while fewer than `KMV_K` distinct values were seen;
/// mergeable, so appends never require a rescan.
#[derive(Debug, Clone, Default)]
struct KmvSketch {
    /// Sorted ascending; at most `KMV_K` entries.
    mins: Vec<u64>,
}

impl KmvSketch {
    fn insert(&mut self, h: u64) {
        match self.mins.binary_search(&h) {
            Ok(_) => {}
            Err(pos) => {
                if self.mins.len() < KMV_K {
                    self.mins.insert(pos, h);
                } else if pos < KMV_K {
                    self.mins.insert(pos, h);
                    self.mins.pop();
                }
            }
        }
    }

    fn estimate(&self) -> f64 {
        if self.mins.len() < KMV_K {
            return self.mins.len() as f64;
        }
        // k-th minimum at fraction kth/2^64 of the hash space ⇒ about
        // (k-1) / fraction distinct values overall.
        let kth = *self.mins.last().expect("k >= 1") as f64;
        if kth <= 0.0 {
            return self.mins.len() as f64;
        }
        ((KMV_K - 1) as f64) * (u64::MAX as f64) / kth
    }
}

#[inline]
fn hash_u64(x: u64) -> u64 {
    let mut h = FxHasher::default();
    h.write_u64(x);
    h.finish()
}

#[inline]
fn hash_bytes(b: &[u8]) -> u64 {
    let mut h = FxHasher::default();
    h.write(b);
    h.finish()
}

/// Statistics for one stored column.
#[derive(Debug, Clone)]
pub struct ColumnStats {
    /// Total null rows.
    pub null_count: usize,
    /// Global minimum over valid rows (`Value::Null` when none).
    pub min: Value,
    /// Global maximum over valid rows (`Value::Null` when none).
    pub max: Value,
    /// Per-zone min/max; `None` for string columns.
    pub zones: Option<Vec<ZoneStat>>,
    /// Distinct-count sketch (nulls excluded).
    sketch: KmvSketch,
}

impl ColumnStats {
    /// Estimated number of distinct (non-null) values.
    pub fn distinct_estimate(&self) -> f64 {
        self.sketch.estimate().max(1.0)
    }
}

/// Statistics for one stored table: row count plus per-column stats aligned
/// with the table's schema.
#[derive(Debug, Clone)]
pub struct TableStats {
    /// Total rows.
    pub row_count: usize,
    /// One entry per stored column, in schema order.
    pub columns: Vec<ColumnStats>,
}

impl TableStats {
    /// Computes statistics for a full set of equal-length columns.
    pub fn compute<C: std::borrow::Borrow<Column>>(cols: &[C]) -> TableStats {
        let row_count = cols.first().map_or(0, |c| c.borrow().len());
        let mut stats = TableStats {
            row_count: 0,
            columns: cols
                .iter()
                .map(|c| ColumnStats {
                    null_count: 0,
                    min: Value::Null,
                    max: Value::Null,
                    zones: zone_mapped(c.borrow()).then(Vec::new),
                    sketch: KmvSketch::default(),
                })
                .collect(),
        };
        stats.extend(cols);
        debug_assert_eq!(stats.row_count, row_count);
        stats
    }

    /// Absorbs rows appended to the columns since the last call: `cols` are
    /// the **full** post-append columns; rows `[self.row_count, len)` are new.
    /// The trailing partial zone is recomputed; all other state merges
    /// incrementally (no full rescan).
    pub fn extend<C: std::borrow::Borrow<Column>>(&mut self, cols: &[C]) {
        let start = self.row_count;
        let n = cols.first().map_or(0, |c| c.borrow().len());
        if n <= start {
            return;
        }
        for (cs, col) in self.columns.iter_mut().zip(cols) {
            extend_column(cs, col.borrow(), start);
        }
        self.row_count = n;
    }
}

/// Whether a dtype participates in zone maps.
fn zone_mapped(c: &Column) -> bool {
    !matches!(c, Column::Str(..))
}

/// Extends one column's stats with rows `[start, len)`.
fn extend_column(cs: &mut ColumnStats, col: &Column, start: usize) {
    match col {
        Column::Int(d, v) => extend_typed(cs, d, v.as_deref(), start, Value::Int, |x| {
            hash_u64(x as u64)
        }),
        Column::Date(d, v) => extend_typed(cs, d, v.as_deref(), start, Value::Date, |x| {
            hash_u64(i64::from(x) as u64)
        }),
        Column::Bool(d, v) => extend_typed(cs, d, v.as_deref(), start, Value::Bool, |x| {
            hash_u64(u64::from(x))
        }),
        Column::Float(d, v) => extend_typed(cs, d, v.as_deref(), start, Value::Float, |x| {
            hash_u64(canonical_f64_bits(x))
        }),
        Column::Str(d, v) => {
            // Plain strings keep global stats only (no zone map).
            let valid = v.as_deref();
            for (i, s) in d.iter().enumerate().skip(start) {
                if !valid.map_or(true, |v| v[i]) {
                    cs.null_count += 1;
                    continue;
                }
                let val = Value::Str(s.clone());
                update_minmax(&mut cs.min, &mut cs.max, &val);
                cs.sketch.insert(hash_bytes(s.as_bytes()));
            }
        }
        Column::DictStr { codes, dict, valid } => {
            // Global bounds decode (the planner compares them against string
            // literals) and the sketch hashes string bytes, so estimates are
            // identical to the plain path. Zone maps run over the **codes**
            // as ints: codes are stable under dictionary-extending appends,
            // and scans translate string equality/IN literals to codes
            // before consulting them.
            let valid = valid.as_deref();
            for (i, &c) in codes.iter().enumerate().skip(start) {
                if !valid.map_or(true, |v| v[i]) {
                    cs.null_count += 1;
                    continue;
                }
                let s = dict.get(c);
                update_minmax(&mut cs.min, &mut cs.max, &Value::Str(s.to_string()));
                cs.sketch.insert(hash_bytes(s.as_bytes()));
            }
            extend_zones(cs, codes, valid, start, |x| Value::Int(i64::from(x)));
        }
    }
}

/// Monomorphic stats loop for fixed-width data: updates global min/max, null
/// count and the sketch over `[start, len)`, and rebuilds zone maps from the
/// last zone boundary at or below `start`.
fn extend_typed<T: Copy>(
    cs: &mut ColumnStats,
    data: &[T],
    valid: Option<&[bool]>,
    start: usize,
    to_value: impl Fn(T) -> Value,
    hash: impl Fn(T) -> u64,
) {
    // Global stats over the strictly-new rows.
    for (i, &x) in data.iter().enumerate().skip(start) {
        if !valid.map_or(true, |v| v[i]) {
            cs.null_count += 1;
            continue;
        }
        let val = to_value(x);
        update_minmax(&mut cs.min, &mut cs.max, &val);
        cs.sketch.insert(hash(x));
    }
    extend_zones(cs, data, valid, start, to_value);
}

/// Rebuilds zone maps from the last zone boundary at or below `start`.
fn extend_zones<T: Copy>(
    cs: &mut ColumnStats,
    data: &[T],
    valid: Option<&[bool]>,
    start: usize,
    to_value: impl Fn(T) -> Value,
) {
    let Some(zones) = cs.zones.as_mut() else {
        return;
    };
    let zone_floor = start / ZONE_ROWS;
    zones.truncate(zone_floor);
    let mut i = zone_floor * ZONE_ROWS;
    while i < data.len() {
        let end = (i + ZONE_ROWS).min(data.len());
        let mut z = ZoneStat::empty();
        z.rows = (end - i) as u32;
        for (j, &x) in data[i..end].iter().enumerate() {
            if !valid.map_or(true, |v| v[i + j]) {
                z.null_count += 1;
                continue;
            }
            let val = to_value(x);
            update_minmax(&mut z.min, &mut z.max, &val);
        }
        zones.push(z);
        i = end;
    }
}

/// Widens `[min, max]` to cover `v`. NaN floats are skipped: they satisfy no
/// range predicate, so excluding them keeps the bounds tight *and* sound.
fn update_minmax(min: &mut Value, max: &mut Value, v: &Value) {
    if let Value::Float(f) = v {
        if f.is_nan() {
            return;
        }
    }
    if min.is_null() || v.sql_cmp(min) == Some(std::cmp::Ordering::Less) {
        *min = v.clone();
    }
    if max.is_null() || v.sql_cmp(max) == Some(std::cmp::Ordering::Greater) {
        *max = v.clone();
    }
}

// ---------------- zone-map pruning ----------------

/// One predicate constraint a zone map can evaluate.
#[derive(Debug, Clone, PartialEq)]
pub(crate) enum ZoneTest {
    /// `col <op> literal` with `op ∈ {=, <, <=, >, >=}`.
    Cmp {
        /// Stored column index.
        col: usize,
        /// Comparison operator (literal on the right).
        op: BinOp,
        /// Non-null literal.
        lit: Value,
    },
    /// `col IN (non-null literals)`.
    In {
        /// Stored column index.
        col: usize,
        /// Candidate values (nulls removed: they never match).
        list: Vec<Value>,
    },
    /// `col IS [NOT] NULL`.
    Null {
        /// Stored column index.
        col: usize,
        /// `true` for IS NOT NULL.
        negated: bool,
    },
}

/// Extracts the zone-prunable conjuncts of a scan predicate. Conjuncts with
/// any other shape are ignored (they still run as the scan's row filter).
pub(crate) fn prunable_tests(pred: &BExpr) -> Vec<ZoneTest> {
    let mut out = Vec::new();
    collect_tests(pred, &mut out);
    out
}

fn collect_tests(e: &BExpr, out: &mut Vec<ZoneTest>) {
    match e {
        BExpr::Bin {
            op: BinOp::And,
            l,
            r,
        } => {
            collect_tests(l, out);
            collect_tests(r, out);
        }
        BExpr::Bin { op, l, r } if cmp_op(*op) => match (&**l, &**r) {
            (BExpr::Col(c), BExpr::Lit(v)) if !v.is_null() => out.push(ZoneTest::Cmp {
                col: *c,
                op: *op,
                lit: v.clone(),
            }),
            (BExpr::Lit(v), BExpr::Col(c)) if !v.is_null() => out.push(ZoneTest::Cmp {
                col: *c,
                op: mirror_op(*op),
                lit: v.clone(),
            }),
            _ => {}
        },
        BExpr::InList {
            e,
            list,
            negated: false,
        } => {
            if let BExpr::Col(c) = &**e {
                let vals: Vec<Value> = list.iter().filter(|v| !v.is_null()).cloned().collect();
                out.push(ZoneTest::In {
                    col: *c,
                    list: vals,
                });
            }
        }
        BExpr::IsNull { e, negated } => {
            if let BExpr::Col(c) = &**e {
                out.push(ZoneTest::Null {
                    col: *c,
                    negated: *negated,
                });
            }
        }
        _ => {}
    }
}

fn cmp_op(op: BinOp) -> bool {
    matches!(
        op,
        BinOp::Eq | BinOp::Lt | BinOp::Le | BinOp::Gt | BinOp::Ge
    )
}

/// Mirrors a comparison when the literal sits on the left (`5 < x` ⇒ `x > 5`).
fn mirror_op(op: BinOp) -> BinOp {
    match op {
        BinOp::Lt => BinOp::Gt,
        BinOp::Le => BinOp::Ge,
        BinOp::Gt => BinOp::Lt,
        BinOp::Ge => BinOp::Le,
        other => other,
    }
}

/// Rewrites a zone test over a dictionary-encoded column into **code
/// space**, where that column's zone min/max live. Equality and IN translate
/// each string literal through the dictionary; a literal absent from the
/// dictionary can never match any row, so it simply drops from the candidate
/// list (an empty list refutes every zone). Range comparisons and non-string
/// literals return `None` — code order is first-occurrence order, not
/// lexicographic, so code-space bounds say nothing about them and the zones
/// must stay unpruned (the scan's row filter still applies the predicate).
pub(crate) fn dict_zone_test(t: &ZoneTest, dict: &pytond_common::Dictionary) -> Option<ZoneTest> {
    let code_val = |s: &str| dict.code_of(s).map(|c| Value::Int(i64::from(c)));
    match t {
        ZoneTest::Null { .. } => Some(t.clone()),
        ZoneTest::Cmp {
            col,
            op: BinOp::Eq,
            lit: Value::Str(s),
        } => Some(ZoneTest::In {
            col: *col,
            list: code_val(s).into_iter().collect(),
        }),
        ZoneTest::In { col, list } if list.iter().all(|v| v.as_str().is_some()) => {
            Some(ZoneTest::In {
                col: *col,
                list: list
                    .iter()
                    .filter_map(|v| v.as_str().and_then(code_val))
                    .collect(),
            })
        }
        _ => None,
    }
}

/// Whether a zone can possibly contain a row satisfying `test`.
/// Conservative: undecidable comparisons keep the zone.
pub(crate) fn zone_may_match(test: &ZoneTest, zone: &ZoneStat) -> bool {
    use std::cmp::Ordering::*;
    let all_null = zone.null_count == zone.rows;
    match test {
        ZoneTest::Null { negated: false, .. } => zone.null_count > 0,
        ZoneTest::Null { negated: true, .. } => zone.null_count < zone.rows,
        // Comparison / membership predicates are never satisfied by NULL rows.
        _ if all_null => false,
        ZoneTest::Cmp { op, lit, .. } => {
            let lo = zone.min.sql_cmp(lit); // min vs lit
            let hi = zone.max.sql_cmp(lit); // max vs lit
            match op {
                BinOp::Eq => !matches!(lo, Some(Greater)) && !matches!(hi, Some(Less)),
                BinOp::Lt => matches!(lo, Some(Less) | None),
                BinOp::Le => !matches!(lo, Some(Greater)),
                BinOp::Gt => matches!(hi, Some(Greater) | None),
                BinOp::Ge => !matches!(hi, Some(Less)),
                _ => true,
            }
        }
        ZoneTest::In { list, .. } => list.iter().any(|v| {
            !matches!(zone.min.sql_cmp(v), Some(Greater))
                && !matches!(zone.max.sql_cmp(v), Some(Less))
        }),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use pytond_common::DType;

    fn int_col(vals: &[Option<i64>]) -> Column {
        let mut c = Column::new(DType::Int);
        for v in vals {
            match v {
                Some(x) => c.push(Value::Int(*x)).unwrap(),
                None => c.push_null(),
            }
        }
        c
    }

    #[test]
    fn global_stats_and_zones() {
        let c = Column::from_i64((0..10_000).collect());
        let stats = TableStats::compute(&[&c]);
        assert_eq!(stats.row_count, 10_000);
        let cs = &stats.columns[0];
        assert_eq!(cs.null_count, 0);
        assert_eq!(cs.min, Value::Int(0));
        assert_eq!(cs.max, Value::Int(9_999));
        let zones = cs.zones.as_ref().unwrap();
        assert_eq!(zones.len(), 10_000usize.div_ceil(ZONE_ROWS));
        assert_eq!(zones[0].min, Value::Int(0));
        assert_eq!(zones[0].max, Value::Int(ZONE_ROWS as i64 - 1));
        assert_eq!(zones.last().unwrap().rows as usize, 10_000 % ZONE_ROWS);
    }

    #[test]
    fn distinct_estimate_exact_below_k() {
        let c = Column::from_i64((0..100).map(|i| i % 13).collect());
        let stats = TableStats::compute(&[&c]);
        assert_eq!(stats.columns[0].distinct_estimate(), 13.0);
    }

    #[test]
    fn distinct_estimate_close_above_k() {
        let c = Column::from_i64((0..100_000).collect());
        let stats = TableStats::compute(&[&c]);
        let est = stats.columns[0].distinct_estimate();
        assert!(
            (est - 100_000.0).abs() / 100_000.0 < 0.25,
            "estimate {est} too far from 100000"
        );
    }

    #[test]
    fn nulls_counted_and_excluded_from_bounds() {
        let c = int_col(&[Some(5), None, Some(1), None]);
        let stats = TableStats::compute(&[&c]);
        let cs = &stats.columns[0];
        assert_eq!(cs.null_count, 2);
        assert_eq!(cs.min, Value::Int(1));
        assert_eq!(cs.max, Value::Int(5));
        assert_eq!(cs.zones.as_ref().unwrap()[0].null_count, 2);
    }

    #[test]
    fn string_columns_have_no_zone_map() {
        let c = Column::from_strs(&["b", "a"]);
        let stats = TableStats::compute(&[&c]);
        let cs = &stats.columns[0];
        assert!(cs.zones.is_none());
        assert_eq!(cs.min, Value::Str("a".into()));
        assert_eq!(cs.max, Value::Str("b".into()));
    }

    #[test]
    fn extend_matches_recompute() {
        // Append in three uneven batches; stats must equal a from-scratch
        // computation over the concatenation.
        let all: Vec<i64> = (0..11_000).map(|i| (i * 7) % 1000).collect();
        let mut col = Column::from_i64(all[..3000].to_vec());
        let mut stats = TableStats::compute(&[&col]);
        for chunk in [&all[3000..9000], &all[9000..]] {
            col.append(&Column::from_i64(chunk.to_vec())).unwrap();
            stats.extend(&[&col]);
        }
        let fresh = TableStats::compute(&[&col]);
        assert_eq!(stats.row_count, fresh.row_count);
        let (a, b) = (&stats.columns[0], &fresh.columns[0]);
        assert_eq!(a.null_count, b.null_count);
        assert_eq!(a.min, b.min);
        assert_eq!(a.max, b.max);
        assert_eq!(a.zones, b.zones);
        assert_eq!(a.distinct_estimate(), b.distinct_estimate());
    }

    #[test]
    fn zone_pruning_decisions() {
        let zone = ZoneStat {
            rows: 100,
            null_count: 10,
            min: Value::Int(50),
            max: Value::Int(99),
        };
        let cmp = |op, lit| ZoneTest::Cmp {
            col: 0,
            op,
            lit: Value::Int(lit),
        };
        assert!(!zone_may_match(&cmp(BinOp::Eq, 10), &zone));
        assert!(zone_may_match(&cmp(BinOp::Eq, 75), &zone));
        assert!(!zone_may_match(&cmp(BinOp::Lt, 50), &zone));
        assert!(zone_may_match(&cmp(BinOp::Le, 50), &zone));
        assert!(!zone_may_match(&cmp(BinOp::Gt, 99), &zone));
        assert!(zone_may_match(&cmp(BinOp::Ge, 99), &zone));
        let in_test = ZoneTest::In {
            col: 0,
            list: vec![Value::Int(1), Value::Int(60)],
        };
        assert!(zone_may_match(&in_test, &zone));
        let in_miss = ZoneTest::In {
            col: 0,
            list: vec![Value::Int(1), Value::Int(200)],
        };
        assert!(!zone_may_match(&in_miss, &zone));
        assert!(zone_may_match(
            &ZoneTest::Null {
                col: 0,
                negated: false
            },
            &zone
        ));
        // Cross-type int/float comparisons stay decidable.
        let f = ZoneTest::Cmp {
            col: 0,
            op: BinOp::Gt,
            lit: Value::Float(99.5),
        };
        assert!(!zone_may_match(&f, &zone));
    }

    #[test]
    fn all_null_zone_prunes_comparisons_but_not_is_null() {
        let zone = ZoneStat {
            rows: 8,
            null_count: 8,
            min: Value::Null,
            max: Value::Null,
        };
        assert!(!zone_may_match(
            &ZoneTest::Cmp {
                col: 0,
                op: BinOp::Ge,
                lit: Value::Int(0)
            },
            &zone
        ));
        assert!(zone_may_match(
            &ZoneTest::Null {
                col: 0,
                negated: false
            },
            &zone
        ));
        assert!(!zone_may_match(
            &ZoneTest::Null {
                col: 0,
                negated: true
            },
            &zone
        ));
    }

    #[test]
    fn prunable_extraction_shapes() {
        let col = |i| Box::new(BExpr::Col(i));
        let lit = |v: i64| Box::new(BExpr::Lit(Value::Int(v)));
        // 5 <= #0 AND #1 IN (1, NULL, 2) AND #2 LIKE ... (ignored)
        let pred = BExpr::Bin {
            op: BinOp::And,
            l: Box::new(BExpr::Bin {
                op: BinOp::Le,
                l: lit(5),
                r: col(0),
            }),
            r: Box::new(BExpr::InList {
                e: col(1),
                list: vec![Value::Int(1), Value::Null, Value::Int(2)],
                negated: false,
            }),
        };
        let tests = prunable_tests(&pred);
        assert_eq!(
            tests,
            vec![
                ZoneTest::Cmp {
                    col: 0,
                    op: BinOp::Ge,
                    lit: Value::Int(5)
                },
                ZoneTest::In {
                    col: 1,
                    list: vec![Value::Int(1), Value::Int(2)]
                },
            ]
        );
    }
}
