//! Shared foundation types for the PyTond reproduction.
//!
//! Every layer of the pipeline — the Pandas-like baseline (`pytond-frame`), the
//! NumPy-like tensors (`pytond-ndarray`), the SQL engine substrate
//! (`pytond-sqldb`) and the compiler crates — exchanges data through the types
//! defined here: scalar [`Value`]s, typed columnar [`Column`]s, named-column
//! [`Relation`]s, calendar [`date`] arithmetic, a fast non-cryptographic
//! [`hash`] used for join/group keys, the morsel-driven worker [`pool`]
//! shared by the SQL executor and the DataFrame baseline, the
//! epoch-style snapshot-publication cell ([`version`]) under the serving
//! layer's copy-on-append table versioning, and the query-lifecycle
//! resilience primitives: cooperative cancellation tokens ([`cancel`]),
//! jittered retry for transient errors ([`retry`]) and the deterministic
//! fault-injection harness ([`fault`]).

#![warn(missing_docs)]

pub mod cancel;
pub mod column;
pub mod date;
pub mod error;
pub mod fault;
pub mod hash;
pub mod pool;
pub mod relation;
pub mod retry;
pub mod value;
pub mod version;

pub use cancel::CancelToken;
pub use column::{empty_dict, unify_dict_pair, Column, DType, DictParts, Dictionary};
pub use error::{Error, Result};
pub use relation::Relation;
pub use value::Value;
