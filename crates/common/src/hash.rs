//! Fast non-cryptographic hashing and key encoding for join/group keys.
//!
//! The engine's hash joins and aggregations are dominated by hashing short
//! integer/string keys, where the std `SipHash` is needlessly slow. This is
//! the well-known `FxHash` multiply-xor scheme (as used by rustc), implemented
//! locally to keep the dependency set minimal.
//!
//! Composite keys come in two physical layouts, chosen per operator by
//! [`FixedKeySpec::plan`]:
//!
//! * **fixed-width** — when every key column is `Int`/`Date`/`Bool`, the key
//!   packs into a single `u64` or `u128` word (one bit-slot per column, with
//!   a validity bit folded in when nulls can occur), so hash maps key on a
//!   machine word instead of a heap-allocated byte string;
//! * **byte-encoded fallback** — strings and mixed numeric keys encode into
//!   one contiguous [`KeyArena`] buffer; maps then key on borrowed `&[u8]`
//!   slices, which costs zero per-row allocations on both build and probe.

use crate::column::Column;
use std::hash::{BuildHasherDefault, Hasher};

/// Multiply-xor hasher (FxHash). Not DoS-resistant; keys are internal.
#[derive(Default, Clone)]
pub struct FxHasher {
    hash: u64,
}

const SEED: u64 = 0x51_7c_c1_b7_27_22_0a_95;

impl FxHasher {
    #[inline]
    fn add_to_hash(&mut self, i: u64) {
        self.hash = (self.hash.rotate_left(5) ^ i).wrapping_mul(SEED);
    }
}

impl Hasher for FxHasher {
    #[inline]
    fn write(&mut self, bytes: &[u8]) {
        let mut chunks = bytes.chunks_exact(8);
        for c in &mut chunks {
            self.add_to_hash(u64::from_le_bytes(c.try_into().unwrap()));
        }
        let rem = chunks.remainder();
        if !rem.is_empty() {
            let mut buf = [0u8; 8];
            buf[..rem.len()].copy_from_slice(rem);
            self.add_to_hash(u64::from_le_bytes(buf));
        }
    }

    #[inline]
    fn write_u64(&mut self, i: u64) {
        self.add_to_hash(i);
    }

    #[inline]
    fn write_u32(&mut self, i: u32) {
        self.add_to_hash(u64::from(i));
    }

    #[inline]
    fn write_usize(&mut self, i: usize) {
        self.add_to_hash(i as u64);
    }

    #[inline]
    fn finish(&self) -> u64 {
        self.hash
    }
}

/// `BuildHasher` for [`FxHasher`].
pub type FxBuildHasher = BuildHasherDefault<FxHasher>;

/// `HashMap` keyed with [`FxHasher`].
pub type FxHashMap<K, V> = std::collections::HashMap<K, V, FxBuildHasher>;

/// `HashSet` keyed with [`FxHasher`].
pub type FxHashSet<K> = std::collections::HashSet<K, FxBuildHasher>;

/// Encodes one scalar into `buf` as a self-delimiting byte string so composite
/// keys can be compared byte-wise. Integers that compare equal to floats do
/// **not** encode equal — callers normalize numeric key columns first.
pub fn encode_value(buf: &mut Vec<u8>, v: &crate::value::Value) {
    use crate::value::Value;
    match v {
        Value::Null => buf.push(0),
        Value::Int(i) => {
            buf.push(1);
            buf.extend_from_slice(&i.to_le_bytes());
        }
        // -0.0 and NaN payloads normalize so equal floats encode equal.
        Value::Float(f) => push_f64(buf, *f),
        Value::Bool(b) => buf.extend_from_slice(&[3, u8::from(*b)]),
        Value::Str(s) => {
            buf.push(4);
            buf.extend_from_slice(&(s.len() as u32).to_le_bytes());
            buf.extend_from_slice(s.as_bytes());
        }
        Value::Date(d) => {
            buf.push(5);
            buf.extend_from_slice(&d.to_le_bytes());
        }
    }
}

/// Widens ints/dates/bools to floats so `1 = 1.0` matches across
/// differently-typed key columns (SQL comparison semantics for the
/// byte-encoded key fallback; the fixed-width path never mixes in floats, so
/// it compares integer keys exactly).
pub fn normalize_key(v: crate::value::Value) -> crate::value::Value {
    use crate::value::Value;
    match v {
        Value::Int(i) => Value::Float(i as f64),
        Value::Date(d) => Value::Float(f64::from(d)),
        Value::Bool(b) => Value::Float(f64::from(u8::from(b))),
        other => other,
    }
}

// ---------------- fixed-width key packing ----------------

/// Machine-word width of a packed fixed-width key.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum KeyWidth {
    /// Fits in 64 bits.
    U64,
    /// Fits in 128 bits.
    U128,
}

/// One key column's bit-slot inside the packed word.
#[derive(Debug, Clone, Copy)]
struct KeySlot {
    /// Bit offset of the value inside the word.
    shift: u32,
    /// Value width in bits (sign-extended two's complement, masked).
    bits: u32,
    /// Whether a validity bit follows the value bits (group semantics with a
    /// nullable column: NULL keys form their own group).
    null_bit: bool,
}

/// Layout for packing a multi-column fixed-width key into one word.
///
/// Planned jointly over every participating side (one column set for
/// group-by/distinct, two for joins) so position `i` of each side lands in
/// the same slot with the same width: an `Int` joined against a `Date` packs
/// both sides as 64-bit sign-extended values, keeping cross-type equality
/// consistent with the byte-encoded fallback.
#[derive(Debug, Clone)]
pub struct FixedKeySpec {
    slots: Vec<KeySlot>,
    width: KeyWidth,
    total_bits: u32,
}

fn fixed_bits(c: &Column) -> Option<u32> {
    match c {
        Column::Int(..) => Some(64),
        Column::Date(..) => Some(32),
        Column::Bool(..) => Some(1),
        // Dictionary codes are dense u32s — but only comparable when every
        // participating column shares one dictionary; `plan` checks identity
        // per position before trusting this width.
        Column::DictStr { .. } => Some(32),
        Column::Float(..) | Column::Str(..) => None,
    }
}

/// `true` when position `i`'s columns can compare by dictionary code: either
/// no side is dictionary-encoded, or *every* side is and they share one
/// `Arc`'d dictionary (same pointer ⇒ same code space). A mix of encoded and
/// plain strings, or distinct dictionaries, must fall back to byte keys.
fn dict_codes_comparable(col_sets: &[&[&Column]], i: usize) -> bool {
    let mut shared: Option<&std::sync::Arc<crate::column::Dictionary>> = None;
    for set in col_sets {
        match set[i].dict_parts() {
            Some((_, dict, _)) => match shared {
                None => shared = Some(dict),
                Some(d) => {
                    if !std::sync::Arc::ptr_eq(d, dict) {
                        return false;
                    }
                }
            },
            None => {
                if shared.is_some() || set[i].dtype() == crate::column::DType::Str {
                    // A plain string column can never pack; if any side is
                    // encoded while another isn't, codes are meaningless.
                    return false;
                }
            }
        }
    }
    true
}

impl FixedKeySpec {
    /// Plans a fixed-width layout for the key columns, or `None` when any
    /// column is `Float`/`Str` or the packed key exceeds 128 bits.
    ///
    /// `col_sets` holds one slice of key columns per participating side —
    /// `&[&keys]` for group-by/distinct, `&[&left_keys, &right_keys]` for
    /// joins. `nulls_matter` selects group semantics (NULL is a key value and
    /// gets a validity bit) over join semantics (NULL keys never match; the
    /// caller skips rows flagged by the pack step instead).
    pub fn plan(col_sets: &[&[&Column]], nulls_matter: bool) -> Option<FixedKeySpec> {
        let ncols = col_sets.first()?.len();
        if col_sets.iter().any(|s| s.len() != ncols) {
            return None;
        }
        let mut slots = Vec::with_capacity(ncols);
        let mut shift = 0u32;
        for i in 0..ncols {
            let mut bits = 0u32;
            let mut nullable = false;
            for set in col_sets {
                bits = bits.max(fixed_bits(set[i])?);
                nullable |= set[i].validity().is_some();
            }
            if !dict_codes_comparable(col_sets, i) {
                return None;
            }
            let null_bit = nulls_matter && nullable;
            slots.push(KeySlot {
                shift,
                bits,
                null_bit,
            });
            shift += bits + u32::from(null_bit);
        }
        let width = match shift {
            0..=64 => KeyWidth::U64,
            65..=128 => KeyWidth::U128,
            _ => return None,
        };
        Some(FixedKeySpec {
            slots,
            width,
            total_bits: shift,
        })
    }

    /// The planned word width.
    pub fn width(&self) -> KeyWidth {
        self.width
    }

    /// Total bits used by the layout (values plus validity bits).
    pub fn total_bits(&self) -> u32 {
        self.total_bits
    }

    /// Packs one side's key columns into `u64` words, column-at-a-time.
    ///
    /// The second return is `Some(skip)` when the layout has no validity bits
    /// but a column is nullable (join semantics): `skip[i]` marks rows whose
    /// key contains a NULL and must not participate in matching.
    pub fn pack_u64(&self, cols: &[&Column]) -> (Vec<u64>, Option<Vec<bool>>) {
        self.pack_generic::<u64>(cols)
    }

    /// Packs one side's key columns into `u128` words; see [`Self::pack_u64`].
    pub fn pack_u128(&self, cols: &[&Column]) -> (Vec<u128>, Option<Vec<bool>>) {
        self.pack_generic::<u128>(cols)
    }

    fn pack_generic<W: KeyWord>(&self, cols: &[&Column]) -> (Vec<W>, Option<Vec<bool>>) {
        let n = cols.first().map_or(0, |c| c.len());
        let mut keys = vec![W::default(); n];
        let mut skip: Option<Vec<bool>> = None;
        for (slot, col) in self.slots.iter().zip(cols) {
            match col {
                Column::Int(d, v) => {
                    pack_col(&mut keys, &mut skip, d, v.as_deref(), slot, |x| x as u64)
                }
                Column::Date(d, v) => pack_col(&mut keys, &mut skip, d, v.as_deref(), slot, |x| {
                    i64::from(x) as u64
                }),
                Column::Bool(d, v) => {
                    pack_col(&mut keys, &mut skip, d, v.as_deref(), slot, u64::from)
                }
                Column::DictStr { codes, valid, .. } => pack_col(
                    &mut keys,
                    &mut skip,
                    codes,
                    valid.as_deref(),
                    slot,
                    u64::from,
                ),
                _ => unreachable!("plan admits only fixed-width dtypes"),
            }
        }
        (keys, skip)
    }
}

/// Word types a fixed-width key can pack into. Sealed to `u64`/`u128`.
trait KeyWord: Copy + Default + std::ops::BitOrAssign {
    fn from_bits(v: u64, shift: u32) -> Self;
    fn bit(pos: u32) -> Self;
}

impl KeyWord for u64 {
    #[inline]
    fn from_bits(v: u64, shift: u32) -> u64 {
        v << shift
    }
    #[inline]
    fn bit(pos: u32) -> u64 {
        1u64 << pos
    }
}

impl KeyWord for u128 {
    #[inline]
    fn from_bits(v: u64, shift: u32) -> u128 {
        u128::from(v) << shift
    }
    #[inline]
    fn bit(pos: u32) -> u128 {
        1u128 << pos
    }
}

/// Monomorphic per-column packing loop: value bits are the sign-extended
/// two's-complement representation masked to the slot width, so equal values
/// of different physical types (Int vs Date) pack identically.
#[inline]
fn pack_col<W: KeyWord, T: Copy>(
    keys: &mut [W],
    skip: &mut Option<Vec<bool>>,
    data: &[T],
    valid: Option<&[bool]>,
    slot: &KeySlot,
    to_bits: impl Fn(T) -> u64,
) {
    let mask = if slot.bits >= 64 {
        u64::MAX
    } else {
        (1u64 << slot.bits) - 1
    };
    match (valid, slot.null_bit) {
        (None, false) => {
            for (k, &v) in keys.iter_mut().zip(data) {
                *k |= W::from_bits(to_bits(v) & mask, slot.shift);
            }
        }
        (None, true) => {
            let nb = W::bit(slot.shift + slot.bits);
            for (k, &v) in keys.iter_mut().zip(data) {
                *k |= W::from_bits(to_bits(v) & mask, slot.shift);
                *k |= nb;
            }
        }
        (Some(vs), true) => {
            // NULL rows leave the slot zero (value bits and validity bit),
            // so all NULLs collide into one key — SQL GROUP BY semantics.
            let nb = W::bit(slot.shift + slot.bits);
            for ((k, &v), &ok) in keys.iter_mut().zip(data).zip(vs) {
                if ok {
                    *k |= W::from_bits(to_bits(v) & mask, slot.shift);
                    *k |= nb;
                }
            }
        }
        (Some(vs), false) => {
            let skip = skip.get_or_insert_with(|| vec![false; keys.len()]);
            for (((k, &v), &ok), s) in keys.iter_mut().zip(data).zip(vs).zip(skip.iter_mut()) {
                if ok {
                    *k |= W::from_bits(to_bits(v) & mask, slot.shift);
                } else {
                    *s = true;
                }
            }
        }
    }
}

// ---------------- byte-encoded key arena (fallback) ----------------

/// Row-major arena of byte-encoded composite keys.
///
/// All rows encode into one contiguous buffer up front; hash maps then key on
/// borrowed `&[u8]` slices (`Copy`, no per-row `Vec<u8>` allocation or clone
/// on either build or probe). This replaces the old
/// `table.entry(buf.clone())` pattern wholesale.
#[derive(Debug)]
pub struct KeyArena {
    buf: Vec<u8>,
    /// Per-row `(start, end)` into `buf`; `start == usize::MAX` marks a row
    /// whose key contains a NULL under join semantics (skipped).
    spans: Vec<(usize, usize)>,
}

const NULL_SPAN: (usize, usize) = (usize::MAX, usize::MAX);

/// How one key position encodes in a [`KeyArena`].
///
/// The SQL engine's byte fallback must partition rows exactly like the packed
/// fast path would, so equality cannot depend on *which* layout got chosen:
/// positions where every participating column is `Int`/`Date`/`Bool` encode
/// as exact sign-extended `i64` (mirroring [`FixedKeySpec`]'s slot
/// unification), positions involving a `Float` widen every numeric to the
/// canonical f64 encoding (SQL `1 = 1.0`), and anything else keeps the raw
/// type-tagged [`encode_value`] layout under which values of different types
/// never compare equal (Pandas semantics; also SQL string positions).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum KeyEncoding {
    /// Raw type-tagged encoding (type-sensitive equality).
    Raw,
    /// Exact integer encoding unifying `Int`/`Date`/`Bool`.
    Int64,
    /// Canonical f64 encoding unifying all numerics.
    Float64,
}

/// Per-position [`KeyEncoding`] for SQL comparison semantics, planned jointly
/// over every participating side (like [`FixedKeySpec::plan`]).
pub fn sql_key_encodings(col_sets: &[&[&Column]]) -> Vec<KeyEncoding> {
    let ncols = col_sets.first().map_or(0, |s| s.len());
    (0..ncols)
        .map(|i| {
            let mut any_float = false;
            let mut all_numeric = true;
            for set in col_sets {
                match set[i] {
                    Column::Float(..) => any_float = true,
                    Column::Int(..) | Column::Date(..) | Column::Bool(..) => {}
                    Column::Str(..) | Column::DictStr { .. } => all_numeric = false,
                }
            }
            if !all_numeric {
                KeyEncoding::Raw
            } else if any_float {
                KeyEncoding::Float64
            } else {
                KeyEncoding::Int64
            }
        })
        .collect()
}

impl KeyArena {
    /// Encodes every row of the key columns, one [`KeyEncoding`] per column.
    ///
    /// `skip_nulls` selects join semantics: a row with any NULL key column
    /// gets no key at all ([`KeyArena::key`] returns `None`).
    pub fn encode(cols: &[&Column], enc: &[KeyEncoding], skip_nulls: bool) -> KeyArena {
        let n = cols.first().map_or(0, |c| c.len());
        let mut buf = Vec::with_capacity(n * cols.len() * 9);
        let mut spans = Vec::with_capacity(n);
        let valids: Vec<Option<&[bool]>> = cols.iter().map(|c| c.validity()).collect();
        'rows: for i in 0..n {
            let start = buf.len();
            for ((c, valid), e) in cols.iter().zip(&valids).zip(enc) {
                if !valid.map_or(true, |v| v[i]) {
                    if skip_nulls {
                        buf.truncate(start);
                        spans.push(NULL_SPAN);
                        continue 'rows;
                    }
                    buf.push(0);
                    continue;
                }
                match (c, e) {
                    (Column::Int(d, _), KeyEncoding::Raw | KeyEncoding::Int64) => {
                        push_i64(&mut buf, d[i]);
                    }
                    (Column::Int(d, _), KeyEncoding::Float64) => {
                        push_f64(&mut buf, d[i] as f64);
                    }
                    (Column::Float(d, _), _) => push_f64(&mut buf, d[i]),
                    (Column::Bool(d, _), KeyEncoding::Raw) => {
                        buf.extend_from_slice(&[3, u8::from(d[i])]);
                    }
                    (Column::Bool(d, _), KeyEncoding::Int64) => {
                        push_i64(&mut buf, i64::from(d[i]));
                    }
                    (Column::Bool(d, _), KeyEncoding::Float64) => {
                        push_f64(&mut buf, f64::from(u8::from(d[i])));
                    }
                    (Column::Str(d, _), _) => {
                        buf.push(4);
                        buf.extend_from_slice(&(d[i].len() as u32).to_le_bytes());
                        buf.extend_from_slice(d[i].as_bytes());
                    }
                    // Byte-identical to the plain-string encoding, so mixed
                    // encoded/plain key sides still compare equal on content.
                    (Column::DictStr { codes, dict, .. }, _) => {
                        let s = dict.get(codes[i]);
                        buf.push(4);
                        buf.extend_from_slice(&(s.len() as u32).to_le_bytes());
                        buf.extend_from_slice(s.as_bytes());
                    }
                    (Column::Date(d, _), KeyEncoding::Raw) => {
                        buf.push(5);
                        buf.extend_from_slice(&d[i].to_le_bytes());
                    }
                    (Column::Date(d, _), KeyEncoding::Int64) => {
                        push_i64(&mut buf, i64::from(d[i]));
                    }
                    (Column::Date(d, _), KeyEncoding::Float64) => {
                        push_f64(&mut buf, f64::from(d[i]));
                    }
                }
            }
            spans.push((start, buf.len()));
        }
        KeyArena { buf, spans }
    }

    /// [`KeyArena::encode`] with the raw type-tagged encoding everywhere —
    /// the frame baseline's Pandas-style type-sensitive equality.
    pub fn encode_raw(cols: &[&Column], skip_nulls: bool) -> KeyArena {
        KeyArena::encode(cols, &vec![KeyEncoding::Raw; cols.len()], skip_nulls)
    }

    /// Number of rows.
    pub fn len(&self) -> usize {
        self.spans.len()
    }

    /// `true` when no rows were encoded.
    pub fn is_empty(&self) -> bool {
        self.spans.is_empty()
    }

    /// The row's key bytes, `None` for NULL-containing keys under
    /// `skip_nulls` semantics.
    #[inline]
    pub fn key(&self, i: usize) -> Option<&[u8]> {
        let (s, e) = self.spans[i];
        (s != usize::MAX).then(|| &self.buf[s..e])
    }

    /// All keys as borrowed slices, in row order.
    pub fn keys(&self) -> Vec<Option<&[u8]>> {
        (0..self.len()).map(|i| self.key(i)).collect()
    }

    /// All keys for arenas encoded with `skip_nulls = false` (every row has
    /// one): panics if any row was skipped.
    pub fn dense_keys(&self) -> Vec<&[u8]> {
        (0..self.len())
            .map(|i| self.key(i).expect("nulls are encoded, not skipped"))
            .collect()
    }
}

/// Exact integer encoding (tag 1 + little-endian i64), shared by raw Int and
/// the [`KeyEncoding::Int64`] unification.
#[inline]
fn push_i64(buf: &mut Vec<u8>, v: i64) {
    buf.push(1);
    buf.extend_from_slice(&v.to_le_bytes());
}

/// Bit pattern under which equal floats hash equal: `-0.0` folds into `0.0`
/// and every NaN payload folds into the canonical NaN. The same
/// canonicalization [`encode_value`] applies, exposed for typed hash sets
/// over float columns.
#[inline]
pub fn canonical_f64_bits(f: f64) -> u64 {
    let canonical = if f == 0.0 {
        0.0f64
    } else if f.is_nan() {
        f64::NAN
    } else {
        f
    };
    canonical.to_bits()
}

/// Canonical float encoding shared with [`encode_value`].
#[inline]
fn push_f64(buf: &mut Vec<u8>, f: f64) {
    buf.push(2);
    buf.extend_from_slice(&canonical_f64_bits(f).to_le_bytes());
}

/// Turns `(keys, skip)` from a fixed-width pack into per-row optional keys
/// (join semantics: `None` = NULL-containing key, never matches).
pub fn opt_keys<K>((keys, skip): (Vec<K>, Option<Vec<bool>>)) -> Vec<Option<K>> {
    match skip {
        None => keys.into_iter().map(Some).collect(),
        Some(s) => keys
            .into_iter()
            .zip(s)
            .map(|(k, null)| (!null).then_some(k))
            .collect(),
    }
}

// ---------------- partitioned hash-join build ----------------

/// Hashes one key with the engine's [`FxHasher`] (the partitioning hash of
/// [`PartitionedIndex`]; exposed so diagnostics can reproduce placements).
#[inline]
pub fn fx_hash_one<K: std::hash::Hash>(k: &K) -> u64 {
    use std::hash::BuildHasher;
    FxBuildHasher::default().hash_one(k)
}

/// Rows per partition-id morsel in [`PartitionedIndex::build`].
const PARTITION_MORSEL: usize = 64 * 1024;

/// A hash-join build side, optionally split into `P` hash partitions built
/// concurrently (P = the worker count rounded up to a power of two, capped
/// at 64).
///
/// Keys are assigned to partitions by hash bits **just below the top 7**:
/// hashbrown (std's `HashMap`) tags control bytes with the top-7 bits (h2)
/// and picks buckets from the low bits (h1), so partition bits taken from
/// either end would be constant within a partition and skew tag matching or
/// bucket spread — bits 51+ (below the tag, far above the buckets) touch
/// neither. A morsel-parallel pass buckets row ids per (morsel, partition);
/// one worker per partition then walks its buckets in morsel order, so
/// every key's row list is ascending — exactly what a single-threaded build
/// over the same keys produces, and lookups are indistinguishable from the
/// unpartitioned table. Total work is O(n) regardless of the partition
/// count. `None` keys (NULL under join semantics) are never inserted.
#[derive(Debug)]
pub struct PartitionedIndex<K> {
    parts: Vec<FxHashMap<K, Vec<u32>>>,
    /// `bits == 0` means a single partition (serial build, no hash on probe).
    bits: u32,
}

/// Build sides smaller than this stay unpartitioned: the scan-per-partition
/// build costs more than it saves below ~tens of thousands of rows.
pub const MIN_PARTITIONED_BUILD: usize = 16 * 1024;

impl<K: std::hash::Hash + Eq + Copy + Send + Sync> PartitionedIndex<K> {
    /// Builds the index over per-row optional keys. With `threads <= 1`, a
    /// build side below [`MIN_PARTITIONED_BUILD`] rows, or a single hardware
    /// worker, this is the exact serial single-map build.
    pub fn build(keys: &[Option<K>], threads: usize) -> PartitionedIndex<K> {
        if threads <= 1 || keys.len() < MIN_PARTITIONED_BUILD {
            return PartitionedIndex {
                parts: vec![Self::build_one(keys)],
                bits: 0,
            };
        }
        let p = threads.next_power_of_two().min(64);
        let bits = p.trailing_zeros();
        // Phase 1: bucket row ids per (morsel, partition) — morsel-parallel,
        // each row hashed once.
        let buckets: Vec<Vec<Vec<u32>>> = crate::pool::par_morsels(
            threads,
            keys.len(),
            PARTITION_MORSEL,
            "index-partition",
            |_, r| {
                let mut local: Vec<Vec<u32>> = vec![Vec::new(); p];
                for i in r {
                    if let Some(k) = &keys[i] {
                        local[partition_of(fx_hash_one(k), bits)].push(i as u32);
                    }
                }
                Ok(local)
            },
        )
        .expect("partition pass is infallible")
        .results;
        // Phase 2: one worker per partition inserts its buckets in morsel
        // order (ascending row ids) — O(n) total across all workers.
        let parts = crate::pool::par_indexed(threads, p, "index-build", |pi| {
            let mut m: FxHashMap<K, Vec<u32>> = FxHashMap::default();
            for morsel in &buckets {
                for &i in &morsel[pi] {
                    if let Some(k) = keys[i as usize] {
                        m.entry(k).or_default().push(i);
                    }
                }
            }
            m
        });
        PartitionedIndex { parts, bits }
    }

    fn build_one(keys: &[Option<K>]) -> FxHashMap<K, Vec<u32>> {
        let mut m: FxHashMap<K, Vec<u32>> = FxHashMap::default();
        for (i, k) in keys.iter().enumerate() {
            if let Some(k) = k {
                m.entry(*k).or_default().push(i as u32);
            }
        }
        m
    }

    /// The build-side rows matching `k`, in ascending row order.
    #[inline]
    pub fn get(&self, k: &K) -> Option<&[u32]> {
        let part = if self.bits == 0 {
            &self.parts[0]
        } else {
            &self.parts[partition_of(fx_hash_one(k), self.bits)]
        };
        part.get(k).map(|v| v.as_slice())
    }

    /// Number of physical partitions (1 = unpartitioned serial build).
    pub fn num_partitions(&self) -> usize {
        self.parts.len()
    }

    /// `true` when the build actually partitioned (and ran concurrently).
    pub fn partitioned(&self) -> bool {
        self.bits != 0
    }
}

/// Partition of a hash under a `2^bits`-way split: bits 51.. up to the tag
/// boundary — below hashbrown's top-7 h2 tag bits, above its low h1 bucket
/// bits, so neither per-map mechanism degenerates within a partition
/// (`bits <= 6`, matching the 64-partition cap).
#[inline]
fn partition_of(hash: u64, bits: u32) -> usize {
    ((hash >> (57 - bits)) & ((1 << bits) - 1)) as usize
}

/// First-occurrence indices of distinct keys.
pub fn distinct_keep<K: std::hash::Hash + Eq + Copy>(keys: &[K]) -> Vec<usize> {
    let mut seen: FxHashSet<K> = FxHashSet::default();
    let mut keep = Vec::new();
    for (i, k) in keys.iter().enumerate() {
        if seen.insert(*k) {
            keep.push(i);
        }
    }
    keep
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::value::Value;
    use std::hash::{BuildHasher, Hash};

    fn hash_of<T: Hash>(t: &T) -> u64 {
        FxBuildHasher::default().hash_one(t)
    }

    #[test]
    fn hashing_is_deterministic() {
        assert_eq!(hash_of(&42u64), hash_of(&42u64));
        assert_eq!(hash_of(&"abc"), hash_of(&"abc"));
        assert_ne!(hash_of(&"abc"), hash_of(&"abd"));
    }

    #[test]
    fn encode_distinguishes_types() {
        let mut a = Vec::new();
        let mut b = Vec::new();
        encode_value(&mut a, &Value::Int(1));
        encode_value(&mut b, &Value::Bool(true));
        assert_ne!(a, b);
    }

    #[test]
    fn encode_composite_keys_are_unambiguous() {
        // ("ab", "c") must differ from ("a", "bc") thanks to length prefixes.
        let mut k1 = Vec::new();
        encode_value(&mut k1, &Value::Str("ab".into()));
        encode_value(&mut k1, &Value::Str("c".into()));
        let mut k2 = Vec::new();
        encode_value(&mut k2, &Value::Str("a".into()));
        encode_value(&mut k2, &Value::Str("bc".into()));
        assert_ne!(k1, k2);
    }

    #[test]
    fn encode_normalizes_negative_zero() {
        let mut a = Vec::new();
        let mut b = Vec::new();
        encode_value(&mut a, &Value::Float(0.0));
        encode_value(&mut b, &Value::Float(-0.0));
        assert_eq!(a, b);
    }

    fn nullable_int(vals: &[Option<i64>]) -> Column {
        let mut c = Column::new(crate::column::DType::Int);
        for v in vals {
            match v {
                Some(x) => c.push(Value::Int(*x)).unwrap(),
                None => c.push_null(),
            }
        }
        c
    }

    #[test]
    fn plan_picks_minimal_width() {
        let i = Column::from_i64(vec![1]);
        let d = Column::from_dates(vec![1]);
        let b = Column::from_bool(vec![true]);
        let s = Column::from_strs(&["x"]);
        let f = Column::from_f64(vec![1.0]);
        let w = |cols: &[&Column], nm: bool| FixedKeySpec::plan(&[cols], nm).map(|s| s.width());
        assert_eq!(w(&[&i], false), Some(KeyWidth::U64));
        assert_eq!(w(&[&d, &d], false), Some(KeyWidth::U64)); // 32 + 32
        assert_eq!(w(&[&i, &i], false), Some(KeyWidth::U128));
        assert_eq!(w(&[&i, &d], false), Some(KeyWidth::U128)); // 64 + 32
        assert_eq!(w(&[&i, &b], false), Some(KeyWidth::U128)); // 64 + 1
        assert_eq!(w(&[&i, &i, &i], false), None);
        assert_eq!(w(&[&s], false), None);
        assert_eq!(w(&[&f], false), None);
        // A nullable column only costs a bit under group semantics.
        let ni = nullable_int(&[Some(1), None]);
        assert_eq!(w(&[&ni], false), Some(KeyWidth::U64));
        assert_eq!(w(&[&ni], true), Some(KeyWidth::U128)); // 64 + 1 null bit
    }

    #[test]
    fn plan_unifies_widths_across_sides() {
        // Int joined against Date: both sides get a 64-bit slot, so equal
        // values pack identically.
        let l = Column::from_i64(vec![5, -3]);
        let r = Column::from_dates(vec![5, -3]);
        let spec = FixedKeySpec::plan(&[&[&l], &[&r]], false).unwrap();
        let (lk, _) = spec.pack_u64(&[&l]);
        let (rk, _) = spec.pack_u64(&[&r]);
        assert_eq!(lk, rk);
    }

    #[test]
    fn pack_distinguishes_null_from_zero_under_group_semantics() {
        let c = nullable_int(&[Some(0), None, None]);
        let spec = FixedKeySpec::plan(&[&[&c]], true).unwrap();
        let (keys, skip) = spec.pack_u128(&[&c]);
        assert!(skip.is_none());
        assert_ne!(keys[0], keys[1]); // 0 != NULL
        assert_eq!(keys[1], keys[2]); // NULL == NULL
    }

    #[test]
    fn pack_flags_null_rows_under_join_semantics() {
        let c = nullable_int(&[Some(7), None]);
        let spec = FixedKeySpec::plan(&[&[&c]], false).unwrap();
        let (keys, skip) = spec.pack_u64(&[&c]);
        assert_eq!(keys[0], 7);
        assert_eq!(skip, Some(vec![false, true]));
    }

    #[test]
    fn arena_raw_matches_encode_value() {
        let i = nullable_int(&[Some(3), None]);
        let s = Column::from_strs(&["ab", "c"]);
        let arena = KeyArena::encode_raw(&[&i, &s], false);
        for row in 0..2 {
            let mut want = Vec::new();
            encode_value(&mut want, &i.get(row));
            encode_value(&mut want, &s.get(row));
            assert_eq!(arena.key(row), Some(want.as_slice()));
        }
        assert_eq!(arena.dense_keys().len(), 2);
    }

    #[test]
    fn sql_encodings_unify_int_like_positions_exactly() {
        // Int joined against Date: both sides encode as exact i64, matching
        // the packed fast path's slot unification.
        let i = Column::from_i64(vec![4]);
        let d = Column::from_dates(vec![4]);
        let enc = sql_key_encodings(&[&[&i], &[&d]]);
        assert_eq!(enc, vec![KeyEncoding::Int64]);
        let a = KeyArena::encode(&[&i], &enc, false);
        let b = KeyArena::encode(&[&d], &enc, false);
        assert_eq!(a.key(0), b.key(0));
    }

    #[test]
    fn sql_encodings_widen_to_f64_only_with_floats() {
        let i = Column::from_i64(vec![4]);
        let f = Column::from_f64(vec![4.0]);
        let s = Column::from_strs(&["x"]);
        let enc = sql_key_encodings(&[&[&i, &s], &[&f, &s]]);
        assert_eq!(enc, vec![KeyEncoding::Float64, KeyEncoding::Raw]);
        let a = KeyArena::encode(&[&i, &s], &enc, false);
        let b = KeyArena::encode(&[&f, &s], &enc, false);
        // 4 == 4.0 under SQL semantics (normalize_key + encode_value).
        assert_eq!(a.key(0), b.key(0));
        let mut want = Vec::new();
        encode_value(&mut want, &normalize_key(Value::Int(4)));
        encode_value(&mut want, &Value::Str("x".into()));
        assert_eq!(a.key(0), Some(want.as_slice()));
    }

    #[test]
    fn partitioned_index_matches_serial_build() {
        // Enough rows to cross MIN_PARTITIONED_BUILD, with NULLs sprinkled in.
        let n = MIN_PARTITIONED_BUILD + 1234;
        let keys: Vec<Option<u64>> = (0..n)
            .map(|i| {
                if i % 97 == 0 {
                    None
                } else {
                    Some((i % 4096) as u64)
                }
            })
            .collect();
        let serial = PartitionedIndex::build(&keys, 1);
        assert!(!serial.partitioned());
        let par = PartitionedIndex::build(&keys, 7);
        assert!(par.partitioned());
        assert_eq!(par.num_partitions(), 8);
        for probe in 0..5000u64 {
            assert_eq!(serial.get(&probe), par.get(&probe), "key {probe}");
        }
        // Row lists are ascending (single-build order) in both layouts.
        let rows = par.get(&7).unwrap();
        assert!(rows.windows(2).all(|w| w[0] < w[1]));
    }

    #[test]
    fn small_builds_stay_unpartitioned() {
        let keys: Vec<Option<u64>> = (0..100).map(Some).collect();
        let idx = PartitionedIndex::build(&keys, 8);
        assert_eq!(idx.num_partitions(), 1);
        assert_eq!(idx.get(&5), Some(&[5u32][..]));
        assert_eq!(idx.get(&1000), None);
    }

    #[test]
    fn arena_skips_null_keys_in_join_mode() {
        let i = nullable_int(&[Some(1), None]);
        let arena = KeyArena::encode(&[&i], &[KeyEncoding::Int64], true);
        assert!(arena.key(0).is_some());
        assert_eq!(arena.key(1), None);
    }
}
