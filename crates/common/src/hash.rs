//! Fast non-cryptographic hashing for join/group keys.
//!
//! The engine's hash joins and aggregations are dominated by hashing short
//! integer/string keys, where the std `SipHash` is needlessly slow. This is
//! the well-known `FxHash` multiply-xor scheme (as used by rustc), implemented
//! locally to keep the dependency set minimal.

use std::hash::{BuildHasherDefault, Hasher};

/// Multiply-xor hasher (FxHash). Not DoS-resistant; keys are internal.
#[derive(Default, Clone)]
pub struct FxHasher {
    hash: u64,
}

const SEED: u64 = 0x51_7c_c1_b7_27_22_0a_95;

impl FxHasher {
    #[inline]
    fn add_to_hash(&mut self, i: u64) {
        self.hash = (self.hash.rotate_left(5) ^ i).wrapping_mul(SEED);
    }
}

impl Hasher for FxHasher {
    #[inline]
    fn write(&mut self, bytes: &[u8]) {
        let mut chunks = bytes.chunks_exact(8);
        for c in &mut chunks {
            self.add_to_hash(u64::from_le_bytes(c.try_into().unwrap()));
        }
        let rem = chunks.remainder();
        if !rem.is_empty() {
            let mut buf = [0u8; 8];
            buf[..rem.len()].copy_from_slice(rem);
            self.add_to_hash(u64::from_le_bytes(buf));
        }
    }

    #[inline]
    fn write_u64(&mut self, i: u64) {
        self.add_to_hash(i);
    }

    #[inline]
    fn write_u32(&mut self, i: u32) {
        self.add_to_hash(u64::from(i));
    }

    #[inline]
    fn write_usize(&mut self, i: usize) {
        self.add_to_hash(i as u64);
    }

    #[inline]
    fn finish(&self) -> u64 {
        self.hash
    }
}

/// `BuildHasher` for [`FxHasher`].
pub type FxBuildHasher = BuildHasherDefault<FxHasher>;

/// `HashMap` keyed with [`FxHasher`].
pub type FxHashMap<K, V> = std::collections::HashMap<K, V, FxBuildHasher>;

/// `HashSet` keyed with [`FxHasher`].
pub type FxHashSet<K> = std::collections::HashSet<K, FxBuildHasher>;

/// Encodes one scalar into `buf` as a self-delimiting byte string so composite
/// keys can be compared byte-wise. Integers that compare equal to floats do
/// **not** encode equal — callers normalize numeric key columns first.
pub fn encode_value(buf: &mut Vec<u8>, v: &crate::value::Value) {
    use crate::value::Value;
    match v {
        Value::Null => buf.push(0),
        Value::Int(i) => {
            buf.push(1);
            buf.extend_from_slice(&i.to_le_bytes());
        }
        Value::Float(f) => {
            buf.push(2);
            // Normalize -0.0 and NaN payloads so equal floats encode equal.
            let canonical = if *f == 0.0 {
                0.0f64
            } else if f.is_nan() {
                f64::NAN
            } else {
                *f
            };
            buf.extend_from_slice(&canonical.to_bits().to_le_bytes());
        }
        Value::Bool(b) => buf.extend_from_slice(&[3, u8::from(*b)]),
        Value::Str(s) => {
            buf.push(4);
            buf.extend_from_slice(&(s.len() as u32).to_le_bytes());
            buf.extend_from_slice(s.as_bytes());
        }
        Value::Date(d) => {
            buf.push(5);
            buf.extend_from_slice(&d.to_le_bytes());
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::value::Value;
    use std::hash::{BuildHasher, Hash};

    fn hash_of<T: Hash>(t: &T) -> u64 {
        FxBuildHasher::default().hash_one(t)
    }

    #[test]
    fn hashing_is_deterministic() {
        assert_eq!(hash_of(&42u64), hash_of(&42u64));
        assert_eq!(hash_of(&"abc"), hash_of(&"abc"));
        assert_ne!(hash_of(&"abc"), hash_of(&"abd"));
    }

    #[test]
    fn encode_distinguishes_types() {
        let mut a = Vec::new();
        let mut b = Vec::new();
        encode_value(&mut a, &Value::Int(1));
        encode_value(&mut b, &Value::Bool(true));
        assert_ne!(a, b);
    }

    #[test]
    fn encode_composite_keys_are_unambiguous() {
        // ("ab", "c") must differ from ("a", "bc") thanks to length prefixes.
        let mut k1 = Vec::new();
        encode_value(&mut k1, &Value::Str("ab".into()));
        encode_value(&mut k1, &Value::Str("c".into()));
        let mut k2 = Vec::new();
        encode_value(&mut k2, &Value::Str("a".into()));
        encode_value(&mut k2, &Value::Str("bc".into()));
        assert_ne!(k1, k2);
    }

    #[test]
    fn encode_normalizes_negative_zero() {
        let mut a = Vec::new();
        let mut b = Vec::new();
        encode_value(&mut a, &Value::Float(0.0));
        encode_value(&mut b, &Value::Float(-0.0));
        assert_eq!(a, b);
    }
}
