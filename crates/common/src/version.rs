//! Epoch-style snapshot publication: the primitive under the engine's
//! copy-on-append table versioning (see `docs/SERVING.md`).
//!
//! A [`Versioned<T>`] cell holds one immutable, `Arc`-shared value — the
//! *current version*. Readers [`Versioned::load`] the current `Arc` (a
//! pointer clone under a momentary read lock) and then work against that
//! pinned value for as long as they like, entirely lock-free; writers build
//! a replacement value off to the side and [`Versioned::publish`] it with a
//! momentary write lock. Old versions stay alive exactly as long as some
//! reader still holds their `Arc` — publication never blocks, invalidates
//! or tears an in-flight reader.
//!
//! The build environment is std-only (no `arc-swap`), so the swap point is
//! a [`RwLock<Arc<T>>`]: the lock is held only for the duration of an `Arc`
//! clone or pointer store, never across reader work.

use std::sync::{Arc, RwLock};

/// An atomically publishable, `Arc`-shared current version of `T`.
///
/// `load` pins the current version; `publish` replaces it. See the module
/// docs for the locking discipline. Writers that derive the next version
/// from the current one (read–modify–publish) must serialize among
/// themselves externally — e.g. the database's single writer mutex —
/// otherwise two writers could both base their copy on the same parent and
/// one update would be lost.
#[derive(Debug)]
pub struct Versioned<T> {
    current: RwLock<Arc<T>>,
}

impl<T> Versioned<T> {
    /// A cell whose current version is `value`.
    pub fn new(value: T) -> Versioned<T> {
        Versioned {
            current: RwLock::new(Arc::new(value)),
        }
    }

    /// Pins the current version: clones the `Arc` under a momentary read
    /// lock. The returned handle stays valid (and immutable) no matter how
    /// many newer versions are published afterwards.
    pub fn load(&self) -> Arc<T> {
        self.current.read().expect("version cell poisoned").clone()
    }

    /// Publishes `next` as the new current version. In-flight readers keep
    /// the version they pinned; only subsequent [`Versioned::load`] calls
    /// observe `next`.
    pub fn publish(&self, next: Arc<T>) {
        *self.current.write().expect("version cell poisoned") = next;
    }
}

impl<T: Default> Default for Versioned<T> {
    fn default() -> Versioned<T> {
        Versioned::new(T::default())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn readers_keep_their_pinned_version_across_publishes() {
        let cell = Versioned::new(vec![1, 2, 3]);
        let pinned = cell.load();
        cell.publish(Arc::new(vec![4]));
        assert_eq!(*pinned, vec![1, 2, 3], "pinned snapshot must not move");
        assert_eq!(*cell.load(), vec![4], "new loads see the new version");
    }

    #[test]
    fn publication_is_visible_across_threads() {
        let cell = Arc::new(Versioned::new(0u64));
        let writer = {
            let cell = cell.clone();
            std::thread::spawn(move || {
                for v in 1..=100u64 {
                    cell.publish(Arc::new(v));
                }
            })
        };
        // Loads observe a monotone prefix of the writer's publications —
        // never a torn or out-of-thin-air value.
        let mut last = 0;
        for _ in 0..1000 {
            let v = *cell.load();
            assert!(v >= last && v <= 100, "non-monotone read: {last} -> {v}");
            last = v;
        }
        writer.join().unwrap();
        assert_eq!(*cell.load(), 100);
    }
}
