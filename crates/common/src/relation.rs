//! Named-column relations: the result-set type shared by the engine, the
//! DataFrame baseline, and the differential test harness.

use crate::column::{Column, DType};
use crate::error::{Error, Result};
use crate::value::Value;
use std::fmt;

/// An ordered collection of named columns of equal length.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct Relation {
    cols: Vec<(String, Column)>,
}

impl Relation {
    /// Creates an empty relation with no columns.
    pub fn empty() -> Relation {
        Relation { cols: Vec::new() }
    }

    /// Builds a relation from `(name, column)` pairs, validating that all
    /// columns have the same length and names are unique.
    pub fn new(cols: Vec<(String, Column)>) -> Result<Relation> {
        if let Some((_, first)) = cols.first() {
            let n = first.len();
            for (name, c) in &cols {
                if c.len() != n {
                    return Err(Error::Data(format!(
                        "column '{name}' has {} rows, expected {n}",
                        c.len()
                    )));
                }
            }
        }
        for i in 0..cols.len() {
            for j in (i + 1)..cols.len() {
                if cols[i].0 == cols[j].0 {
                    return Err(Error::Data(format!("duplicate column '{}'", cols[i].0)));
                }
            }
        }
        Ok(Relation { cols })
    }

    /// Number of rows (0 when there are no columns).
    pub fn num_rows(&self) -> usize {
        self.cols.first().map_or(0, |(_, c)| c.len())
    }

    /// Number of columns.
    pub fn num_cols(&self) -> usize {
        self.cols.len()
    }

    /// Estimated heap footprint in bytes (sum of [`Column::heap_bytes`]
    /// over all columns). Used by the per-query memory budget to charge
    /// materialized intermediates.
    pub fn heap_bytes(&self) -> u64 {
        self.cols.iter().map(|(_, c)| c.heap_bytes()).sum()
    }

    /// Column names in schema order.
    pub fn names(&self) -> Vec<&str> {
        self.cols.iter().map(|(n, _)| n.as_str()).collect()
    }

    /// `(name, dtype)` pairs in schema order.
    pub fn schema(&self) -> Vec<(String, DType)> {
        self.cols
            .iter()
            .map(|(n, c)| (n.clone(), c.dtype()))
            .collect()
    }

    /// Looks a column up by name.
    pub fn column(&self, name: &str) -> Option<&Column> {
        self.cols.iter().find(|(n, _)| n == name).map(|(_, c)| c)
    }

    /// The `i`-th column.
    pub fn column_at(&self, i: usize) -> &Column {
        &self.cols[i].1
    }

    /// The `i`-th column name.
    pub fn name_at(&self, i: usize) -> &str {
        &self.cols[i].0
    }

    /// All `(name, column)` pairs.
    pub fn columns(&self) -> &[(String, Column)] {
        &self.cols
    }

    /// Adds a column; its length must match.
    pub fn push_column(&mut self, name: impl Into<String>, col: Column) -> Result<()> {
        let name = name.into();
        if !self.cols.is_empty() && col.len() != self.num_rows() {
            return Err(Error::Data(format!(
                "column '{name}' has {} rows, expected {}",
                col.len(),
                self.num_rows()
            )));
        }
        if self.column(&name).is_some() {
            return Err(Error::Data(format!("duplicate column '{name}'")));
        }
        self.cols.push((name, col));
        Ok(())
    }

    /// Reads a single cell.
    pub fn get(&self, row: usize, col: &str) -> Option<Value> {
        self.column(col).map(|c| c.get(row))
    }

    /// Returns one row as scalars, in schema order.
    pub fn row(&self, i: usize) -> Vec<Value> {
        self.cols.iter().map(|(_, c)| c.get(i)).collect()
    }

    /// Canonical form for order-insensitive comparison: rows sorted by the
    /// total order of their values, column order preserved.
    pub fn canonicalized(&self) -> Relation {
        let n = self.num_rows();
        let mut idx: Vec<usize> = (0..n).collect();
        idx.sort_by(|&a, &b| {
            for (_, c) in &self.cols {
                let ord = c.get(a).total_cmp(&c.get(b));
                if ord != std::cmp::Ordering::Equal {
                    return ord;
                }
            }
            std::cmp::Ordering::Equal
        });
        Relation {
            cols: self
                .cols
                .iter()
                .map(|(n, c)| (n.clone(), c.gather(&idx)))
                .collect(),
        }
    }

    /// Approximate equality for differential testing: same shape, same values
    /// within `tol` for floats, exact otherwise. Column *names* are not
    /// compared (the compiled path and the interpreted path may label columns
    /// differently); column order and content are.
    pub fn approx_eq(&self, other: &Relation, tol: f64) -> bool {
        self.diff(other, tol).is_none()
    }

    /// Like [`Relation::approx_eq`] but explains the first difference found.
    pub fn diff(&self, other: &Relation, tol: f64) -> Option<String> {
        if self.num_cols() != other.num_cols() {
            return Some(format!(
                "column count {} vs {}",
                self.num_cols(),
                other.num_cols()
            ));
        }
        if self.num_rows() != other.num_rows() {
            return Some(format!(
                "row count {} vs {}",
                self.num_rows(),
                other.num_rows()
            ));
        }
        for ci in 0..self.num_cols() {
            let a = self.column_at(ci);
            let b = other.column_at(ci);
            for i in 0..a.len() {
                let va = a.get(i);
                let vb = b.get(i);
                if !value_approx_eq(&va, &vb, tol) {
                    return Some(format!(
                        "cell ({i}, {}): {va:?} vs {vb:?}",
                        self.name_at(ci)
                    ));
                }
            }
        }
        None
    }

    /// Renders the relation as an aligned ASCII table (used by examples).
    pub fn to_table_string(&self, max_rows: usize) -> String {
        let mut widths: Vec<usize> = self.cols.iter().map(|(n, _)| n.len()).collect();
        let nrows = self.num_rows().min(max_rows);
        let mut cells: Vec<Vec<String>> = Vec::with_capacity(nrows);
        for i in 0..nrows {
            let row: Vec<String> = self
                .cols
                .iter()
                .map(|(_, c)| c.get(i).to_string())
                .collect();
            for (w, cell) in widths.iter_mut().zip(&row) {
                *w = (*w).max(cell.len());
            }
            cells.push(row);
        }
        let mut out = String::new();
        let header: Vec<String> = self
            .cols
            .iter()
            .zip(&widths)
            .map(|((n, _), w)| format!("{n:>w$}"))
            .collect();
        out.push_str(&header.join("  "));
        out.push('\n');
        for row in &cells {
            let line: Vec<String> = row
                .iter()
                .zip(&widths)
                .map(|(c, w)| format!("{c:>w$}"))
                .collect();
            out.push_str(&line.join("  "));
            out.push('\n');
        }
        if self.num_rows() > max_rows {
            out.push_str(&format!("... ({} rows total)\n", self.num_rows()));
        }
        out
    }
}

/// Scalar approximate equality used by [`Relation::diff`]: numerics compare
/// as f64 within `tol` (relative for large magnitudes), everything else exact.
pub fn value_approx_eq(a: &Value, b: &Value, tol: f64) -> bool {
    match (a, b) {
        (Value::Null, Value::Null) => true,
        (Value::Str(x), Value::Str(y)) => x == y,
        (Value::Bool(x), Value::Bool(y)) => x == y,
        (Value::Date(x), Value::Date(y)) => x == y,
        _ => match (a.as_f64(), b.as_f64()) {
            (Some(x), Some(y)) => {
                let scale = x.abs().max(y.abs()).max(1.0);
                (x - y).abs() <= tol * scale
            }
            _ => false,
        },
    }
}

impl fmt::Display for Relation {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.to_table_string(20))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> Relation {
        Relation::new(vec![
            ("a".into(), Column::from_i64(vec![3, 1, 2])),
            ("b".into(), Column::from_strs(&["x", "y", "z"])),
        ])
        .unwrap()
    }

    #[test]
    fn construction_validates_lengths() {
        let r = Relation::new(vec![
            ("a".into(), Column::from_i64(vec![1])),
            ("b".into(), Column::from_i64(vec![1, 2])),
        ]);
        assert!(r.is_err());
    }

    #[test]
    fn construction_rejects_duplicates() {
        let r = Relation::new(vec![
            ("a".into(), Column::from_i64(vec![1])),
            ("a".into(), Column::from_i64(vec![2])),
        ]);
        assert!(r.is_err());
    }

    #[test]
    fn canonicalize_sorts_rows() {
        let c = sample().canonicalized();
        assert_eq!(c.column("a").unwrap().as_int(), &[1, 2, 3]);
        assert_eq!(c.column("b").unwrap().as_str_col()[0], "y");
    }

    #[test]
    fn approx_eq_tolerates_float_noise() {
        let a = Relation::new(vec![("x".into(), Column::from_f64(vec![1.0]))]).unwrap();
        let b = Relation::new(vec![("y".into(), Column::from_f64(vec![1.0 + 1e-12]))]).unwrap();
        assert!(a.approx_eq(&b, 1e-9));
        let c = Relation::new(vec![("y".into(), Column::from_f64(vec![1.1]))]).unwrap();
        assert!(!a.approx_eq(&c, 1e-9));
    }

    #[test]
    fn approx_eq_mixes_int_and_float() {
        let a = Relation::new(vec![("x".into(), Column::from_i64(vec![2]))]).unwrap();
        let b = Relation::new(vec![("x".into(), Column::from_f64(vec![2.0]))]).unwrap();
        assert!(a.approx_eq(&b, 1e-9));
    }

    #[test]
    fn diff_reports_location() {
        let a = sample();
        let mut b = sample();
        b = Relation::new(
            b.columns()
                .iter()
                .map(|(n, c)| {
                    if n == "a" {
                        (n.clone(), Column::from_i64(vec![3, 1, 99]))
                    } else {
                        (n.clone(), c.clone())
                    }
                })
                .collect(),
        )
        .unwrap();
        let d = a.diff(&b, 1e-9).unwrap();
        assert!(d.contains("(2, a)"), "{d}");
    }

    #[test]
    fn table_rendering_truncates() {
        let r = Relation::new(vec![(
            "n".into(),
            Column::from_i64((0..50).collect::<Vec<i64>>()),
        )])
        .unwrap();
        let s = r.to_table_string(5);
        assert!(s.contains("50 rows total"));
    }
}
