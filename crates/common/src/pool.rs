//! Morsel-driven shared worker pool + query admission (std-only).
//!
//! The engine's parallelism is *morsel-driven* (Leis et al., SIGMOD 2014, as
//! cited by PyTond's "efficient multi-threaded query processing"): work is a
//! fixed grid of row ranges ("morsels"), workers claim the next unclaimed
//! morsel from a shared atomic cursor, and the per-morsel outputs are
//! stitched back together **in morsel order**. Because the grid depends only
//! on the input size — never on the worker count — and the merge order is
//! fixed, every operator built on this pool produces bit-identical results
//! at any thread count (see `docs/EXECUTION.md` for the full determinism
//! argument).
//!
//! The build environment has no crates.io access, so there is no rayon here.
//! Workers are **long-lived process-wide threads** sharing one job queue:
//! instead of every operator of every query spawning its own
//! `std::thread::scope`, a parallel operator enqueues one *job* (its
//! morsel-claim loop) asking for up to `threads − 1` helpers, runs the loop
//! on its own thread too, and idle pool workers pick jobs up oldest-first.
//! Concurrent queries therefore *multiplex* over one shared worker set —
//! the total number of live worker threads is bounded by the largest single
//! request, not by the number of in-flight queries (see `docs/SERVING.md`
//! for the serving-level scheduling model). At `threads <= 1` (or a
//! single-morsel grid) no job is ever enqueued and the closure runs inline
//! on the caller's stack — the serial path.
//!
//! The [`Admission`] gate sits above the pool: a serving layer admits each
//! query before execution, bounding how many queries compute simultaneously
//! and measuring the time each one queued (`PYTOND_ADMIT` sets the
//! capacity; the wait surfaces in `QueryTrace`).

use crate::error::Error;
use crate::fault::{self, FaultSite};
use crate::Result;
use std::collections::VecDeque;
use std::ops::Range;
use std::sync::atomic::{AtomicBool, AtomicUsize, Ordering};
use std::sync::{Arc, Condvar, Mutex, OnceLock};
use std::time::{Duration, Instant};

/// The machine's hardware parallelism (1 if it cannot be determined).
/// Cached: the underlying `available_parallelism` probes cgroup files on
/// Linux (~10 µs), which would dwarf a point query if paid per call.
pub fn hardware_threads() -> usize {
    static CACHED: OnceLock<usize> = OnceLock::new();
    *CACHED.get_or_init(|| std::thread::available_parallelism().map_or(1, |n| n.get()))
}

/// The default worker count: the `PYTOND_THREADS` environment variable when
/// set to a positive integer, otherwise [`hardware_threads`]. This is what a
/// thread count of `0` ("auto") resolves to everywhere in the engine.
/// Read **once per process** (serving hot paths resolve it per query); set
/// the variable before the first query, not between queries.
pub fn default_threads() -> usize {
    static CACHED: OnceLock<usize> = OnceLock::new();
    *CACHED.get_or_init(|| match std::env::var("PYTOND_THREADS") {
        Ok(v) => v
            .trim()
            .parse::<usize>()
            .ok()
            .filter(|&n| n > 0)
            .unwrap_or_else(hardware_threads),
        Err(_) => hardware_threads(),
    })
}

/// Resolves a configured thread count: `0` means "auto"
/// ([`default_threads`]), anything else is taken literally.
pub fn resolve_threads(configured: usize) -> usize {
    if configured == 0 {
        default_threads()
    } else {
        configured
    }
}

const POISON: &str = "pytond pool state poisoned";

/// One lifetime-erased unit of shared-pool work: the morsel-claim loop of a
/// single parallel operator invocation.
///
/// `work` is the submitting operator's claim loop with its lifetime erased
/// to `'static`. This is sound for the same reason [`std::thread::scope`]
/// is: the submitter blocks inside [`SharedPool::run_job`] (via
/// [`JoinGuard`], which also runs on unwind) until `active` returns to
/// zero, so no worker can observe the closure after the submitting stack
/// frame dies.
struct Job {
    work: &'static (dyn Fn() + Sync),
    /// Diagnostic label identifying the submitting operator and its query
    /// context (e.g. `scan q@v3`); carried into the submitter's re-raise so
    /// a panic names the work that died.
    label: String,
    /// Helper slots still open: workers decrement one to join the job.
    /// All mutations happen under the pool's state mutex; the atomics exist
    /// for `Sync`, not for lock-free access.
    slots: AtomicUsize,
    /// Helpers currently inside `work`.
    active: AtomicUsize,
    /// Set when a helper panicked inside `work`; re-raised by the submitter.
    panicked: AtomicBool,
    /// The first panicking helper's payload (when it was a string), carried
    /// into the submitter's re-raise.
    panic_msg: Mutex<Option<String>>,
}

/// Best-effort extraction of a panic payload's message (covers the `&str`
/// and `String` payloads produced by `panic!`).
fn panic_message(payload: &(dyn std::any::Any + Send)) -> String {
    if let Some(s) = payload.downcast_ref::<&str>() {
        (*s).to_string()
    } else if let Some(s) = payload.downcast_ref::<String>() {
        s.clone()
    } else {
        "<non-string panic payload>".to_string()
    }
}

#[derive(Default)]
struct PoolState {
    /// Pending jobs, oldest first. A job stays queued until its submitter
    /// finishes or its helper slots run out; idle workers serve the oldest
    /// job that still has open slots, which is what multiplexes concurrent
    /// queries fairly over one worker set.
    jobs: VecDeque<Arc<Job>>,
    /// Workers currently parked on `work_cv`.
    idle: usize,
    /// Workers ever spawned (they are process-lived).
    spawned: usize,
}

/// The process-wide shared morsel pool: long-lived workers + one job queue.
struct SharedPool {
    state: Mutex<PoolState>,
    /// Workers park here waiting for jobs.
    work_cv: Condvar,
    /// Submitters park here waiting for their helpers to drain.
    done_cv: Condvar,
}

/// The process-wide pool instance. Workers are spawned lazily on first
/// demand and never exit; an idle pool costs a few parked threads.
fn shared() -> &'static SharedPool {
    static POOL: OnceLock<SharedPool> = OnceLock::new();
    POOL.get_or_init(|| SharedPool {
        state: Mutex::new(PoolState::default()),
        work_cv: Condvar::new(),
        done_cv: Condvar::new(),
    })
}

/// Number of long-lived pool workers spawned so far in this process (the
/// high-water mark of concurrent helper demand). Observability only.
pub fn pool_workers_spawned() -> usize {
    shared().state.lock().expect(POISON).spawned
}

/// Removes the job from the queue and waits for its active helpers to
/// drain. Runs on both the normal and the unwind path of
/// [`SharedPool::run_job`] — if the submitter's own claim loop panics, the
/// stack frame the helpers borrow from must still outlive them.
struct JoinGuard<'a> {
    pool: &'static SharedPool,
    job: &'a Arc<Job>,
}

impl Drop for JoinGuard<'_> {
    fn drop(&mut self) {
        let mut st = self.pool.state.lock().expect(POISON);
        self.job.slots.store(0, Ordering::Relaxed);
        if let Some(pos) = st.jobs.iter().position(|j| Arc::ptr_eq(j, self.job)) {
            st.jobs.remove(pos);
        }
        while self.job.active.load(Ordering::Relaxed) > 0 {
            st = self.pool.done_cv.wait(st).expect(POISON);
        }
    }
}

impl SharedPool {
    /// Runs `work` on the submitting thread plus up to `helpers` pool
    /// workers, returning when every participant is done. Panics raised by
    /// a helper are re-raised here with `label` (the submitting operator +
    /// query context) and the helper's own panic message in the payload.
    fn run_job(&'static self, helpers: usize, label: &str, work: &(dyn Fn() + Sync)) {
        if helpers == 0 {
            work();
            return;
        }
        // SAFETY: lifetime erasure; see `Job::work`. The `JoinGuard` below
        // guarantees the borrow outlives every worker's use of it.
        let work_static =
            unsafe { std::mem::transmute::<&(dyn Fn() + Sync), &'static (dyn Fn() + Sync)>(work) };
        let job = Arc::new(Job {
            work: work_static,
            label: label.to_string(),
            slots: AtomicUsize::new(helpers),
            active: AtomicUsize::new(0),
            panicked: AtomicBool::new(false),
            panic_msg: Mutex::new(None),
        });
        {
            let mut st = self.state.lock().expect(POISON);
            st.jobs.push_back(job.clone());
            // Grow the worker set only when demand outstrips the idle
            // supply; over time the pool converges on the largest
            // concurrent helper demand, not the sum over queries.
            for _ in 0..helpers.saturating_sub(st.idle) {
                st.spawned += 1;
                std::thread::Builder::new()
                    .name("pytond-pool".into())
                    .spawn(move || shared().worker_loop())
                    .expect("spawn pool worker");
            }
            self.work_cv.notify_all();
        }
        let guard = JoinGuard {
            pool: self,
            job: &job,
        };
        work();
        drop(guard);
        if job.panicked.load(Ordering::Relaxed) {
            let msg = job
                .panic_msg
                .lock()
                .expect(POISON)
                .take()
                .unwrap_or_else(|| "<unknown>".to_string());
            panic!("morsel worker panicked in job '{}': {}", job.label, msg);
        }
    }

    fn worker_loop(&'static self) {
        let mut st = self.state.lock().expect(POISON);
        loop {
            let next = st
                .jobs
                .iter()
                .find(|j| j.slots.load(Ordering::Relaxed) > 0)
                .cloned();
            match next {
                Some(job) => {
                    job.slots.fetch_sub(1, Ordering::Relaxed);
                    job.active.fetch_add(1, Ordering::Relaxed);
                    drop(st);
                    let outcome = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
                        if fault::injected(FaultSite::PoolDispatch) {
                            panic!("injected fault: pool-dispatch");
                        }
                        (job.work)()
                    }));
                    st = self.state.lock().expect(POISON);
                    if let Err(payload) = outcome {
                        let msg = panic_message(payload.as_ref());
                        job.panic_msg.lock().expect(POISON).get_or_insert(msg);
                        job.panicked.store(true, Ordering::Relaxed);
                    }
                    job.active.fetch_sub(1, Ordering::Relaxed);
                    self.done_cv.notify_all();
                }
                None => {
                    st.idle += 1;
                    st = self.work_cv.wait(st).expect(POISON);
                    st.idle -= 1;
                }
            }
        }
    }
}

// ---------------------------------------------------------------- admission

/// A concurrency gate for whole queries: at most `capacity` tickets are out
/// at once, and [`Admission::admit`] blocks (measuring the wait) until one
/// frees. The serving layer admits every query before execution so a burst
/// of clients degrades into an orderly queue instead of a thread stampede;
/// the measured wait surfaces as `queue wait` in `QueryTrace`. See
/// `docs/SERVING.md`.
#[derive(Debug)]
pub struct Admission {
    /// Maximum concurrently admitted queries; `0` = unlimited (the gate is
    /// a no-op and tickets are free).
    capacity: usize,
    running: Mutex<usize>,
    freed: Condvar,
}

impl Admission {
    /// A gate admitting at most `capacity` concurrent holders (`0` =
    /// unlimited).
    pub fn with_capacity(capacity: usize) -> Admission {
        Admission {
            capacity,
            running: Mutex::new(0),
            freed: Condvar::new(),
        }
    }

    /// The configured capacity (`0` = unlimited).
    pub fn capacity(&self) -> usize {
        self.capacity
    }

    /// Acquires a ticket, blocking while the gate is full. The returned
    /// ticket records how long this call queued and releases its slot on
    /// drop.
    pub fn admit(&self) -> AdmitTicket<'_> {
        self.admit_within(None)
            .expect("unbounded admit cannot be rejected")
    }

    /// Acquires a ticket, waiting at most `timeout` for the gate to open.
    ///
    /// `None` waits unboundedly (identical to [`admit`](Self::admit)); a
    /// zero timeout rejects immediately when the gate is full. On rejection
    /// the call returns the transient [`Error::Overloaded`] — backpressure
    /// the caller may retry with backoff (see [`crate::retry`]).
    pub fn admit_within(&self, timeout: Option<Duration>) -> Result<AdmitTicket<'_>> {
        if self.capacity == 0 {
            return Ok(AdmitTicket {
                gate: None,
                queue_wait_ns: 0,
            });
        }
        let start = Instant::now();
        let mut running = self.running.lock().expect(POISON);
        while *running >= self.capacity {
            match timeout {
                None => running = self.freed.wait(running).expect(POISON),
                Some(limit) => {
                    let elapsed = start.elapsed();
                    if elapsed >= limit {
                        return Err(Error::Overloaded(format!(
                            "admission queue wait exceeded {:.1}ms (capacity {})",
                            limit.as_secs_f64() * 1e3,
                            self.capacity,
                        )));
                    }
                    let (guard, _timed_out) = self
                        .freed
                        .wait_timeout(running, limit - elapsed)
                        .expect(POISON);
                    running = guard;
                }
            }
        }
        *running += 1;
        Ok(AdmitTicket {
            gate: Some(self),
            queue_wait_ns: start.elapsed().as_nanos() as u64,
        })
    }
}

/// Proof of admission for one query; the slot frees when this drops.
#[derive(Debug)]
pub struct AdmitTicket<'a> {
    gate: Option<&'a Admission>,
    /// Nanoseconds this query waited for the gate to open (0 when the gate
    /// is unlimited or had room immediately).
    pub queue_wait_ns: u64,
}

impl Drop for AdmitTicket<'_> {
    fn drop(&mut self) {
        if let Some(gate) = self.gate {
            *gate.running.lock().expect(POISON) -= 1;
            gate.freed.notify_one();
        }
    }
}

/// The process-wide admission gate queries pass through before executing:
/// capacity is `PYTOND_ADMIT` when set to a non-negative integer (`0` =
/// unlimited), else `2 ×` [`hardware_threads`]. Read once per process, like
/// [`default_threads`].
pub fn admission() -> &'static Admission {
    static GATE: OnceLock<Admission> = OnceLock::new();
    GATE.get_or_init(|| {
        let capacity = match std::env::var("PYTOND_ADMIT") {
            Ok(v) => v
                .trim()
                .parse::<usize>()
                .unwrap_or_else(|_| 2 * hardware_threads()),
            Err(_) => 2 * hardware_threads(),
        };
        Admission::with_capacity(capacity)
    })
}

/// The process-wide default admission queue-wait bound:
/// `PYTOND_ADMIT_TIMEOUT_MS` when set to a non-negative integer (`0` =
/// reject immediately when the gate is full), else `None` (wait
/// unboundedly, the pre-resilience behavior). Read once per process, like
/// [`default_threads`].
pub fn default_admit_timeout() -> Option<Duration> {
    static CACHED: OnceLock<Option<Duration>> = OnceLock::new();
    *CACHED.get_or_init(|| {
        std::env::var("PYTOND_ADMIT_TIMEOUT_MS")
            .ok()
            .and_then(|v| v.trim().parse::<u64>().ok())
            .map(Duration::from_millis)
    })
}

/// The result of one [`par_morsels`] run: per-morsel outputs in morsel order
/// plus how many morsels each worker claimed (`[total]` on the serial path).
#[derive(Debug)]
pub struct MorselOutcome<T> {
    /// One output per morsel, in ascending morsel order — independent of
    /// which worker produced it.
    pub results: Vec<T>,
    /// Morsels claimed by each worker, indexed by worker id. Length 1 on the
    /// serial (inline) path.
    pub claimed_per_worker: Vec<u64>,
}

/// Runs `f` over the fixed morsel grid of `[0, n)` with `morsel` rows per
/// morsel, on up to `threads` participants (the calling thread + up to
/// `threads − 1` shared-pool helpers) claiming morsels from a shared atomic
/// cursor. `f` receives `(morsel index, row range)`. `label` names the
/// operator and its query context for panic diagnostics (it appears in the
/// re-raised payload if a helper panics).
///
/// Outputs come back in morsel order, so any order-sensitive merge the
/// caller performs (concatenation, partial-aggregate folding) sees the same
/// sequence at every thread count. With `threads <= 1` or a single-morsel
/// grid the closure runs inline — no job is submitted to the pool. When the
/// pool's workers are busy serving other queries, fewer helpers may arrive
/// (the calling thread always participates, so progress is unconditional);
/// the result is still bit-identical because the grid and the stitch order
/// never depend on who claimed what.
///
/// The first error any participant returns is propagated; remaining morsels
/// may or may not have run (their outputs are discarded).
pub fn par_morsels<T, F>(
    threads: usize,
    n: usize,
    morsel: usize,
    label: &str,
    f: F,
) -> Result<MorselOutcome<T>>
where
    T: Send,
    F: Fn(usize, Range<usize>) -> Result<T> + Sync,
{
    let morsel = morsel.max(1);
    let count = n.div_ceil(morsel);
    let range = |i: usize| (i * morsel)..((i + 1) * morsel).min(n);
    if threads <= 1 || count <= 1 {
        let mut results = Vec::with_capacity(count);
        for i in 0..count {
            results.push(f(i, range(i))?);
        }
        return Ok(MorselOutcome {
            results,
            claimed_per_worker: vec![count as u64],
        });
    }
    let workers = threads.min(count);
    let cursor = AtomicUsize::new(0);
    let abort = AtomicBool::new(false);
    let ordinal = AtomicUsize::new(0);
    let claimed = Mutex::new(vec![0u64; workers]);
    let collected: Mutex<Vec<Vec<(usize, T)>>> = Mutex::new(Vec::new());
    let first_err: Mutex<Option<crate::Error>> = Mutex::new(None);
    let work = || {
        let me = ordinal.fetch_add(1, Ordering::Relaxed);
        let mut local: Vec<(usize, T)> = Vec::new();
        while !abort.load(Ordering::Relaxed) {
            let i = cursor.fetch_add(1, Ordering::Relaxed);
            if i >= count {
                break;
            }
            match f(i, range(i)) {
                Ok(t) => local.push((i, t)),
                Err(e) => {
                    abort.store(true, Ordering::Relaxed);
                    let mut slot = first_err.lock().expect(POISON);
                    if slot.is_none() {
                        *slot = Some(e);
                    }
                    break;
                }
            }
        }
        if let Some(c) = claimed.lock().expect(POISON).get_mut(me) {
            *c = local.len() as u64;
        }
        collected.lock().expect(POISON).push(local);
    };
    shared().run_job(workers - 1, label, &work);
    if let Some(e) = first_err.into_inner().expect(POISON) {
        return Err(e);
    }
    let mut slots: Vec<Option<T>> = (0..count).map(|_| None).collect();
    for local in collected.into_inner().expect(POISON) {
        for (i, t) in local {
            slots[i] = Some(t);
        }
    }
    Ok(MorselOutcome {
        results: slots
            .into_iter()
            .map(|s| s.expect("every morsel claimed"))
            .collect(),
        claimed_per_worker: claimed.into_inner().expect(POISON),
    })
}

/// Runs `f(0), f(1), ..., f(count - 1)` on up to `threads` participants
/// (the calling thread + shared-pool helpers, atomic task cursor),
/// returning the outputs in task order. Used for fixed task lists —
/// building the P partitions of a hash join, sorting the chunks of a
/// parallel sort. Inline (no pool job) when `threads <= 1` or `count <= 1`.
/// `label` names the operator for panic diagnostics, as in [`par_morsels`].
pub fn par_indexed<T, F>(threads: usize, count: usize, label: &str, f: F) -> Vec<T>
where
    T: Send,
    F: Fn(usize) -> T + Sync,
{
    if threads <= 1 || count <= 1 {
        return (0..count).map(f).collect();
    }
    let workers = threads.min(count);
    let cursor = AtomicUsize::new(0);
    let collected: Mutex<Vec<Vec<(usize, T)>>> = Mutex::new(Vec::new());
    let work = || {
        let mut local: Vec<(usize, T)> = Vec::new();
        loop {
            let i = cursor.fetch_add(1, Ordering::Relaxed);
            if i >= count {
                break;
            }
            local.push((i, f(i)));
        }
        collected.lock().expect(POISON).push(local);
    };
    shared().run_job(workers - 1, label, &work);
    let mut slots: Vec<Option<T>> = (0..count).map(|_| None).collect();
    for local in collected.into_inner().expect(POISON) {
        for (i, t) in local {
            slots[i] = Some(t);
        }
    }
    slots
        .into_iter()
        .map(|s| s.expect("every task claimed"))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::Error;

    #[test]
    fn morsel_grid_is_thread_count_independent() {
        // The per-morsel outputs (and hence any ordered merge over them)
        // must be identical for every worker count.
        let n = 10_007;
        let serial = par_morsels(1, n, 64, "test", |i, r| Ok((i, r.start, r.end))).unwrap();
        for threads in [2, 3, 7, 16] {
            let par = par_morsels(threads, n, 64, "test", |i, r| Ok((i, r.start, r.end))).unwrap();
            assert_eq!(serial.results, par.results, "threads = {threads}");
            assert_eq!(
                par.claimed_per_worker.iter().sum::<u64>(),
                serial.results.len() as u64
            );
        }
    }

    #[test]
    fn serial_path_spawns_no_workers() {
        let out = par_morsels(1, 100, 10, "test", |_, r| Ok(r.len())).unwrap();
        assert_eq!(out.claimed_per_worker, vec![10]);
        assert_eq!(out.results.iter().sum::<usize>(), 100);
        // Single-morsel grids stay inline even with many threads.
        let out = par_morsels(8, 100, 1000, "test", |_, r| Ok(r.len())).unwrap();
        assert_eq!(out.claimed_per_worker, vec![1]);
    }

    #[test]
    fn empty_input_yields_no_morsels() {
        let out = par_morsels(4, 0, 16, "test", |_, _| Ok(1)).unwrap();
        assert!(out.results.is_empty());
    }

    #[test]
    fn errors_propagate_from_workers() {
        let err = par_morsels(4, 1000, 10, "test", |i, _| {
            if i == 57 {
                Err(Error::Exec("boom".into()))
            } else {
                Ok(i)
            }
        })
        .unwrap_err();
        assert!(matches!(err, Error::Exec(_)));
    }

    #[test]
    fn indexed_tasks_return_in_task_order() {
        let serial = par_indexed(1, 9, "test", |i| i * i);
        let par = par_indexed(4, 9, "test", |i| i * i);
        assert_eq!(serial, par);
        assert_eq!(par[3], 9);
    }

    #[test]
    fn resolve_treats_zero_as_auto() {
        assert_eq!(resolve_threads(3), 3);
        assert!(resolve_threads(0) >= 1);
        assert!(hardware_threads() >= 1);
    }

    #[test]
    fn admit_within_rejects_when_full() {
        let gate = Admission::with_capacity(1);
        let held = gate.admit();
        let err = gate
            .admit_within(Some(Duration::from_millis(5)))
            .unwrap_err();
        assert!(matches!(err, Error::Overloaded(_)), "{err}");
        assert!(err.is_transient());
        drop(held);
        // Once the slot frees, a bounded admit succeeds.
        assert!(gate.admit_within(Some(Duration::from_millis(5))).is_ok());
    }

    #[test]
    fn admit_within_zero_timeout_rejects_immediately() {
        let gate = Admission::with_capacity(1);
        let held = gate.admit();
        let start = Instant::now();
        assert!(gate.admit_within(Some(Duration::ZERO)).is_err());
        assert!(start.elapsed() < Duration::from_millis(100));
        drop(held);
    }

    #[test]
    fn unlimited_gate_never_rejects() {
        let gate = Admission::with_capacity(0);
        let a = gate.admit_within(Some(Duration::ZERO)).unwrap();
        let b = gate.admit_within(Some(Duration::ZERO)).unwrap();
        assert_eq!(a.queue_wait_ns, 0);
        drop((a, b));
    }

    #[test]
    fn helper_panic_reraise_carries_label_and_message() {
        // Force a pool job where only *helpers* (threads named
        // "pytond-pool") panic; the submitter keeps claiming morsels and
        // must re-raise with the job label and the helper's own message.
        let caught = std::panic::catch_unwind(|| {
            let _ = par_morsels(4, 1000, 1, "probe q@v9", |i, _| {
                if std::thread::current().name() == Some("pytond-pool") {
                    panic!("helper died on morsel {i}");
                }
                // Pace the submitter so helpers have time to join the job.
                std::thread::sleep(Duration::from_micros(100));
                Ok(i)
            });
        });
        let payload = caught.expect_err("panic must propagate");
        let msg = payload
            .downcast_ref::<String>()
            .cloned()
            .or_else(|| payload.downcast_ref::<&str>().map(|s| s.to_string()))
            .unwrap_or_default();
        assert!(msg.contains("probe q@v9"), "payload: {msg}");
        assert!(msg.contains("helper died on morsel"), "payload: {msg}");
    }
}
