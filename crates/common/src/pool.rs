//! Morsel-driven scoped worker pool (std-only).
//!
//! The engine's parallelism is *morsel-driven* (Leis et al., SIGMOD 2014, as
//! cited by PyTond's "efficient multi-threaded query processing"): work is a
//! fixed grid of row ranges ("morsels"), workers claim the next unclaimed
//! morsel from a shared atomic cursor, and the per-morsel outputs are
//! stitched back together **in morsel order**. Because the grid depends only
//! on the input size — never on the worker count — and the merge order is
//! fixed, every operator built on this pool produces bit-identical results
//! at any thread count (see `docs/EXECUTION.md` for the full determinism
//! argument).
//!
//! The build environment has no crates.io access, so there is no rayon here:
//! workers are plain [`std::thread::scope`] threads and the dispenser is one
//! [`AtomicUsize`]. Threads live for a single operator invocation; at
//! `threads <= 1` (or a single-morsel grid) no thread is ever spawned and
//! the closure runs inline on the caller's stack — the serial path.

use crate::Result;
use std::ops::Range;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::OnceLock;

/// The machine's hardware parallelism (1 if it cannot be determined).
/// Cached: the underlying `available_parallelism` probes cgroup files on
/// Linux (~10 µs), which would dwarf a point query if paid per call.
pub fn hardware_threads() -> usize {
    static CACHED: OnceLock<usize> = OnceLock::new();
    *CACHED.get_or_init(|| std::thread::available_parallelism().map_or(1, |n| n.get()))
}

/// The default worker count: the `PYTOND_THREADS` environment variable when
/// set to a positive integer, otherwise [`hardware_threads`]. This is what a
/// thread count of `0` ("auto") resolves to everywhere in the engine.
/// Read **once per process** (serving hot paths resolve it per query); set
/// the variable before the first query, not between queries.
pub fn default_threads() -> usize {
    static CACHED: OnceLock<usize> = OnceLock::new();
    *CACHED.get_or_init(|| match std::env::var("PYTOND_THREADS") {
        Ok(v) => v
            .trim()
            .parse::<usize>()
            .ok()
            .filter(|&n| n > 0)
            .unwrap_or_else(hardware_threads),
        Err(_) => hardware_threads(),
    })
}

/// Resolves a configured thread count: `0` means "auto"
/// ([`default_threads`]), anything else is taken literally.
pub fn resolve_threads(configured: usize) -> usize {
    if configured == 0 {
        default_threads()
    } else {
        configured
    }
}

/// The result of one [`par_morsels`] run: per-morsel outputs in morsel order
/// plus how many morsels each worker claimed (`[total]` on the serial path).
#[derive(Debug)]
pub struct MorselOutcome<T> {
    /// One output per morsel, in ascending morsel order — independent of
    /// which worker produced it.
    pub results: Vec<T>,
    /// Morsels claimed by each worker, indexed by worker id. Length 1 on the
    /// serial (inline) path.
    pub claimed_per_worker: Vec<u64>,
}

/// Runs `f` over the fixed morsel grid of `[0, n)` with `morsel` rows per
/// morsel, on up to `threads` workers claiming morsels from a shared atomic
/// cursor. `f` receives `(morsel index, row range)`.
///
/// Outputs come back in morsel order, so any order-sensitive merge the
/// caller performs (concatenation, partial-aggregate folding) sees the same
/// sequence at every thread count. With `threads <= 1` or a single-morsel
/// grid the closure runs inline — no thread is spawned.
///
/// The first error any worker returns is propagated; remaining morsels may
/// or may not have run (their outputs are discarded).
pub fn par_morsels<T, F>(threads: usize, n: usize, morsel: usize, f: F) -> Result<MorselOutcome<T>>
where
    T: Send,
    F: Fn(usize, Range<usize>) -> Result<T> + Sync,
{
    let morsel = morsel.max(1);
    let count = n.div_ceil(morsel);
    let range = |i: usize| (i * morsel)..((i + 1) * morsel).min(n);
    if threads <= 1 || count <= 1 {
        let mut results = Vec::with_capacity(count);
        for i in 0..count {
            results.push(f(i, range(i))?);
        }
        return Ok(MorselOutcome {
            results,
            claimed_per_worker: vec![count as u64],
        });
    }
    let workers = threads.min(count);
    let cursor = AtomicUsize::new(0);
    let (fref, cref) = (&f, &cursor);
    let per_worker: Vec<Result<Vec<(usize, T)>>> = std::thread::scope(|s| {
        let handles: Vec<_> = (0..workers)
            .map(|_| {
                s.spawn(move || {
                    let mut local: Vec<(usize, T)> = Vec::new();
                    loop {
                        let i = cref.fetch_add(1, Ordering::Relaxed);
                        if i >= count {
                            break;
                        }
                        local.push((i, fref(i, range(i))?));
                    }
                    Ok(local)
                })
            })
            .collect();
        handles
            .into_iter()
            .map(|h| h.join().expect("morsel worker panicked"))
            .collect()
    });
    let mut claimed = vec![0u64; workers];
    let mut slots: Vec<Option<T>> = (0..count).map(|_| None).collect();
    for (w, outcome) in per_worker.into_iter().enumerate() {
        let local = outcome?;
        claimed[w] = local.len() as u64;
        for (i, t) in local {
            slots[i] = Some(t);
        }
    }
    Ok(MorselOutcome {
        results: slots
            .into_iter()
            .map(|s| s.expect("every morsel claimed"))
            .collect(),
        claimed_per_worker: claimed,
    })
}

/// Runs `f(0), f(1), ..., f(count - 1)` on up to `threads` workers (atomic
/// task cursor), returning the outputs in task order. Used for fixed task
/// lists — building the P partitions of a hash join, sorting the chunks of a
/// parallel sort. Inline (no threads) when `threads <= 1` or `count <= 1`.
pub fn par_indexed<T, F>(threads: usize, count: usize, f: F) -> Vec<T>
where
    T: Send,
    F: Fn(usize) -> T + Sync,
{
    if threads <= 1 || count <= 1 {
        return (0..count).map(f).collect();
    }
    let workers = threads.min(count);
    let cursor = AtomicUsize::new(0);
    let (fref, cref) = (&f, &cursor);
    let per_worker: Vec<Vec<(usize, T)>> = std::thread::scope(|s| {
        let handles: Vec<_> = (0..workers)
            .map(|_| {
                s.spawn(move || {
                    let mut local: Vec<(usize, T)> = Vec::new();
                    loop {
                        let i = cref.fetch_add(1, Ordering::Relaxed);
                        if i >= count {
                            break;
                        }
                        local.push((i, fref(i)));
                    }
                    local
                })
            })
            .collect();
        handles
            .into_iter()
            .map(|h| h.join().expect("indexed worker panicked"))
            .collect()
    });
    let mut slots: Vec<Option<T>> = (0..count).map(|_| None).collect();
    for local in per_worker {
        for (i, t) in local {
            slots[i] = Some(t);
        }
    }
    slots
        .into_iter()
        .map(|s| s.expect("every task claimed"))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::Error;

    #[test]
    fn morsel_grid_is_thread_count_independent() {
        // The per-morsel outputs (and hence any ordered merge over them)
        // must be identical for every worker count.
        let n = 10_007;
        let serial = par_morsels(1, n, 64, |i, r| Ok((i, r.start, r.end))).unwrap();
        for threads in [2, 3, 7, 16] {
            let par = par_morsels(threads, n, 64, |i, r| Ok((i, r.start, r.end))).unwrap();
            assert_eq!(serial.results, par.results, "threads = {threads}");
            assert_eq!(
                par.claimed_per_worker.iter().sum::<u64>(),
                serial.results.len() as u64
            );
        }
    }

    #[test]
    fn serial_path_spawns_no_workers() {
        let out = par_morsels(1, 100, 10, |_, r| Ok(r.len())).unwrap();
        assert_eq!(out.claimed_per_worker, vec![10]);
        assert_eq!(out.results.iter().sum::<usize>(), 100);
        // Single-morsel grids stay inline even with many threads.
        let out = par_morsels(8, 100, 1000, |_, r| Ok(r.len())).unwrap();
        assert_eq!(out.claimed_per_worker, vec![1]);
    }

    #[test]
    fn empty_input_yields_no_morsels() {
        let out = par_morsels(4, 0, 16, |_, _| Ok(1)).unwrap();
        assert!(out.results.is_empty());
    }

    #[test]
    fn errors_propagate_from_workers() {
        let err = par_morsels(4, 1000, 10, |i, _| {
            if i == 57 {
                Err(Error::Exec("boom".into()))
            } else {
                Ok(i)
            }
        })
        .unwrap_err();
        assert!(matches!(err, Error::Exec(_)));
    }

    #[test]
    fn indexed_tasks_return_in_task_order() {
        let serial = par_indexed(1, 9, |i| i * i);
        let par = par_indexed(4, 9, |i| i * i);
        assert_eq!(serial, par);
        assert_eq!(par[3], 9);
    }

    #[test]
    fn resolve_treats_zero_as_auto() {
        assert_eq!(resolve_threads(3), 3);
        assert!(resolve_threads(0) >= 1);
        assert!(hardware_threads() >= 1);
    }
}
