//! Deterministic fault injection for resilience testing.
//!
//! The harness is compiled in only when the `fault` cargo feature of
//! `pytond-common` is enabled (the workspace enables it for test builds via
//! the root package's dev-dependencies; release library builds never carry
//! it). With the feature off, [`injected`] is a `const false` and the
//! injection sites vanish.
//!
//! With the feature on, activation is still a *runtime* decision so one test
//! process can sweep several seeds: call [`set`]`(seed, rate)` /
//! [`clear`]`()`, or set `PYTOND_FAULT=<seed>:<rate>` in the environment
//! (read once, on first use, as the default configuration).
//!
//! Decisions are deterministic: each [`FaultSite`] keeps a monotonically
//! increasing counter, and the n-th visit to a site fires iff
//! `mix(seed, site, n) < rate · 2⁶⁴`. Re-running with the same seed, rate
//! and visit order reproduces the same faults.
//!
//! Injection sites (all fail *before* any externally visible effect):
//!
//! | site | location | effect when fired |
//! |------|----------|-------------------|
//! | [`FaultSite::PoolDispatch`] | worker picks up a pool job | injected panic, contained by the pool's per-helper `catch_unwind` |
//! | [`FaultSite::AppendPublish`] | `Database::append` before publication | transient `Error::Internal`; nothing is published |
//! | [`FaultSite::Morsel`] | executor morsel body | transient `Error::Internal`; the query aborts cleanly |
//! | [`FaultSite::ViewPublish`] | view refresh before publication | transient `Error::Internal`; the view keeps its prior consistent version |

/// Whether the harness is compiled into this build.
pub const COMPILED: bool = cfg!(feature = "fault");

/// A named injection point. See the module docs for the effect of each.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FaultSite {
    /// Pool worker job dispatch (fires as a panic inside the worker).
    PoolDispatch,
    /// Snapshot append publication (fires as a transient error before
    /// anything becomes visible).
    AppendPublish,
    /// Executor morsel body (fires as a transient error).
    Morsel,
    /// Materialized-view refresh, after the delta/recompute result is ready
    /// but before the new view state becomes visible (fires as a transient
    /// error; the view stays at its prior consistent version).
    ViewPublish,
}

impl FaultSite {
    /// Stable site index used in the deterministic decision hash.
    #[cfg_attr(not(feature = "fault"), allow(dead_code))]
    fn index(self) -> usize {
        match self {
            FaultSite::PoolDispatch => 0,
            FaultSite::AppendPublish => 1,
            FaultSite::Morsel => 2,
            FaultSite::ViewPublish => 3,
        }
    }

    /// Human-readable site name used in injected error messages.
    pub fn name(self) -> &'static str {
        match self {
            FaultSite::PoolDispatch => "pool-dispatch",
            FaultSite::AppendPublish => "append-publish",
            FaultSite::Morsel => "morsel",
            FaultSite::ViewPublish => "view-publish",
        }
    }
}

#[cfg(feature = "fault")]
mod active {
    use super::FaultSite;
    use std::sync::atomic::{AtomicU64, AtomicU8, Ordering};
    use std::sync::OnceLock;

    /// 0 = config not yet decided (fall back to env), 1 = off, 2 = on.
    static MODE: AtomicU8 = AtomicU8::new(0);
    static SEED: AtomicU64 = AtomicU64::new(0);
    static RATE_BITS: AtomicU64 = AtomicU64::new(0);
    static VISITS: [AtomicU64; 4] = [
        AtomicU64::new(0),
        AtomicU64::new(0),
        AtomicU64::new(0),
        AtomicU64::new(0),
    ];
    static FIRED: AtomicU64 = AtomicU64::new(0);

    fn env_default() -> Option<(u64, f64)> {
        static ENV: OnceLock<Option<(u64, f64)>> = OnceLock::new();
        *ENV.get_or_init(|| {
            let raw = std::env::var("PYTOND_FAULT").ok()?;
            let (seed, rate) = raw.split_once(':')?;
            let seed = seed.trim().parse::<u64>().ok()?;
            let rate = rate.trim().parse::<f64>().ok()?;
            (rate > 0.0).then_some((seed, rate.min(1.0)))
        })
    }

    pub(super) fn set(seed: u64, rate: f64) {
        SEED.store(seed, Ordering::Relaxed);
        RATE_BITS.store(rate.clamp(0.0, 1.0).to_bits(), Ordering::Relaxed);
        MODE.store(if rate > 0.0 { 2 } else { 1 }, Ordering::Relaxed);
    }

    pub(super) fn clear() {
        MODE.store(1, Ordering::Relaxed);
    }

    pub(super) fn active() -> Option<(u64, f64)> {
        match MODE.load(Ordering::Relaxed) {
            0 => env_default(),
            1 => None,
            _ => Some((
                SEED.load(Ordering::Relaxed),
                f64::from_bits(RATE_BITS.load(Ordering::Relaxed)),
            )),
        }
    }

    pub(super) fn fired() -> u64 {
        FIRED.load(Ordering::Relaxed)
    }

    /// splitmix64-style mix of (seed, site, visit number).
    fn mix(seed: u64, site: u64, n: u64) -> u64 {
        let mut z = seed
            .wrapping_mul(0x9e37_79b9_7f4a_7c15)
            .wrapping_add(site.wrapping_mul(0xbf58_476d_1ce4_e5b9))
            .wrapping_add(n.wrapping_mul(0x94d0_49bb_1331_11eb));
        z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
        z ^ (z >> 31)
    }

    pub(super) fn injected(site: FaultSite) -> bool {
        let Some((seed, rate)) = active() else {
            return false;
        };
        let n = VISITS[site.index()].fetch_add(1, Ordering::Relaxed);
        let fire = if rate >= 1.0 {
            true
        } else {
            // Saturating float-to-int cast; rate < 1.0 keeps this below 2^64.
            mix(seed, site.index() as u64 + 1, n) < (rate * TWO64) as u64
        };
        if fire {
            FIRED.fetch_add(1, Ordering::Relaxed);
        }
        fire
    }

    const TWO64: f64 = 18_446_744_073_709_551_616.0; // 2^64
}

/// Activate the harness at runtime with an explicit `(seed, rate)`.
/// Overrides any `PYTOND_FAULT` environment default. No-op unless the
/// `fault` feature is compiled in.
pub fn set(seed: u64, rate: f64) {
    #[cfg(feature = "fault")]
    active::set(seed, rate);
    #[cfg(not(feature = "fault"))]
    let _ = (seed, rate);
}

/// Deactivate the harness (also suppresses the `PYTOND_FAULT` default).
pub fn clear() {
    #[cfg(feature = "fault")]
    active::clear();
}

/// The currently active `(seed, rate)`, if any.
pub fn active() -> Option<(u64, f64)> {
    #[cfg(feature = "fault")]
    {
        active::active()
    }
    #[cfg(not(feature = "fault"))]
    None
}

/// Total number of faults fired so far in this process (all sites).
pub fn fired() -> u64 {
    #[cfg(feature = "fault")]
    {
        active::fired()
    }
    #[cfg(not(feature = "fault"))]
    0
}

/// Deterministic per-visit decision: should this visit to `site` fail?
/// Always `false` when the harness is inactive or not compiled in.
#[inline]
pub fn injected(site: FaultSite) -> bool {
    #[cfg(feature = "fault")]
    {
        active::injected(site)
    }
    #[cfg(not(feature = "fault"))]
    {
        let _ = site;
        false
    }
}

#[cfg(all(test, feature = "fault"))]
mod tests {
    use super::*;

    #[test]
    fn zero_rate_never_fires_and_full_rate_always_fires() {
        set(42, 0.0);
        assert!(active().is_none());
        assert!(!injected(FaultSite::Morsel));
        set(42, 1.0);
        assert!(injected(FaultSite::Morsel));
        assert!(injected(FaultSite::AppendPublish));
        clear();
        assert!(!injected(FaultSite::Morsel));
    }

    #[test]
    fn moderate_rate_fires_sometimes() {
        set(7, 0.25);
        let fires: usize = (0..400)
            .filter(|_| injected(FaultSite::PoolDispatch))
            .count();
        clear();
        // Deterministic, but statistically ~100; accept a broad band.
        assert!(fires > 20 && fires < 200, "fires={fires}");
    }
}
