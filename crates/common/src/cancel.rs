//! Cooperative query cancellation: deadlines, explicit cancel, memory budgets.
//!
//! A [`CancelToken`] is a cheap `Arc`-shared handle created once per query by
//! the serving layer and threaded through the executor. The executor polls it
//! at every *morsel claim*, *join-build partition* and *aggregation-merge*
//! step via [`CancelToken::check`]; allocation-heavy operators additionally
//! charge their coarse allocations via [`CancelToken::charge`]. A poll is two
//! relaxed atomic loads plus (when a deadline is armed) one monotonic clock
//! read, so the per-morsel overhead is in the tens of nanoseconds.
//!
//! The token is *sticky*: once it trips (explicit cancel, deadline expiry or
//! budget exhaustion) every subsequent `check`/`charge` returns the same
//! error class, so a query unwinds promptly no matter which worker observes
//! the trip first.
//!
//! Tokens also double as per-query resource meters: the number of cooperative
//! checks and the cumulative charged bytes are exposed so the serving layer
//! can surface them in `ExecMetrics`/`QueryTrace`.
//!
//! See `docs/RESILIENCE.md` for deadline semantics and the transient-error
//! taxonomy.

use std::sync::atomic::{AtomicU64, AtomicU8, Ordering};
use std::sync::{Arc, OnceLock};
use std::time::{Duration, Instant};

use crate::error::{Error, Result};

/// Terminal states a token can trip into. `LIVE` is the initial state; the
/// others are sticky.
const LIVE: u8 = 0;
const CANCELLED: u8 = 1;
const TIMED_OUT: u8 = 2;
const EXHAUSTED: u8 = 3;

#[derive(Debug)]
struct Inner {
    /// Reference point for the deadline; taken at token creation.
    created: Instant,
    /// Deadline in nanoseconds after `created`; 0 = no deadline.
    deadline_ns: AtomicU64,
    /// Memory budget in bytes; 0 = no budget.
    budget_bytes: AtomicU64,
    /// Cumulative bytes charged so far (a coarse over-approximation of live
    /// memory: releases are not tracked, so this is also the peak).
    used_bytes: AtomicU64,
    /// One of `LIVE`/`CANCELLED`/`TIMED_OUT`/`EXHAUSTED`.
    state: AtomicU8,
    /// Number of cooperative `check` calls observed.
    checks: AtomicU64,
    /// Whether the executor should poll this token at fine granularity.
    /// Disarmed tokens still count checks but skip the clock read and never
    /// force the fine-grained serial morsel path.
    armed: bool,
    /// Query context (e.g. `q@v3`) included in error messages and panic
    /// payloads; set once by the serving layer.
    label: OnceLock<String>,
}

/// Shared, cloneable cancellation handle for one query.
///
/// Cloning is cheap (an `Arc` bump); all clones observe the same state, so a
/// handle kept by the caller can cancel a query mid-flight from another
/// thread.
#[derive(Debug, Clone)]
pub struct CancelToken {
    inner: Arc<Inner>,
}

impl Default for CancelToken {
    fn default() -> Self {
        Self::new()
    }
}

impl CancelToken {
    fn with_armed(armed: bool) -> Self {
        CancelToken {
            inner: Arc::new(Inner {
                created: Instant::now(),
                deadline_ns: AtomicU64::new(0),
                budget_bytes: AtomicU64::new(0),
                used_bytes: AtomicU64::new(0),
                state: AtomicU8::new(LIVE),
                checks: AtomicU64::new(0),
                armed,
                label: OnceLock::new(),
            }),
        }
    }

    /// A live, armed token with no deadline or budget. Use this when the
    /// caller intends to [`cancel`](Self::cancel) the query from another
    /// thread: armed tokens are polled at per-morsel granularity even on the
    /// serial execution path.
    pub fn new() -> Self {
        Self::with_armed(true)
    }

    /// A token that only meters (check counts); it is never polled at fine
    /// granularity and carries no deadline or budget. The serving layer uses
    /// this when no lifecycle limits apply, keeping the unlimited path free
    /// of clock reads.
    pub fn disarmed() -> Self {
        Self::with_armed(false)
    }

    /// Whether the executor should poll at fine granularity (a deadline,
    /// budget or external cancel handle is in play).
    pub fn is_armed(&self) -> bool {
        self.inner.armed
    }

    /// Attach a query-context label (e.g. `q@v3`) used in error messages.
    /// Only the first call wins; later calls are ignored.
    pub fn set_label(&self, label: impl Into<String>) {
        let _ = self.inner.label.set(label.into());
    }

    /// The query-context label (`"query"` until [`set_label`](Self::set_label)
    /// is called). Included in trip errors and pool-job panic payloads.
    pub fn label(&self) -> &str {
        self.inner
            .label
            .get()
            .map(String::as_str)
            .unwrap_or("query")
    }

    /// Arm (or tighten) the deadline: the query must finish within `d` of
    /// token creation. If a deadline is already set, the earlier one wins.
    pub fn set_deadline(&self, d: Duration) {
        let ns = d.as_nanos().min(u64::MAX as u128) as u64;
        let ns = ns.max(1); // 0 means "no deadline"
        self.inner
            .deadline_ns
            .fetch_update(Ordering::Relaxed, Ordering::Relaxed, |cur| {
                if cur == 0 || ns < cur {
                    Some(ns)
                } else {
                    None
                }
            })
            .ok();
    }

    /// Arm (or tighten) the memory budget in bytes. If a budget is already
    /// set, the smaller one wins.
    pub fn set_budget_bytes(&self, bytes: u64) {
        let bytes = bytes.max(1); // 0 means "no budget"
        self.inner
            .budget_bytes
            .fetch_update(Ordering::Relaxed, Ordering::Relaxed, |cur| {
                if cur == 0 || bytes < cur {
                    Some(bytes)
                } else {
                    None
                }
            })
            .ok();
    }

    /// The armed deadline, if any, relative to token creation.
    pub fn deadline(&self) -> Option<Duration> {
        match self.inner.deadline_ns.load(Ordering::Relaxed) {
            0 => None,
            ns => Some(Duration::from_nanos(ns)),
        }
    }

    /// The armed memory budget in bytes, if any.
    pub fn budget_bytes(&self) -> Option<u64> {
        match self.inner.budget_bytes.load(Ordering::Relaxed) {
            0 => None,
            b => Some(b),
        }
    }

    /// Request cancellation. Idempotent; does not override an earlier
    /// timeout/exhaustion trip (first trip wins).
    pub fn cancel(&self) {
        let _ = self.inner.state.compare_exchange(
            LIVE,
            CANCELLED,
            Ordering::Relaxed,
            Ordering::Relaxed,
        );
    }

    /// Whether the token has tripped (for any reason).
    pub fn is_tripped(&self) -> bool {
        self.inner.state.load(Ordering::Relaxed) != LIVE
    }

    /// Number of cooperative checks observed so far.
    pub fn checks(&self) -> u64 {
        self.inner.checks.load(Ordering::Relaxed)
    }

    /// Cumulative bytes charged so far (also the peak; releases are not
    /// tracked).
    pub fn used_bytes(&self) -> u64 {
        self.inner.used_bytes.load(Ordering::Relaxed)
    }

    /// Time elapsed since token creation.
    pub fn elapsed(&self) -> Duration {
        self.inner.created.elapsed()
    }

    fn trip_error(&self, state: u8) -> Error {
        match state {
            CANCELLED => Error::Cancelled(format!("{} cancelled by caller", self.label())),
            TIMED_OUT => {
                let dl = self.deadline().unwrap_or_default();
                Error::Timeout(format!(
                    "{} exceeded deadline of {:.1}ms (elapsed {:.1}ms)",
                    self.label(),
                    dl.as_secs_f64() * 1e3,
                    self.elapsed().as_secs_f64() * 1e3,
                ))
            }
            _ => {
                let budget = self.budget_bytes().unwrap_or_default();
                Error::ResourceExhausted(format!(
                    "{} exceeded memory budget of {} bytes ({} charged)",
                    self.label(),
                    budget,
                    self.used_bytes(),
                ))
            }
        }
    }

    /// Cooperative poll: returns `Err` once the token has tripped, arming
    /// the deadline trip if the clock has run out. Called by the executor at
    /// every morsel claim, join-build partition and aggregation-merge step.
    pub fn check(&self) -> Result<()> {
        self.inner.checks.fetch_add(1, Ordering::Relaxed);
        let state = self.inner.state.load(Ordering::Relaxed);
        if state != LIVE {
            return Err(self.trip_error(state));
        }
        let deadline = self.inner.deadline_ns.load(Ordering::Relaxed);
        if deadline != 0 {
            let elapsed = self
                .inner
                .created
                .elapsed()
                .as_nanos()
                .min(u64::MAX as u128) as u64;
            if elapsed > deadline {
                // First trip wins; if someone else tripped concurrently,
                // report their reason.
                let _ = self.inner.state.compare_exchange(
                    LIVE,
                    TIMED_OUT,
                    Ordering::Relaxed,
                    Ordering::Relaxed,
                );
                let state = self.inner.state.load(Ordering::Relaxed);
                return Err(self.trip_error(state));
            }
        }
        Ok(())
    }

    /// Charge a coarse allocation (join build table, aggregation state,
    /// materialized intermediate) against the budget. Trips the token with
    /// [`Error::ResourceExhausted`] when the cumulative total exceeds the
    /// budget. A no-op (besides accounting) when no budget is armed.
    pub fn charge(&self, bytes: u64) -> Result<()> {
        let used = self.inner.used_bytes.fetch_add(bytes, Ordering::Relaxed) + bytes;
        let budget = self.inner.budget_bytes.load(Ordering::Relaxed);
        if budget != 0 && used > budget {
            let _ = self.inner.state.compare_exchange(
                LIVE,
                EXHAUSTED,
                Ordering::Relaxed,
                Ordering::Relaxed,
            );
            let state = self.inner.state.load(Ordering::Relaxed);
            return Err(self.trip_error(state));
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fresh_token_passes_checks() {
        let t = CancelToken::new();
        assert!(t.check().is_ok());
        assert!(t.check().is_ok());
        assert_eq!(t.checks(), 2);
        assert!(!t.is_tripped());
    }

    #[test]
    fn explicit_cancel_is_sticky_and_shared() {
        let t = CancelToken::new();
        t.set_label("q@v7");
        let clone = t.clone();
        clone.cancel();
        let err = t.check().unwrap_err();
        assert!(matches!(err, Error::Cancelled(_)), "{err}");
        assert!(err.is_transient());
        assert!(err.message().contains("q@v7"));
        // Sticky: subsequent checks keep failing the same way.
        assert!(matches!(t.check().unwrap_err(), Error::Cancelled(_)));
    }

    #[test]
    fn deadline_trips_after_expiry() {
        let t = CancelToken::new();
        t.set_deadline(Duration::from_millis(1));
        std::thread::sleep(Duration::from_millis(5));
        let err = t.check().unwrap_err();
        assert!(matches!(err, Error::Timeout(_)), "{err}");
        assert!(err.is_transient());
    }

    #[test]
    fn tighter_deadline_wins() {
        let t = CancelToken::new();
        t.set_deadline(Duration::from_secs(10));
        t.set_deadline(Duration::from_secs(1));
        t.set_deadline(Duration::from_secs(30)); // looser: ignored
        assert_eq!(t.deadline(), Some(Duration::from_secs(1)));
    }

    #[test]
    fn budget_trips_on_cumulative_overflow() {
        let t = CancelToken::new();
        t.set_budget_bytes(100);
        assert!(t.charge(60).is_ok());
        let err = t.charge(60).unwrap_err();
        assert!(matches!(err, Error::ResourceExhausted(_)), "{err}");
        assert_eq!(t.used_bytes(), 120);
        // Sticky through check() as well.
        assert!(matches!(
            t.check().unwrap_err(),
            Error::ResourceExhausted(_)
        ));
    }

    #[test]
    fn charge_without_budget_only_meters() {
        let t = CancelToken::new();
        assert!(t.charge(u64::MAX / 2).is_ok());
        assert!(t.check().is_ok());
    }

    #[test]
    fn first_trip_wins() {
        let t = CancelToken::new();
        t.set_budget_bytes(10);
        assert!(t.charge(100).is_err());
        t.cancel(); // too late: exhaustion already tripped
        assert!(matches!(
            t.check().unwrap_err(),
            Error::ResourceExhausted(_)
        ));
    }

    #[test]
    fn disarmed_token_meters_but_never_trips_on_clock() {
        let t = CancelToken::disarmed();
        assert!(!t.is_armed());
        assert!(t.check().is_ok());
        assert_eq!(t.checks(), 1);
    }
}
