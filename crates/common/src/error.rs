//! Unified error type shared by all PyTond crates.

use std::fmt;

/// Convenience alias used across the workspace.
pub type Result<T> = std::result::Result<T, Error>;

/// The single error type of the PyTond pipeline.
///
/// Each variant names the pipeline stage that produced it so end-to-end
/// failures stay diagnosable after crossing crate boundaries.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Error {
    /// Python-subset lexer/parser failure (`pytond-pyparse`).
    Parse(String),
    /// AST-to-TondIR translation failure (`pytond-translate`).
    Translate(String),
    /// Type-inference failure during translation.
    Type(String),
    /// IR optimization pass failure (`pytond-optimizer`).
    Optimize(String),
    /// SQL code-generation failure (`pytond-sqlgen`).
    CodeGen(String),
    /// SQL front-end failure inside the engine substrate (`pytond-sqldb`).
    Sql(String),
    /// Plan-time failure inside the engine substrate.
    Plan(String),
    /// Run-time failure inside the engine substrate.
    Exec(String),
    /// Unknown table/column or catalog inconsistency.
    Catalog(String),
    /// DataFrame/tensor baseline failure (`pytond-frame`, `pytond-ndarray`).
    Data(String),
    /// A feature deliberately unsupported by the selected backend profile
    /// (e.g. window functions on the LingoDB-like profile).
    Unsupported(String),
    /// The query was explicitly cancelled by the caller (transient).
    Cancelled(String),
    /// The query exceeded its deadline (transient).
    Timeout(String),
    /// The admission gate rejected the query because the queue-wait bound was
    /// exceeded (transient backpressure; callers may retry with backoff).
    Overloaded(String),
    /// The query exceeded its memory budget (transient).
    ResourceExhausted(String),
    /// A contained fault: a worker panicked or an injected fault fired while
    /// executing this query. The engine state (snapshots, plan cache, pool)
    /// is unaffected, so the error is transient.
    Internal(String),
}

impl Error {
    /// The stage label used in the rendered message.
    pub fn stage(&self) -> &'static str {
        match self {
            Error::Parse(_) => "parse",
            Error::Translate(_) => "translate",
            Error::Type(_) => "type",
            Error::Optimize(_) => "optimize",
            Error::CodeGen(_) => "codegen",
            Error::Sql(_) => "sql",
            Error::Plan(_) => "plan",
            Error::Exec(_) => "exec",
            Error::Catalog(_) => "catalog",
            Error::Data(_) => "data",
            Error::Unsupported(_) => "unsupported",
            Error::Cancelled(_) => "cancelled",
            Error::Timeout(_) => "timeout",
            Error::Overloaded(_) => "overloaded",
            Error::ResourceExhausted(_) => "resource",
            Error::Internal(_) => "internal",
        }
    }

    /// Whether the failure is transient: the same query may succeed if simply
    /// retried (possibly after backoff), because the error reflects load or a
    /// per-query lifecycle event rather than a property of the query itself.
    ///
    /// Transient errors never leave partial state behind — snapshots, the
    /// plan cache and the worker pool are unaffected. See
    /// `docs/RESILIENCE.md` for the full taxonomy.
    pub fn is_transient(&self) -> bool {
        matches!(
            self,
            Error::Cancelled(_)
                | Error::Timeout(_)
                | Error::Overloaded(_)
                | Error::ResourceExhausted(_)
                | Error::Internal(_)
        )
    }

    /// The human-readable message without the stage prefix.
    pub fn message(&self) -> &str {
        match self {
            Error::Parse(m)
            | Error::Translate(m)
            | Error::Type(m)
            | Error::Optimize(m)
            | Error::CodeGen(m)
            | Error::Sql(m)
            | Error::Plan(m)
            | Error::Exec(m)
            | Error::Catalog(m)
            | Error::Data(m)
            | Error::Unsupported(m)
            | Error::Cancelled(m)
            | Error::Timeout(m)
            | Error::Overloaded(m)
            | Error::ResourceExhausted(m)
            | Error::Internal(m) => m,
        }
    }
}

impl fmt::Display for Error {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{} error: {}", self.stage(), self.message())
    }
}

impl std::error::Error for Error {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_includes_stage_and_message() {
        let e = Error::Sql("unexpected token".into());
        assert_eq!(e.to_string(), "sql error: unexpected token");
        assert_eq!(e.stage(), "sql");
        assert_eq!(e.message(), "unexpected token");
    }

    #[test]
    fn all_variants_have_distinct_stages() {
        let variants = [
            Error::Parse(String::new()),
            Error::Translate(String::new()),
            Error::Type(String::new()),
            Error::Optimize(String::new()),
            Error::CodeGen(String::new()),
            Error::Sql(String::new()),
            Error::Plan(String::new()),
            Error::Exec(String::new()),
            Error::Catalog(String::new()),
            Error::Data(String::new()),
            Error::Unsupported(String::new()),
            Error::Cancelled(String::new()),
            Error::Timeout(String::new()),
            Error::Overloaded(String::new()),
            Error::ResourceExhausted(String::new()),
            Error::Internal(String::new()),
        ];
        let mut stages: Vec<&str> = variants.iter().map(|v| v.stage()).collect();
        stages.sort_unstable();
        stages.dedup();
        assert_eq!(stages.len(), variants.len());
    }

    #[test]
    fn transient_classification_matches_taxonomy() {
        assert!(Error::Cancelled(String::new()).is_transient());
        assert!(Error::Timeout(String::new()).is_transient());
        assert!(Error::Overloaded(String::new()).is_transient());
        assert!(Error::ResourceExhausted(String::new()).is_transient());
        assert!(Error::Internal(String::new()).is_transient());
        assert!(!Error::Parse(String::new()).is_transient());
        assert!(!Error::Exec(String::new()).is_transient());
        assert!(!Error::Catalog(String::new()).is_transient());
        assert!(!Error::Unsupported(String::new()).is_transient());
    }
}
