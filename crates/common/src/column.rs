//! Typed columnar storage with optional validity (null) masks.
//!
//! A [`Column`] is the unit of data everywhere in the reproduction: tables in
//! the SQL engine, series in the DataFrame baseline, and result sets. Storage
//! is a plain `Vec` per type plus an optional `Vec<bool>` validity mask
//! (`None` = all rows valid), which keeps the common null-free path
//! branch-light.

use crate::error::{Error, Result};
use crate::value::Value;
use std::fmt;
use std::sync::Arc;

/// Static column type.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum DType {
    /// 64-bit signed integer.
    Int,
    /// 64-bit float.
    Float,
    /// Boolean.
    Bool,
    /// UTF-8 string.
    Str,
    /// Days since 1970-01-01.
    Date,
}

impl fmt::Display for DType {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            DType::Int => "int",
            DType::Float => "float",
            DType::Bool => "bool",
            DType::Str => "str",
            DType::Date => "date",
        };
        write!(f, "{s}")
    }
}

impl DType {
    /// `true` for types that participate in arithmetic.
    pub fn is_numeric(self) -> bool {
        matches!(self, DType::Int | DType::Float)
    }
}

/// A deduplicated, order-preserving string dictionary: code `i` maps to the
/// `i`-th distinct string in first-occurrence order. Shared across columns
/// via `Arc` so gathers, slices and snapshots never copy the string payload.
#[derive(Debug, Clone, Default)]
pub struct Dictionary {
    strs: Vec<String>,
    index: crate::hash::FxHashMap<String, u32>,
}

impl Dictionary {
    /// An empty dictionary.
    pub fn new() -> Dictionary {
        Dictionary::default()
    }

    /// Number of distinct entries.
    pub fn len(&self) -> usize {
        self.strs.len()
    }

    /// `true` when the dictionary has no entries.
    pub fn is_empty(&self) -> bool {
        self.strs.is_empty()
    }

    /// The string for `code` (panics when out of range).
    #[inline]
    pub fn get(&self, code: u32) -> &str {
        &self.strs[code as usize]
    }

    /// The code for `s`, when present.
    #[inline]
    pub fn code_of(&self, s: &str) -> Option<u32> {
        self.index.get(s).copied()
    }

    /// The code for `s`, interning it if absent. Existing codes never move,
    /// so extending a dictionary keeps every previously issued code valid.
    pub fn intern(&mut self, s: &str) -> u32 {
        if let Some(&c) = self.index.get(s) {
            return c;
        }
        let c = self.strs.len() as u32;
        self.strs.push(s.to_string());
        self.index.insert(s.to_string(), c);
        c
    }

    /// All entries in code order.
    pub fn strs(&self) -> &[String] {
        &self.strs
    }

    /// Per-code translation table into `target`'s code space; `None` marks
    /// entries absent from `target`.
    pub fn translate_to(&self, target: &Dictionary) -> Vec<Option<u32>> {
        self.strs.iter().map(|s| target.code_of(s)).collect()
    }

    /// Estimated heap footprint of the string payload and lookup index.
    pub fn heap_bytes(&self) -> u64 {
        let payload: u64 = self
            .strs
            .iter()
            .map(|s| (std::mem::size_of::<String>() + s.capacity()) as u64)
            .sum();
        // The index holds one owned key copy plus a u32 per entry.
        2 * payload + 4 * self.strs.len() as u64
    }
}

impl PartialEq for Dictionary {
    fn eq(&self, other: &Dictionary) -> bool {
        self.strs == other.strs
    }
}

/// Borrowed view of a [`Column::DictStr`]: `(codes, dict, validity)`.
pub type DictParts<'a> = (&'a [u32], &'a Arc<Dictionary>, Option<&'a [bool]>);

/// A typed column of values with an optional validity mask.
#[derive(Debug, Clone, PartialEq)]
pub enum Column {
    /// Integers. Second field: validity, `None` = all valid.
    Int(Vec<i64>, Option<Vec<bool>>),
    /// Floats.
    Float(Vec<f64>, Option<Vec<bool>>),
    /// Booleans.
    Bool(Vec<bool>, Option<Vec<bool>>),
    /// Strings.
    Str(Vec<String>, Option<Vec<bool>>),
    /// Dictionary-encoded strings: dense `u32` codes into a shared,
    /// order-preserving [`Dictionary`]. Reports [`DType::Str`] — the encoding
    /// is a storage/execution representation, not a logical type. Codes at
    /// invalid rows are placeholders (possibly out of dictionary range);
    /// every consumer checks validity before decoding.
    DictStr {
        /// Per-row dictionary codes.
        codes: Vec<u32>,
        /// The shared code→string dictionary.
        dict: Arc<Dictionary>,
        /// Validity, `None` = all valid.
        valid: Option<Vec<bool>>,
    },
    /// Dates (days since epoch).
    Date(Vec<i32>, Option<Vec<bool>>),
}

macro_rules! per_variant {
    ($self:expr, $data:ident, $valid:ident => $body:expr) => {
        match $self {
            Column::Int($data, $valid) => $body,
            Column::Float($data, $valid) => $body,
            Column::Bool($data, $valid) => $body,
            Column::Str($data, $valid) => $body,
            Column::DictStr {
                codes: $data,
                valid: $valid,
                ..
            } => $body,
            Column::Date($data, $valid) => $body,
        }
    };
}

impl Column {
    /// Creates an empty column of type `dtype`.
    pub fn new(dtype: DType) -> Column {
        Column::with_capacity(dtype, 0)
    }

    /// Creates an empty column of type `dtype` with reserved capacity.
    pub fn with_capacity(dtype: DType, cap: usize) -> Column {
        match dtype {
            DType::Int => Column::Int(Vec::with_capacity(cap), None),
            DType::Float => Column::Float(Vec::with_capacity(cap), None),
            DType::Bool => Column::Bool(Vec::with_capacity(cap), None),
            DType::Str => Column::Str(Vec::with_capacity(cap), None),
            DType::Date => Column::Date(Vec::with_capacity(cap), None),
        }
    }

    /// Reserves capacity for at least `additional` more rows, so bulk
    /// concatenations (e.g. pipeline-sink merges that know the total row
    /// count up front) avoid doubling reallocations.
    pub fn reserve(&mut self, additional: usize) {
        per_variant!(self, data, valid => {
            data.reserve(additional);
            if let Some(v) = valid {
                v.reserve(additional);
            }
        })
    }

    /// Builds a column from scalar values; the dtype is taken from the first
    /// non-null value (default `Float` when all values are null).
    pub fn from_values(values: &[Value]) -> Result<Column> {
        let dtype = values
            .iter()
            .find_map(|v| v.dtype())
            .unwrap_or(DType::Float);
        let mut col = Column::with_capacity(dtype, values.len());
        for v in values {
            col.push(v.clone())?;
        }
        Ok(col)
    }

    /// Number of rows.
    pub fn len(&self) -> usize {
        per_variant!(self, data, _valid => data.len())
    }

    /// `true` when the column has no rows.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Estimated heap footprint in bytes: element storage plus string
    /// payloads plus the validity vector. A coarse estimate (capacity slack
    /// and allocator overhead are ignored) used by the per-query memory
    /// budget to charge materialized intermediates; see `docs/RESILIENCE.md`.
    pub fn heap_bytes(&self) -> u64 {
        let elems = match self {
            Column::Int(d, _) => std::mem::size_of_val(d.as_slice()) as u64,
            Column::Float(d, _) => std::mem::size_of_val(d.as_slice()) as u64,
            Column::Bool(d, _) => std::mem::size_of_val(d.as_slice()) as u64,
            // Vec slot capacity (not len) plus each string's own buffer: a
            // `Vec<String>` owns `capacity()` 24-byte slots whether or not
            // they are filled, and every `String` owns its byte buffer.
            Column::Str(d, _) => {
                (std::mem::size_of::<String>() * d.capacity()) as u64
                    + d.iter().map(|s| s.capacity() as u64).sum::<u64>()
            }
            // Codes always count; the shared dictionary payload counts only
            // while this column holds its sole reference — shared dicts were
            // charged when first materialized and must not be re-charged by
            // every view (see `docs/RESILIENCE.md` § memory budget).
            Column::DictStr { codes, dict, .. } => {
                let dict_bytes = if Arc::strong_count(dict) == 1 {
                    dict.heap_bytes()
                } else {
                    0
                };
                4 * codes.capacity() as u64 + dict_bytes
            }
            Column::Date(d, _) => std::mem::size_of_val(d.as_slice()) as u64,
        };
        let valid = per_variant!(self, _data, valid => {
            valid.as_ref().map_or(0, |v| v.len() as u64)
        });
        elems + valid
    }

    /// The column's static type.
    pub fn dtype(&self) -> DType {
        match self {
            Column::Int(..) => DType::Int,
            Column::Float(..) => DType::Float,
            Column::Bool(..) => DType::Bool,
            Column::Str(..) | Column::DictStr { .. } => DType::Str,
            Column::Date(..) => DType::Date,
        }
    }

    /// `true` when row `i` holds a valid (non-null) value.
    #[inline]
    pub fn is_valid(&self, i: usize) -> bool {
        per_variant!(self, _data, valid => valid.as_ref().map_or(true, |v| v[i]))
    }

    /// Number of null rows.
    pub fn null_count(&self) -> usize {
        per_variant!(self, _data, valid => valid
            .as_ref()
            .map_or(0, |v| v.iter().filter(|&&b| !b).count()))
    }

    /// Reads row `i` as a scalar [`Value`].
    pub fn get(&self, i: usize) -> Value {
        if !self.is_valid(i) {
            return Value::Null;
        }
        match self {
            Column::Int(d, _) => Value::Int(d[i]),
            Column::Float(d, _) => Value::Float(d[i]),
            Column::Bool(d, _) => Value::Bool(d[i]),
            Column::Str(d, _) => Value::Str(d[i].clone()),
            Column::DictStr { codes, dict, .. } => Value::Str(dict.get(codes[i]).to_string()),
            Column::Date(d, _) => Value::Date(d[i]),
        }
    }

    /// Appends a scalar. `Null` appends a placeholder and marks the row
    /// invalid. Ints widen to float columns; strings parse into date columns.
    pub fn push(&mut self, v: Value) -> Result<()> {
        if v.is_null() {
            self.push_null();
            return Ok(());
        }
        match (&mut *self, v) {
            (Column::Int(d, val), Value::Int(x)) => push_valid(d, val, x),
            (Column::Float(d, val), Value::Float(x)) => push_valid(d, val, x),
            (Column::Float(d, val), Value::Int(x)) => push_valid(d, val, x as f64),
            (Column::Bool(d, val), Value::Bool(x)) => push_valid(d, val, x),
            (Column::Str(d, val), Value::Str(x)) => push_valid(d, val, x),
            (Column::DictStr { codes, dict, valid }, Value::Str(x)) => {
                let c = Arc::make_mut(dict).intern(&x);
                push_valid(codes, valid, c)
            }
            (Column::Date(d, val), Value::Date(x)) => push_valid(d, val, x),
            (Column::Date(d, val), Value::Str(x)) => {
                let parsed = crate::date::parse(&x)
                    .ok_or_else(|| Error::Data(format!("cannot parse '{x}' as date")))?;
                push_valid(d, val, parsed)
            }
            (col, v) => Err(Error::Data(format!(
                "type mismatch: cannot push {:?} into {} column",
                v,
                col.dtype()
            ))),
        }
    }

    /// Appends a null row.
    pub fn push_null(&mut self) {
        per_variant!(self, data, valid => {
            let n = data.len();
            data.push(Default::default());
            match valid {
                Some(v) => v.push(false),
                None => {
                    let mut v = vec![true; n];
                    v.push(false);
                    *valid = Some(v);
                }
            }
        })
    }

    /// Returns a new column with the rows at `indices`, in order.
    pub fn gather(&self, indices: &[usize]) -> Column {
        fn g<T: Clone + Default>(
            data: &[T],
            valid: &Option<Vec<bool>>,
            idx: &[usize],
        ) -> (Vec<T>, Option<Vec<bool>>) {
            let out: Vec<T> = idx.iter().map(|&i| data[i].clone()).collect();
            let v = valid.as_ref().map(|v| idx.iter().map(|&i| v[i]).collect());
            (out, v)
        }
        match self {
            Column::Int(d, v) => {
                let (d, v) = g(d, v, indices);
                Column::Int(d, v)
            }
            Column::Float(d, v) => {
                let (d, v) = g(d, v, indices);
                Column::Float(d, v)
            }
            Column::Bool(d, v) => {
                let (d, v) = g(d, v, indices);
                Column::Bool(d, v)
            }
            Column::Str(d, v) => {
                let (d, v) = g(d, v, indices);
                Column::Str(d, v)
            }
            Column::DictStr { codes, dict, valid } => {
                let (codes, valid) = g(codes, valid, indices);
                Column::DictStr {
                    codes,
                    dict: dict.clone(),
                    valid,
                }
            }
            Column::Date(d, v) => {
                let (d, v) = g(d, v, indices);
                Column::Date(d, v)
            }
        }
    }

    /// Like [`Column::gather`], but `None` indices produce null rows — used by
    /// outer joins for non-matching sides.
    pub fn gather_opt(&self, indices: &[Option<usize>]) -> Column {
        // Dictionary-encoded columns stay encoded (codes move, the shared
        // dictionary doesn't): outer-join outputs keep riding code space.
        if let Column::DictStr { codes, dict, valid } = self {
            let mut out_codes = Vec::with_capacity(indices.len());
            let mut out_valid = vec![true; indices.len()];
            let mut any_null = false;
            for (k, ix) in indices.iter().enumerate() {
                match ix {
                    Some(i) => {
                        out_codes.push(codes[*i]);
                        if valid.as_ref().is_some_and(|v| !v[*i]) {
                            out_valid[k] = false;
                            any_null = true;
                        }
                    }
                    None => {
                        out_codes.push(0);
                        out_valid[k] = false;
                        any_null = true;
                    }
                }
            }
            return Column::DictStr {
                codes: out_codes,
                dict: dict.clone(),
                valid: any_null.then_some(out_valid),
            };
        }
        let mut out = Column::with_capacity(self.dtype(), indices.len());
        for ix in indices {
            match ix {
                Some(i) => {
                    // push cannot fail: the value comes from this column.
                    out.push(self.get(*i)).expect("same dtype");
                }
                None => out.push_null(),
            }
        }
        out
    }

    /// Keeps the rows where `mask` is `true`.
    pub fn filter(&self, mask: &[bool]) -> Column {
        debug_assert_eq!(mask.len(), self.len());
        let indices: Vec<usize> = mask
            .iter()
            .enumerate()
            .filter_map(|(i, &keep)| keep.then_some(i))
            .collect();
        self.gather(&indices)
    }

    /// Returns rows `[start, end)` as a new column.
    pub fn slice(&self, start: usize, end: usize) -> Column {
        let end = end.min(self.len());
        let start = start.min(end);
        fn s<T: Clone>(
            data: &[T],
            valid: &Option<Vec<bool>>,
            start: usize,
            end: usize,
        ) -> (Vec<T>, Option<Vec<bool>>) {
            (
                data[start..end].to_vec(),
                valid.as_ref().map(|v| v[start..end].to_vec()),
            )
        }
        match self {
            Column::Int(d, v) => {
                let (d, v) = s(d, v, start, end);
                Column::Int(d, v)
            }
            Column::Float(d, v) => {
                let (d, v) = s(d, v, start, end);
                Column::Float(d, v)
            }
            Column::Bool(d, v) => {
                let (d, v) = s(d, v, start, end);
                Column::Bool(d, v)
            }
            Column::Str(d, v) => {
                let (d, v) = s(d, v, start, end);
                Column::Str(d, v)
            }
            Column::DictStr { codes, dict, valid } => {
                let (codes, valid) = s(codes, valid, start, end);
                Column::DictStr {
                    codes,
                    dict: dict.clone(),
                    valid,
                }
            }
            Column::Date(d, v) => {
                let (d, v) = s(d, v, start, end);
                Column::Date(d, v)
            }
        }
    }

    /// Appends all rows of `other`; types must match.
    pub fn append(&mut self, other: &Column) -> Result<()> {
        if self.dtype() != other.dtype() {
            return Err(Error::Data(format!(
                "cannot append {} column to {} column",
                other.dtype(),
                self.dtype()
            )));
        }
        // Typed bulk extend (the push-per-row path boxes every cell as a
        // `Value`; appends on the morsel-merge path are hot). Semantics
        // match push exactly: data at null slots normalizes to the type's
        // default, and a validity mask appears only when `other` actually
        // contains a null.
        fn app<T: Clone + Default>(
            d: &mut Vec<T>,
            v: &mut Option<Vec<bool>>,
            od: &[T],
            ov: Option<&[bool]>,
        ) {
            let all_valid = ov.map_or(true, |o| o.iter().all(|&b| b));
            if all_valid {
                if let Some(v) = v {
                    v.resize(v.len() + od.len(), true);
                }
                d.extend(od.iter().cloned());
            } else {
                let o = ov.expect("invalid rows imply a mask");
                if v.is_none() {
                    *v = Some(vec![true; d.len()]);
                }
                v.as_mut().expect("just filled").extend_from_slice(o);
                d.extend(
                    od.iter()
                        .zip(o)
                        .map(|(x, &ok)| if ok { x.clone() } else { T::default() }),
                );
            }
        }
        // Row-at-a-time extend matching push/push_null semantics, for the
        // cross-representation string cases (`None` item = null row).
        fn extend_rows<T: Default>(
            d: &mut Vec<T>,
            v: &mut Option<Vec<bool>>,
            it: impl Iterator<Item = Option<T>>,
        ) {
            for x in it {
                match x {
                    Some(x) => {
                        d.push(x);
                        if let Some(v) = v {
                            v.push(true);
                        }
                    }
                    None => {
                        let n = d.len();
                        d.push(T::default());
                        match v {
                            Some(v) => v.push(false),
                            None => {
                                let mut m = vec![true; n];
                                m.push(false);
                                *v = Some(m);
                            }
                        }
                    }
                }
            }
        }
        match (self, other) {
            (Column::Int(d, v), Column::Int(od, ov)) => app(d, v, od, ov.as_deref()),
            (Column::Float(d, v), Column::Float(od, ov)) => app(d, v, od, ov.as_deref()),
            (Column::Bool(d, v), Column::Bool(od, ov)) => app(d, v, od, ov.as_deref()),
            (Column::Str(d, v), Column::Str(od, ov)) => app(d, v, od, ov.as_deref()),
            (
                Column::DictStr { codes, dict, valid },
                Column::DictStr {
                    codes: oc,
                    dict: od,
                    valid: ov,
                },
            ) => {
                if Arc::ptr_eq(dict, od) {
                    // Same dictionary: codes are directly comparable.
                    app(codes, valid, oc, ov.as_deref());
                } else {
                    // Remap the incoming codes into this column's dictionary,
                    // interning unseen entries (existing codes never move, so
                    // rows already stored keep their meaning).
                    let d = Arc::make_mut(dict);
                    let remap: Vec<u32> = od.strs().iter().map(|s| d.intern(s)).collect();
                    extend_rows(
                        codes,
                        valid,
                        oc.iter().enumerate().map(|(i, &c)| {
                            ov.as_ref()
                                .map_or(true, |v| v[i])
                                .then(|| remap[c as usize])
                        }),
                    );
                }
            }
            (Column::DictStr { codes, dict, valid }, Column::Str(od, ov)) => {
                // Plain strings appended to an encoded column re-encode
                // against the existing dictionary, extending it in place.
                let d = Arc::make_mut(dict);
                extend_rows(
                    codes,
                    valid,
                    od.iter()
                        .enumerate()
                        .map(|(i, s)| ov.as_ref().map_or(true, |v| v[i]).then(|| d.intern(s))),
                );
            }
            (
                Column::Str(d, v),
                Column::DictStr {
                    codes: oc,
                    dict: od,
                    valid: ov,
                },
            ) => {
                extend_rows(
                    d,
                    v,
                    oc.iter().enumerate().map(|(i, &c)| {
                        ov.as_ref()
                            .map_or(true, |v| v[i])
                            .then(|| od.get(c).to_string())
                    }),
                );
            }
            (Column::Date(d, v), Column::Date(od, ov)) => app(d, v, od, ov.as_deref()),
            _ => unreachable!("dtype equality checked above"),
        }
        Ok(())
    }

    /// Casts to `target`, converting row by row (int↔float, anything→str,
    /// str→date, int→bool non-zero).
    pub fn cast(&self, target: DType) -> Result<Column> {
        if self.dtype() == target {
            return Ok(self.clone());
        }
        let mut out = Column::with_capacity(target, self.len());
        for i in 0..self.len() {
            let v = self.get(i);
            let conv = match (&v, target) {
                (Value::Null, _) => Value::Null,
                (Value::Int(x), DType::Float) => Value::Float(*x as f64),
                (Value::Float(x), DType::Int) => Value::Int(*x as i64),
                (Value::Bool(b), DType::Int) => Value::Int(i64::from(*b)),
                (Value::Int(x), DType::Bool) => Value::Bool(*x != 0),
                (Value::Str(s), DType::Date) => Value::Date(
                    crate::date::parse(s)
                        .ok_or_else(|| Error::Data(format!("cannot cast '{s}' to date")))?,
                ),
                (Value::Date(d), DType::Int) => Value::Int(i64::from(*d)),
                (Value::Int(x), DType::Date) => Value::Date(*x as i32),
                (v, DType::Str) => Value::Str(v.to_string()),
                (v, t) => {
                    return Err(Error::Data(format!("cannot cast {v:?} to {t}")));
                }
            };
            out.push(conv)?;
        }
        Ok(out)
    }

    /// Iterates scalar values (clones strings; fine for tests/small paths).
    pub fn iter_values(&self) -> impl Iterator<Item = Value> + '_ {
        (0..self.len()).map(move |i| self.get(i))
    }

    /// Zero-copy view of integer data, `None` for other dtypes. Together with
    /// [`Column::validity`], this is the accessor the typed kernels dispatch
    /// on: one dtype check per column, then monomorphic loops over the slice.
    #[inline]
    pub fn as_i64_slice(&self) -> Option<&[i64]> {
        match self {
            Column::Int(d, _) => Some(d),
            _ => None,
        }
    }

    /// Zero-copy view of float data, `None` for other dtypes.
    #[inline]
    pub fn as_f64_slice(&self) -> Option<&[f64]> {
        match self {
            Column::Float(d, _) => Some(d),
            _ => None,
        }
    }

    /// Zero-copy view of bool data, `None` for other dtypes.
    #[inline]
    pub fn as_bool_slice(&self) -> Option<&[bool]> {
        match self {
            Column::Bool(d, _) => Some(d),
            _ => None,
        }
    }

    /// Zero-copy view of date data (days since epoch), `None` otherwise.
    #[inline]
    pub fn as_date_slice(&self) -> Option<&[i32]> {
        match self {
            Column::Date(d, _) => Some(d),
            _ => None,
        }
    }

    /// Zero-copy view of string data, `None` for other dtypes.
    #[inline]
    pub fn as_str_slice(&self) -> Option<&[String]> {
        match self {
            Column::Str(d, _) => Some(d),
            _ => None,
        }
    }

    /// Direct access to integer data (panics on wrong type) — fast paths.
    pub fn as_int(&self) -> &[i64] {
        match self {
            Column::Int(d, _) => d,
            _ => panic!("not an int column"),
        }
    }

    /// Direct access to float data (panics on wrong type).
    pub fn as_float(&self) -> &[f64] {
        match self {
            Column::Float(d, _) => d,
            _ => panic!("not a float column"),
        }
    }

    /// Direct access to bool data (panics on wrong type).
    pub fn as_bool(&self) -> &[bool] {
        match self {
            Column::Bool(d, _) => d,
            _ => panic!("not a bool column"),
        }
    }

    /// Direct access to string data (panics on wrong type).
    pub fn as_str_col(&self) -> &[String] {
        match self {
            Column::Str(d, _) => d,
            _ => panic!("not a str column"),
        }
    }

    /// Direct access to date data (panics on wrong type).
    pub fn as_date(&self) -> &[i32] {
        match self {
            Column::Date(d, _) => d,
            _ => panic!("not a date column"),
        }
    }

    /// The validity mask if any row is null.
    pub fn validity(&self) -> Option<&[bool]> {
        per_variant!(self, _data, valid => valid.as_deref())
    }

    /// Convenience constructor from `i64` data.
    pub fn from_i64(data: Vec<i64>) -> Column {
        Column::Int(data, None)
    }

    /// Convenience constructor from `f64` data.
    pub fn from_f64(data: Vec<f64>) -> Column {
        Column::Float(data, None)
    }

    /// Convenience constructor from bool data.
    pub fn from_bool(data: Vec<bool>) -> Column {
        Column::Bool(data, None)
    }

    /// Convenience constructor from string data.
    pub fn from_str_vec(data: Vec<String>) -> Column {
        Column::Str(data, None)
    }

    /// Convenience constructor from `&str` slices.
    pub fn from_strs(data: &[&str]) -> Column {
        Column::Str(data.iter().map(|s| s.to_string()).collect(), None)
    }

    /// Convenience constructor from day numbers.
    pub fn from_dates(data: Vec<i32>) -> Column {
        Column::Date(data, None)
    }

    /// Dictionary-encoded view: `(codes, dict, validity)` for
    /// [`Column::DictStr`], `None` for every other representation.
    #[inline]
    pub fn dict_parts(&self) -> Option<DictParts<'_>> {
        match self {
            Column::DictStr { codes, dict, valid } => Some((codes, dict, valid.as_deref())),
            _ => None,
        }
    }

    /// Dictionary-encodes a plain string column (dedup on build,
    /// first-occurrence code order). Already-encoded columns and other
    /// dtypes return an unchanged clone.
    pub fn encode_str(&self) -> Column {
        let Column::Str(d, v) = self else {
            return self.clone();
        };
        let mut dict = Dictionary::new();
        let codes: Vec<u32> = d
            .iter()
            .enumerate()
            .map(|(i, s)| {
                if v.as_ref().map_or(true, |v| v[i]) {
                    dict.intern(s)
                } else {
                    0
                }
            })
            .collect();
        Column::DictStr {
            codes,
            dict: Arc::new(dict),
            valid: v.clone(),
        }
    }

    /// Decodes a dictionary-encoded column back to plain strings (the result
    /// materialization boundary). Other representations return an unchanged
    /// clone.
    pub fn decode_str(&self) -> Column {
        let Column::DictStr { codes, dict, valid } = self else {
            return self.clone();
        };
        let d: Vec<String> = codes
            .iter()
            .enumerate()
            .map(|(i, &c)| {
                if valid.as_ref().map_or(true, |v| v[i]) {
                    dict.get(c).to_string()
                } else {
                    String::new()
                }
            })
            .collect();
        Column::Str(d, valid.clone())
    }

    /// Re-encodes a string-typed column into `dict`'s code space **without
    /// extending it**: rows whose string is absent from `dict` come back
    /// invalid. That sentinel is exactly join no-match semantics (NULL keys
    /// never match), which is what fused probes use it for — the build side's
    /// dictionary defines the code space, and probe rows outside it cannot
    /// have a partner.
    pub fn project_into_dict(&self, dict: &Arc<Dictionary>) -> Column {
        match self {
            Column::DictStr {
                codes,
                dict: own,
                valid,
            } => {
                if Arc::ptr_eq(own, dict) {
                    return self.clone();
                }
                let table = own.translate_to(dict);
                let mut out_valid = vec![true; codes.len()];
                let mut any_null = false;
                let out_codes: Vec<u32> = codes
                    .iter()
                    .enumerate()
                    .map(|(i, &c)| {
                        let ok = valid.as_ref().map_or(true, |v| v[i]);
                        match ok.then(|| table[c as usize]).flatten() {
                            Some(nc) => nc,
                            None => {
                                out_valid[i] = false;
                                any_null = true;
                                0
                            }
                        }
                    })
                    .collect();
                Column::DictStr {
                    codes: out_codes,
                    dict: dict.clone(),
                    valid: any_null.then_some(out_valid),
                }
            }
            Column::Str(d, v) => {
                let mut out_valid = vec![true; d.len()];
                let mut any_null = false;
                let out_codes: Vec<u32> = d
                    .iter()
                    .enumerate()
                    .map(|(i, s)| {
                        let ok = v.as_ref().map_or(true, |vv| vv[i]);
                        match ok.then(|| dict.code_of(s)).flatten() {
                            Some(c) => c,
                            None => {
                                out_valid[i] = false;
                                any_null = true;
                                0
                            }
                        }
                    })
                    .collect();
                Column::DictStr {
                    codes: out_codes,
                    dict: dict.clone(),
                    valid: any_null.then_some(out_valid),
                }
            }
            other => other.clone(),
        }
    }
}

/// Unifies two string-typed columns onto one shared dictionary, so packed
/// key layouts can compare their codes directly: the result columns are both
/// [`Column::DictStr`] holding the *same* `Arc`. The left dictionary is the
/// base (its codes never move); right-only entries extend it and the right
/// codes remap. Non-string inputs come back unchanged.
pub fn unify_dict_pair(l: &Column, r: &Column) -> (Column, Column) {
    if l.dtype() != DType::Str || r.dtype() != DType::Str {
        return (l.clone(), r.clone());
    }
    let l = l.encode_str();
    if let (
        Column::DictStr { dict: ld, .. },
        Column::DictStr {
            codes: rc,
            dict: rd,
            valid: rv,
        },
    ) = (&l, r)
    {
        if Arc::ptr_eq(ld, rd) {
            return (l.clone(), r.clone());
        }
        let mut base = (**ld).clone();
        let remap: Vec<u32> = rd.strs().iter().map(|s| base.intern(s)).collect();
        let shared = Arc::new(base);
        let r_codes: Vec<u32> = rc
            .iter()
            .enumerate()
            .map(|(i, &c)| {
                if rv.as_ref().map_or(true, |v| v[i]) {
                    remap[c as usize]
                } else {
                    0
                }
            })
            .collect();
        let new_r = Column::DictStr {
            codes: r_codes,
            dict: shared.clone(),
            valid: rv.clone(),
        };
        let new_l = match l {
            Column::DictStr { codes, valid, .. } => Column::DictStr {
                codes,
                dict: shared,
                valid,
            },
            _ => unreachable!("encode_str yields DictStr for string columns"),
        };
        return (new_l, new_r);
    }
    // Right side is plain: intern its rows against the left dictionary.
    let Column::DictStr {
        codes: lc,
        dict: ld,
        valid: lv,
    } = &l
    else {
        unreachable!("encode_str yields DictStr for string columns")
    };
    let Column::Str(rd, rv) = r else {
        unreachable!("non-dict string columns are plain")
    };
    let mut base = (**ld).clone();
    let r_codes: Vec<u32> = rd
        .iter()
        .enumerate()
        .map(|(i, s)| {
            if rv.as_ref().map_or(true, |v| v[i]) {
                base.intern(s)
            } else {
                0
            }
        })
        .collect();
    let shared = Arc::new(base);
    (
        Column::DictStr {
            codes: lc.clone(),
            dict: shared.clone(),
            valid: lv.clone(),
        },
        Column::DictStr {
            codes: r_codes,
            dict: shared,
            valid: rv.clone(),
        },
    )
}

/// The process-wide empty dictionary: zero-row placeholder columns that must
/// share one `Arc` (key-layout planning compares dictionary identity) all
/// point here.
pub fn empty_dict() -> Arc<Dictionary> {
    static EMPTY: std::sync::OnceLock<Arc<Dictionary>> = std::sync::OnceLock::new();
    EMPTY.get_or_init(|| Arc::new(Dictionary::new())).clone()
}

#[inline]
fn push_valid<T>(data: &mut Vec<T>, valid: &mut Option<Vec<bool>>, x: T) -> Result<()> {
    data.push(x);
    if let Some(v) = valid {
        v.push(true);
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn push_and_get_round_trip() {
        let mut c = Column::new(DType::Int);
        c.push(Value::Int(1)).unwrap();
        c.push(Value::Null).unwrap();
        c.push(Value::Int(3)).unwrap();
        assert_eq!(c.len(), 3);
        assert_eq!(c.get(0), Value::Int(1));
        assert_eq!(c.get(1), Value::Null);
        assert_eq!(c.get(2), Value::Int(3));
        assert_eq!(c.null_count(), 1);
    }

    #[test]
    fn int_widens_into_float_column() {
        let mut c = Column::new(DType::Float);
        c.push(Value::Int(2)).unwrap();
        c.push(Value::Float(0.5)).unwrap();
        assert_eq!(c.get(0), Value::Float(2.0));
    }

    #[test]
    fn type_mismatch_is_an_error() {
        let mut c = Column::new(DType::Int);
        assert!(c.push(Value::Str("x".into())).is_err());
    }

    #[test]
    fn gather_and_filter() {
        let c = Column::from_i64(vec![10, 20, 30, 40]);
        let g = c.gather(&[3, 0]);
        assert_eq!(g.get(0), Value::Int(40));
        assert_eq!(g.get(1), Value::Int(10));
        let f = c.filter(&[true, false, true, false]);
        assert_eq!(f.len(), 2);
        assert_eq!(f.get(1), Value::Int(30));
    }

    #[test]
    fn gather_preserves_validity() {
        let mut c = Column::new(DType::Float);
        c.push(Value::Float(1.0)).unwrap();
        c.push_null();
        c.push(Value::Float(3.0)).unwrap();
        let g = c.gather(&[1, 2]);
        assert_eq!(g.get(0), Value::Null);
        assert_eq!(g.get(1), Value::Float(3.0));
    }

    #[test]
    fn gather_opt_produces_nulls() {
        let c = Column::from_strs(&["a", "b"]);
        let g = c.gather_opt(&[Some(1), None, Some(0)]);
        assert_eq!(g.get(0), Value::Str("b".into()));
        assert_eq!(g.get(1), Value::Null);
        assert_eq!(g.get(2), Value::Str("a".into()));
    }

    #[test]
    fn cast_paths() {
        let c = Column::from_i64(vec![1, 2]);
        assert_eq!(c.cast(DType::Float).unwrap().as_float(), &[1.0, 2.0]);
        let s = Column::from_strs(&["1994-01-01"]);
        let d = s.cast(DType::Date).unwrap();
        assert_eq!(
            d.get(0),
            Value::Date(crate::date::parse("1994-01-01").unwrap())
        );
        assert_eq!(c.cast(DType::Str).unwrap().get(0), Value::Str("1".into()));
    }

    #[test]
    fn append_checks_types() {
        let mut a = Column::from_i64(vec![1]);
        let b = Column::from_i64(vec![2]);
        a.append(&b).unwrap();
        assert_eq!(a.len(), 2);
        assert!(a.append(&Column::from_f64(vec![1.0])).is_err());
    }

    #[test]
    fn from_values_infers_dtype() {
        let c = Column::from_values(&[Value::Null, Value::Str("x".into())]).unwrap();
        assert_eq!(c.dtype(), DType::Str);
        assert_eq!(c.get(0), Value::Null);
    }

    #[test]
    fn typed_slice_accessors() {
        let c = Column::from_i64(vec![1, 2]);
        assert_eq!(c.as_i64_slice(), Some(&[1i64, 2][..]));
        assert_eq!(c.as_f64_slice(), None);
        let f = Column::from_f64(vec![0.5]);
        assert_eq!(f.as_f64_slice(), Some(&[0.5][..]));
        let d = Column::from_dates(vec![7]);
        assert_eq!(d.as_date_slice(), Some(&[7i32][..]));
        let b = Column::from_bool(vec![true]);
        assert_eq!(b.as_bool_slice(), Some(&[true][..]));
        let s = Column::from_strs(&["x"]);
        assert_eq!(s.as_str_slice().map(|v| v.len()), Some(1));
    }

    #[test]
    fn slice_bounds() {
        let c = Column::from_i64(vec![1, 2, 3]);
        let s = c.slice(1, 10);
        assert_eq!(s.len(), 2);
        assert_eq!(s.get(0), Value::Int(2));
    }
}
