//! Proleptic-Gregorian calendar arithmetic on `i32` day numbers.
//!
//! Dates are stored engine-wide as the number of days since the Unix epoch
//! (1970-01-01 = day 0). This module provides the conversions the TPC-H
//! workloads and the SQL `EXTRACT`/date-literal machinery need, with no
//! external dependency.

/// Returns `true` when `year` is a Gregorian leap year.
pub fn is_leap_year(year: i32) -> bool {
    (year % 4 == 0 && year % 100 != 0) || year % 400 == 0
}

/// Days in `month` (1-12) of `year`.
pub fn days_in_month(year: i32, month: u32) -> u32 {
    match month {
        1 | 3 | 5 | 7 | 8 | 10 | 12 => 31,
        4 | 6 | 9 | 11 => 30,
        2 => {
            if is_leap_year(year) {
                29
            } else {
                28
            }
        }
        _ => panic!("invalid month {month}"),
    }
}

/// Converts a civil date to days since 1970-01-01.
///
/// Uses Howard Hinnant's `days_from_civil` algorithm, valid over the whole
/// `i32` year range we care about.
pub fn from_ymd(year: i32, month: u32, day: u32) -> i32 {
    debug_assert!((1..=12).contains(&month), "invalid month {month}");
    debug_assert!(
        day >= 1 && day <= days_in_month(year, month),
        "invalid day {day}"
    );
    let y = i64::from(year) - i64::from(month <= 2);
    let era = if y >= 0 { y } else { y - 399 } / 400;
    let yoe = y - era * 400; // [0, 399]
    let mp = (i64::from(month) + 9) % 12; // [0, 11], Mar=0
    let doy = (153 * mp + 2) / 5 + i64::from(day) - 1; // [0, 365]
    let doe = yoe * 365 + yoe / 4 - yoe / 100 + doy; // [0, 146096]
    (era * 146_097 + doe - 719_468) as i32
}

/// Converts days since 1970-01-01 back to a `(year, month, day)` triple.
pub fn to_ymd(days: i32) -> (i32, u32, u32) {
    let z = i64::from(days) + 719_468;
    let era = if z >= 0 { z } else { z - 146_096 } / 146_097;
    let doe = z - era * 146_097; // [0, 146096]
    let yoe = (doe - doe / 1460 + doe / 36524 - doe / 146_096) / 365; // [0, 399]
    let y = yoe + era * 400;
    let doy = doe - (365 * yoe + yoe / 4 - yoe / 100); // [0, 365]
    let mp = (5 * doy + 2) / 153; // [0, 11]
    let d = (doy - (153 * mp + 2) / 5 + 1) as u32; // [1, 31]
    let m = if mp < 10 { mp + 3 } else { mp - 9 } as u32; // [1, 12]
    ((y + i64::from(m <= 2)) as i32, m, d)
}

/// Parses a `YYYY-MM-DD` string into a day number.
pub fn parse(s: &str) -> Option<i32> {
    let bytes = s.as_bytes();
    if bytes.len() != 10 || bytes[4] != b'-' || bytes[7] != b'-' {
        return None;
    }
    let year: i32 = s[0..4].parse().ok()?;
    let month: u32 = s[5..7].parse().ok()?;
    let day: u32 = s[8..10].parse().ok()?;
    if !(1..=12).contains(&month) || day < 1 || day > days_in_month(year, month) {
        return None;
    }
    Some(from_ymd(year, month, day))
}

/// Formats a day number as `YYYY-MM-DD`.
pub fn format(days: i32) -> String {
    let (y, m, d) = to_ymd(days);
    format!("{y:04}-{m:02}-{d:02}")
}

/// Extracts the year component.
pub fn year(days: i32) -> i32 {
    to_ymd(days).0
}

/// Extracts the month component (1-12).
pub fn month(days: i32) -> u32 {
    to_ymd(days).1
}

/// Extracts the day-of-month component (1-31).
pub fn day(days: i32) -> u32 {
    to_ymd(days).2
}

/// Adds a number of calendar months, clamping the day-of-month
/// (e.g. Jan 31 + 1 month = Feb 28/29) — the SQL `INTERVAL 'n' MONTH` rule.
pub fn add_months(days: i32, months: i32) -> i32 {
    let (y, m, d) = to_ymd(days);
    let total = i64::from(y) * 12 + i64::from(m) - 1 + i64::from(months);
    let ny = (total.div_euclid(12)) as i32;
    let nm = (total.rem_euclid(12)) as u32 + 1;
    let nd = d.min(days_in_month(ny, nm));
    from_ymd(ny, nm, nd)
}

/// Adds a number of calendar years with the same day-clamping rule.
pub fn add_years(days: i32, years: i32) -> i32 {
    add_months(days, years * 12)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn epoch_is_day_zero() {
        assert_eq!(from_ymd(1970, 1, 1), 0);
        assert_eq!(to_ymd(0), (1970, 1, 1));
    }

    #[test]
    fn round_trip_over_a_wide_range() {
        // Every 13th day over ~120 years keeps the test fast while crossing
        // every month/leap boundary many times.
        let start = from_ymd(1930, 1, 1);
        let end = from_ymd(2050, 12, 31);
        let mut d = start;
        while d <= end {
            let (y, m, dd) = to_ymd(d);
            assert_eq!(from_ymd(y, m, dd), d);
            d += 13;
        }
    }

    #[test]
    fn parse_and_format_round_trip() {
        for s in ["1992-01-01", "1998-12-01", "2000-02-29", "1995-03-15"] {
            let d = parse(s).unwrap();
            assert_eq!(format(d), s);
        }
    }

    #[test]
    fn parse_rejects_malformed_input() {
        assert_eq!(parse("1992/01/01"), None);
        assert_eq!(parse("1992-13-01"), None);
        assert_eq!(parse("1992-02-30"), None);
        assert_eq!(parse("92-02-03"), None);
        assert_eq!(parse("1900-02-29"), None); // 1900 is not a leap year
    }

    #[test]
    fn leap_year_rules() {
        assert!(is_leap_year(2000));
        assert!(!is_leap_year(1900));
        assert!(is_leap_year(1996));
        assert!(!is_leap_year(1997));
    }

    #[test]
    fn known_tpch_dates_are_ordered() {
        let d1 = parse("1994-01-01").unwrap();
        let d2 = parse("1995-01-01").unwrap();
        assert_eq!(d2 - d1, 365);
    }

    #[test]
    fn add_months_clamps_day() {
        let jan31 = from_ymd(1999, 1, 31);
        assert_eq!(to_ymd(add_months(jan31, 1)), (1999, 2, 28));
        assert_eq!(to_ymd(add_months(jan31, 13)), (2000, 2, 29));
        let mar15 = from_ymd(1995, 3, 15);
        assert_eq!(to_ymd(add_months(mar15, 3)), (1995, 6, 15));
        assert_eq!(to_ymd(add_months(mar15, -3)), (1994, 12, 15));
    }

    #[test]
    fn add_years_matches_twelve_months() {
        let d = from_ymd(1994, 1, 1);
        assert_eq!(add_years(d, 1), add_months(d, 12));
        assert_eq!(to_ymd(add_years(d, 1)), (1995, 1, 1));
    }

    #[test]
    fn extract_components() {
        let d = parse("1998-09-02").unwrap();
        assert_eq!(year(d), 1998);
        assert_eq!(month(d), 9);
        assert_eq!(day(d), 2);
    }
}
