//! Scalar values exchanged between the DataFrame baseline, the SQL engine and
//! the test harness.

use crate::column::DType;
use crate::date;
use std::cmp::Ordering;
use std::fmt;

/// A dynamically-typed scalar.
///
/// `Null` is the SQL NULL / Pandas `NaN`-as-missing. Comparison helpers follow
/// SQL semantics where noted; [`Value::total_cmp`] provides the deterministic
/// total order used for sorting (NULLs first, then by value; mirrors the
/// engine's `ORDER BY` with `NULLS FIRST`).
#[derive(Debug, Clone, PartialEq)]
pub enum Value {
    /// Missing value.
    Null,
    /// 64-bit signed integer.
    Int(i64),
    /// 64-bit IEEE float.
    Float(f64),
    /// Boolean.
    Bool(bool),
    /// UTF-8 string.
    Str(String),
    /// Calendar date, days since 1970-01-01.
    Date(i32),
}

impl Value {
    /// The static type of this value, `None` for `Null`.
    pub fn dtype(&self) -> Option<DType> {
        match self {
            Value::Null => None,
            Value::Int(_) => Some(DType::Int),
            Value::Float(_) => Some(DType::Float),
            Value::Bool(_) => Some(DType::Bool),
            Value::Str(_) => Some(DType::Str),
            Value::Date(_) => Some(DType::Date),
        }
    }

    /// `true` when the value is `Null`.
    pub fn is_null(&self) -> bool {
        matches!(self, Value::Null)
    }

    /// Numeric view used by arithmetic: ints and dates widen to f64.
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Value::Int(i) => Some(*i as f64),
            Value::Float(f) => Some(*f),
            Value::Date(d) => Some(f64::from(*d)),
            Value::Bool(b) => Some(if *b { 1.0 } else { 0.0 }),
            _ => None,
        }
    }

    /// Integer view; floats are not silently truncated.
    pub fn as_i64(&self) -> Option<i64> {
        match self {
            Value::Int(i) => Some(*i),
            Value::Date(d) => Some(i64::from(*d)),
            Value::Bool(b) => Some(i64::from(*b)),
            _ => None,
        }
    }

    /// String view.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Value::Str(s) => Some(s),
            _ => None,
        }
    }

    /// Boolean view.
    pub fn as_bool(&self) -> Option<bool> {
        match self {
            Value::Bool(b) => Some(*b),
            _ => None,
        }
    }

    /// SQL three-valued comparison: `None` when either side is NULL or the
    /// types are incomparable.
    pub fn sql_cmp(&self, other: &Value) -> Option<Ordering> {
        use Value::*;
        match (self, other) {
            (Null, _) | (_, Null) => None,
            (Int(a), Int(b)) => Some(a.cmp(b)),
            (Float(a), Float(b)) => a.partial_cmp(b),
            (Int(a), Float(b)) => (*a as f64).partial_cmp(b),
            (Float(a), Int(b)) => a.partial_cmp(&(*b as f64)),
            (Bool(a), Bool(b)) => Some(a.cmp(b)),
            (Str(a), Str(b)) => Some(a.cmp(b)),
            (Date(a), Date(b)) => Some(a.cmp(b)),
            (Date(a), Str(b)) => date::parse(b).map(|d| a.cmp(&d)),
            (Str(a), Date(b)) => date::parse(a).map(|d| d.cmp(b)),
            (Int(a), Date(b)) => Some(a.cmp(&i64::from(*b))),
            (Date(a), Int(b)) => Some(i64::from(*a).cmp(b)),
            _ => None,
        }
    }

    /// Deterministic total order: NULL first, then numeric/bool/str/date by
    /// value; mixed numeric types compare by f64. Used for result
    /// canonicalization in tests and for ORDER BY.
    pub fn total_cmp(&self, other: &Value) -> Ordering {
        use Value::*;
        match (self, other) {
            (Null, Null) => Ordering::Equal,
            (Null, _) => Ordering::Less,
            (_, Null) => Ordering::Greater,
            (Float(a), Float(b)) => a.total_cmp(b),
            _ => self.sql_cmp(other).unwrap_or_else(|| {
                // Fall back to ordering by type tag for heterogeneous columns.
                self.type_rank().cmp(&other.type_rank())
            }),
        }
    }

    fn type_rank(&self) -> u8 {
        match self {
            Value::Null => 0,
            Value::Bool(_) => 1,
            Value::Int(_) => 2,
            Value::Float(_) => 3,
            Value::Date(_) => 4,
            Value::Str(_) => 5,
        }
    }
}

impl fmt::Display for Value {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Value::Null => write!(f, "NULL"),
            Value::Int(i) => write!(f, "{i}"),
            Value::Float(x) => {
                if x.fract() == 0.0 && x.abs() < 1e15 {
                    write!(f, "{x:.1}")
                } else {
                    write!(f, "{x}")
                }
            }
            Value::Bool(b) => write!(f, "{b}"),
            Value::Str(s) => write!(f, "{s}"),
            Value::Date(d) => write!(f, "{}", date::format(*d)),
        }
    }
}

impl From<i64> for Value {
    fn from(v: i64) -> Self {
        Value::Int(v)
    }
}
impl From<f64> for Value {
    fn from(v: f64) -> Self {
        Value::Float(v)
    }
}
impl From<bool> for Value {
    fn from(v: bool) -> Self {
        Value::Bool(v)
    }
}
impl From<&str> for Value {
    fn from(v: &str) -> Self {
        Value::Str(v.to_string())
    }
}
impl From<String> for Value {
    fn from(v: String) -> Self {
        Value::Str(v)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sql_cmp_null_propagates() {
        assert_eq!(Value::Null.sql_cmp(&Value::Int(1)), None);
        assert_eq!(Value::Int(1).sql_cmp(&Value::Null), None);
    }

    #[test]
    fn sql_cmp_mixed_numeric() {
        assert_eq!(
            Value::Int(2).sql_cmp(&Value::Float(2.0)),
            Some(Ordering::Equal)
        );
        assert_eq!(
            Value::Float(1.5).sql_cmp(&Value::Int(2)),
            Some(Ordering::Less)
        );
    }

    #[test]
    fn sql_cmp_date_vs_string_literal() {
        let d = Value::Date(date::parse("1994-06-01").unwrap());
        assert_eq!(
            d.sql_cmp(&Value::Str("1994-01-01".into())),
            Some(Ordering::Greater)
        );
        assert_eq!(
            d.sql_cmp(&Value::Str("1995-01-01".into())),
            Some(Ordering::Less)
        );
    }

    #[test]
    fn total_cmp_orders_null_first() {
        let mut vals = vec![Value::Int(3), Value::Null, Value::Int(1)];
        vals.sort_by(|a, b| a.total_cmp(b));
        assert_eq!(vals, vec![Value::Null, Value::Int(1), Value::Int(3)]);
    }

    #[test]
    fn display_formats() {
        assert_eq!(Value::Null.to_string(), "NULL");
        assert_eq!(Value::Float(2.0).to_string(), "2.0");
        assert_eq!(Value::Float(2.5).to_string(), "2.5");
        assert_eq!(Value::Date(0).to_string(), "1970-01-01");
    }

    #[test]
    fn conversions() {
        assert_eq!(Value::Int(7).as_f64(), Some(7.0));
        assert_eq!(Value::Bool(true).as_i64(), Some(1));
        assert_eq!(Value::Str("x".into()).as_str(), Some("x"));
        assert_eq!(Value::Float(1.0).as_i64(), None);
    }
}
