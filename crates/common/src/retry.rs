//! Retry with jittered exponential backoff for transient errors.
//!
//! The serving layer's lifecycle errors ([`Error::is_transient`]) represent
//! load or per-query events — an overloaded admission gate, a deadline that
//! fired, a contained worker fault — not properties of the query. Callers
//! that can tolerate latency should retry them with backoff; this module
//! provides the small, deterministic helper the resilience tests and
//! benchmarks use.
//!
//! Backoff for attempt *k* (0-based) is `base · 2^k`, capped at `max_delay`,
//! then scaled by a jitter factor in `[0.5, 1.0)` drawn from a splitmix64
//! stream seeded by [`RetryPolicy::seed`] — fully deterministic for a given
//! policy, so tests can assert exact schedules.

use std::time::Duration;

use crate::error::{Error, Result};

/// Backoff schedule for [`retry`].
#[derive(Debug, Clone, Copy)]
pub struct RetryPolicy {
    /// Maximum number of attempts (including the first). 0 is treated as 1.
    pub attempts: u32,
    /// Base delay before the second attempt.
    pub base_delay: Duration,
    /// Upper bound on any single delay (pre-jitter).
    pub max_delay: Duration,
    /// Seed for the deterministic jitter stream.
    pub seed: u64,
}

impl Default for RetryPolicy {
    fn default() -> Self {
        RetryPolicy {
            attempts: 4,
            base_delay: Duration::from_millis(1),
            max_delay: Duration::from_millis(50),
            seed: 0,
        }
    }
}

fn splitmix64(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9e37_79b9_7f4a_7c15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    z ^ (z >> 31)
}

impl RetryPolicy {
    /// The jittered delay inserted before attempt `attempt + 1` (0-based
    /// failed attempt). Exposed so tests can assert the schedule without
    /// sleeping.
    pub fn delay_for(&self, attempt: u32) -> Duration {
        let exp = self
            .base_delay
            .saturating_mul(1u32.checked_shl(attempt).unwrap_or(u32::MAX))
            .min(self.max_delay);
        let mut state = self.seed.wrapping_add(u64::from(attempt) << 32);
        let jitter = 0.5 + (splitmix64(&mut state) >> 11) as f64 / (1u64 << 53) as f64 / 2.0;
        exp.mul_f64(jitter)
    }
}

/// Run `f` until it succeeds, fails permanently, or the attempt budget is
/// spent. Only errors with [`Error::is_transient`] are retried; permanent
/// errors return immediately. The closure receives the 0-based attempt
/// number. On budget exhaustion the last transient error is returned.
pub fn retry<T>(policy: RetryPolicy, mut f: impl FnMut(u32) -> Result<T>) -> Result<T> {
    let attempts = policy.attempts.max(1);
    let mut last: Option<Error> = None;
    for attempt in 0..attempts {
        match f(attempt) {
            Ok(v) => return Ok(v),
            Err(e) if e.is_transient() && attempt + 1 < attempts => {
                std::thread::sleep(policy.delay_for(attempt));
                last = Some(e);
            }
            Err(e) => return Err(e),
        }
    }
    Err(last.expect("attempts >= 1 guarantees at least one closure result"))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn succeeds_without_retry() {
        let mut calls = 0;
        let r = retry(RetryPolicy::default(), |_| {
            calls += 1;
            Ok::<_, _>(7)
        });
        assert_eq!(r.unwrap(), 7);
        assert_eq!(calls, 1);
    }

    #[test]
    fn retries_transient_until_success() {
        let policy = RetryPolicy {
            base_delay: Duration::from_micros(10),
            ..RetryPolicy::default()
        };
        let r = retry(policy, |attempt| {
            if attempt < 2 {
                Err(Error::Overloaded("queue full".into()))
            } else {
                Ok(attempt)
            }
        });
        assert_eq!(r.unwrap(), 2);
    }

    #[test]
    fn permanent_errors_fail_fast() {
        let mut calls = 0;
        let r: Result<()> = retry(RetryPolicy::default(), |_| {
            calls += 1;
            Err(Error::Sql("syntax".into()))
        });
        assert!(matches!(r.unwrap_err(), Error::Sql(_)));
        assert_eq!(calls, 1);
    }

    #[test]
    fn exhausts_budget_and_returns_last_transient() {
        let policy = RetryPolicy {
            attempts: 3,
            base_delay: Duration::from_micros(10),
            ..RetryPolicy::default()
        };
        let mut calls = 0;
        let r: Result<()> = retry(policy, |_| {
            calls += 1;
            Err(Error::Timeout("slow".into()))
        });
        assert!(matches!(r.unwrap_err(), Error::Timeout(_)));
        assert_eq!(calls, 3);
    }

    #[test]
    fn jitter_is_deterministic_and_bounded() {
        let policy = RetryPolicy {
            seed: 99,
            ..RetryPolicy::default()
        };
        for attempt in 0..4 {
            let a = policy.delay_for(attempt);
            let b = policy.delay_for(attempt);
            assert_eq!(a, b);
            let exp = policy
                .base_delay
                .saturating_mul(1 << attempt)
                .min(policy.max_delay);
            assert!(a >= exp / 2 && a <= exp, "attempt {attempt}: {a:?}");
        }
    }
}
