//! TPC-H substrate: the `dbgen`-equivalent generator and all 22 queries in
//! both frontends (Python source for the PyTond compiler, interpreted
//! `pytond-frame` baselines).
//!
//! The paper runs the Pandas TPC-H suite (paper reference \[34\]) at SF 1; this reproduction
//! defaults to a laptop-scale fraction (see DESIGN.md) with the scale factor
//! exposed as a knob.

#![warn(missing_docs)]

pub mod gen;
pub mod queries;

pub use gen::{generate, generate_seeded, TpchData};
pub use queries::{all_queries, query, Query};

use pytond_sqldb::Database;

/// Registers the dataset into a raw engine database (used by hand-written
/// SQL tests and benchmarks).
pub fn register_database(db: &Database, data: &TpchData) {
    for (name, rel, _) in data.tables() {
        db.register(name, rel.clone());
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn all_queries_enumerate() {
        let qs = all_queries();
        assert_eq!(qs.len(), 22);
        assert_eq!(qs[0].name, "Q1");
        assert_eq!(qs[21].id, 22);
        for q in &qs {
            assert!(q.source.contains("@pytond"), "{} source", q.name);
        }
    }

    #[test]
    fn baselines_run_on_tiny_data() {
        let d = generate(0.001);
        for q in all_queries() {
            let out = q.run_baseline(&d);
            assert!(out.is_ok(), "{} baseline failed: {:?}", q.name, out.err());
        }
    }
}
