//! All 22 TPC-H queries in both frontends:
//!
//! * `source` — the Pandas-style Python text handed to the PyTond compiler
//!   (the paper uses the Pandas TPC-H suite of paper reference \[34\]);
//! * `baseline` — the same pipeline interpreted directly on the
//!   `pytond-frame` DataFrame library (the evaluation's "Python" bars).
//!
//! Differential tests assert the two produce identical relations.

use crate::gen::TpchData;
use pytond_common::{Column, Relation, Result, Value};
use pytond_frame::{AggOp, DataFrame, JoinHow};

/// One benchmark query.
pub struct Query {
    /// 1-based TPC-H query number.
    pub id: usize,
    /// `"Q1"`, ... label.
    pub name: &'static str,
    /// Python source for the PyTond path.
    pub source: &'static str,
    /// Interpreted baseline.
    pub baseline: fn(&TpchData) -> Result<DataFrame>,
}

/// All 22 queries in order.
pub fn all_queries() -> Vec<Query> {
    (1..=22).map(query).collect()
}

/// One query by number (1–22).
pub fn query(id: usize) -> Query {
    type Entry = (
        &'static str,
        &'static str,
        fn(&TpchData) -> Result<DataFrame>,
    );
    let (name, source, baseline): Entry = match id {
        1 => ("Q1", Q1_SRC, q1),
        2 => ("Q2", Q2_SRC, q2),
        3 => ("Q3", Q3_SRC, q3),
        4 => ("Q4", Q4_SRC, q4),
        5 => ("Q5", Q5_SRC, q5),
        6 => ("Q6", Q6_SRC, q6),
        7 => ("Q7", Q7_SRC, q7),
        8 => ("Q8", Q8_SRC, q8),
        9 => ("Q9", Q9_SRC, q9),
        10 => ("Q10", Q10_SRC, q10),
        11 => ("Q11", Q11_SRC, q11),
        12 => ("Q12", Q12_SRC, q12),
        13 => ("Q13", Q13_SRC, q13),
        14 => ("Q14", Q14_SRC, q14),
        15 => ("Q15", Q15_SRC, q15),
        16 => ("Q16", Q16_SRC, q16),
        17 => ("Q17", Q17_SRC, q17),
        18 => ("Q18", Q18_SRC, q18),
        19 => ("Q19", Q19_SRC, q19),
        20 => ("Q20", Q20_SRC, q20),
        21 => ("Q21", Q21_SRC, q21),
        22 => ("Q22", Q22_SRC, q22),
        other => panic!("no TPC-H query {other}"),
    };
    Query {
        id,
        name,
        source,
        baseline,
    }
}

// ---------- helpers for the baselines ----------

fn scalar_frame(name: &str, v: Value) -> Result<DataFrame> {
    DataFrame::from_cols(vec![(name, Column::from_values(&[v])?)])
}

fn revenue(df: &DataFrame) -> Result<pytond_frame::Series> {
    let one_minus = df.col("l_discount")?.mul_scalar(-1.0)?.add_scalar(1.0)?;
    df.col("l_extendedprice")?.mul(&one_minus)
}

impl Query {
    /// Runs the interpreted baseline, returning a relation.
    pub fn run_baseline(&self, data: &TpchData) -> Result<Relation> {
        (self.baseline)(data).map(|df| df.to_relation())
    }
}

// =====================================================================
// Q1 — pricing summary report
// =====================================================================

const Q1_SRC: &str = r#"
@pytond
def q1(lineitem):
    li = lineitem[lineitem.l_shipdate <= '1998-09-02']
    li['disc_price'] = li.l_extendedprice * (1 - li.l_discount)
    li['charge'] = li.disc_price * (1 + li.l_tax)
    g = li.groupby(['l_returnflag', 'l_linestatus']).agg(
        sum_qty=('l_quantity', 'sum'),
        sum_base_price=('l_extendedprice', 'sum'),
        sum_disc_price=('disc_price', 'sum'),
        sum_charge=('charge', 'sum'),
        avg_qty=('l_quantity', 'mean'),
        avg_price=('l_extendedprice', 'mean'),
        avg_disc=('l_discount', 'mean'),
        count_order=('l_quantity', 'count'))
    return g.sort_values(by=['l_returnflag', 'l_linestatus'])
"#;

fn q1(d: &TpchData) -> Result<DataFrame> {
    let li = DataFrame::from_relation(&d.lineitem);
    let mask = li
        .col("l_shipdate")?
        .le_val(&Value::Str("1998-09-02".into()));
    let mut li = li.filter(&mask)?;
    let disc_price = revenue(&li)?.rename("disc_price");
    li.insert(disc_price.clone())?;
    let one_plus_tax = li.col("l_tax")?.add_scalar(1.0)?;
    li.insert(disc_price.mul(&one_plus_tax)?.rename("charge"))?;
    let g = li.groupby(&["l_returnflag", "l_linestatus"])?.agg(&[
        ("l_quantity", AggOp::Sum, "sum_qty"),
        ("l_extendedprice", AggOp::Sum, "sum_base_price"),
        ("disc_price", AggOp::Sum, "sum_disc_price"),
        ("charge", AggOp::Sum, "sum_charge"),
        ("l_quantity", AggOp::Mean, "avg_qty"),
        ("l_extendedprice", AggOp::Mean, "avg_price"),
        ("l_discount", AggOp::Mean, "avg_disc"),
        ("l_quantity", AggOp::Count, "count_order"),
    ])?;
    g.sort_values(&[("l_returnflag", true), ("l_linestatus", true)])
}

// =====================================================================
// Q2 — minimum cost supplier
// =====================================================================

const Q2_SRC: &str = r#"
@pytond
def q2(part, supplier, partsupp, nation, region):
    r = region[region.r_name == 'EUROPE']
    n = nation.merge(r, left_on='n_regionkey', right_on='r_regionkey')
    s = supplier.merge(n, left_on='s_nationkey', right_on='n_nationkey')
    ps = partsupp.merge(s, left_on='ps_suppkey', right_on='s_suppkey')
    p = part[(part.p_size == 15) & (part.p_type.str.endswith('BRASS'))]
    j = p.merge(ps, left_on='p_partkey', right_on='ps_partkey')
    mins = j.groupby(['p_partkey']).agg(min_cost=('ps_supplycost', 'min'))
    jm = j.merge(mins, on='p_partkey')
    best = jm[jm.ps_supplycost == jm.min_cost]
    out = best[['s_acctbal', 's_name', 'n_name', 'p_partkey', 'p_mfgr', 's_address', 's_phone', 's_comment']]
    return out.sort_values(by=['s_acctbal', 'n_name', 's_name', 'p_partkey'], ascending=[False, True, True, True]).head(100)
"#;

fn q2(d: &TpchData) -> Result<DataFrame> {
    let region = DataFrame::from_relation(&d.region);
    let r = region.filter(&region.col("r_name")?.eq_val(&Value::Str("EUROPE".into())))?;
    let n = DataFrame::from_relation(&d.nation).merge(
        &r,
        JoinHow::Inner,
        &["n_regionkey"],
        &["r_regionkey"],
    )?;
    let s = DataFrame::from_relation(&d.supplier).merge(
        &n,
        JoinHow::Inner,
        &["s_nationkey"],
        &["n_nationkey"],
    )?;
    let ps = DataFrame::from_relation(&d.partsupp).merge(
        &s,
        JoinHow::Inner,
        &["ps_suppkey"],
        &["s_suppkey"],
    )?;
    let part = DataFrame::from_relation(&d.part);
    let m1 = part.col("p_size")?.eq_val(&Value::Int(15));
    let m2 = part.col("p_type")?.str_endswith("BRASS")?;
    let p = part.filter(&m1.and(&m2)?)?;
    let j = p.merge(&ps, JoinHow::Inner, &["p_partkey"], &["ps_partkey"])?;
    let mins = j
        .groupby(&["p_partkey"])?
        .agg(&[("ps_supplycost", AggOp::Min, "min_cost")])?;
    let jm = j.merge(&mins, JoinHow::Inner, &["p_partkey"], &["p_partkey"])?;
    let best = jm.filter(&jm.col("ps_supplycost")?.eq_series(jm.col("min_cost")?))?;
    let out = best.select(&[
        "s_acctbal",
        "s_name",
        "n_name",
        "p_partkey",
        "p_mfgr",
        "s_address",
        "s_phone",
        "s_comment",
    ])?;
    Ok(out
        .sort_values(&[
            ("s_acctbal", false),
            ("n_name", true),
            ("s_name", true),
            ("p_partkey", true),
        ])?
        .head(100))
}

// =====================================================================
// Q3 — shipping priority
// =====================================================================

const Q3_SRC: &str = r#"
@pytond
def q3(customer, orders, lineitem):
    c = customer[customer.c_mktsegment == 'BUILDING']
    o = orders[orders.o_orderdate < '1995-03-15']
    l = lineitem[lineitem.l_shipdate > '1995-03-15']
    co = c.merge(o, left_on='c_custkey', right_on='o_custkey')
    col = co.merge(l, left_on='o_orderkey', right_on='l_orderkey')
    col['revenue'] = col.l_extendedprice * (1 - col.l_discount)
    g = col.groupby(['l_orderkey', 'o_orderdate', 'o_shippriority']).agg(revenue=('revenue', 'sum'))
    return g.sort_values(by=['revenue', 'o_orderdate'], ascending=[False, True]).head(10)
"#;

fn q3(d: &TpchData) -> Result<DataFrame> {
    let customer = DataFrame::from_relation(&d.customer);
    let c = customer.filter(
        &customer
            .col("c_mktsegment")?
            .eq_val(&Value::Str("BUILDING".into())),
    )?;
    let orders = DataFrame::from_relation(&d.orders);
    let o = orders.filter(
        &orders
            .col("o_orderdate")?
            .lt_val(&Value::Str("1995-03-15".into())),
    )?;
    let lineitem = DataFrame::from_relation(&d.lineitem);
    let l = lineitem.filter(
        &lineitem
            .col("l_shipdate")?
            .gt_val(&Value::Str("1995-03-15".into())),
    )?;
    let co = c.merge(&o, JoinHow::Inner, &["c_custkey"], &["o_custkey"])?;
    let mut col = co.merge(&l, JoinHow::Inner, &["o_orderkey"], &["l_orderkey"])?;
    let rev = revenue(&col)?.rename("revenue");
    col.insert(rev)?;
    let g = col
        .groupby(&["l_orderkey", "o_orderdate", "o_shippriority"])?
        .agg(&[("revenue", AggOp::Sum, "revenue")])?;
    Ok(g.sort_values(&[("revenue", false), ("o_orderdate", true)])?
        .head(10))
}

// =====================================================================
// Q4 — order priority checking
// =====================================================================

const Q4_SRC: &str = r#"
@pytond
def q4(orders, lineitem):
    l = lineitem[lineitem.l_commitdate < lineitem.l_receiptdate]
    o = orders[(orders.o_orderdate >= '1993-07-01') & (orders.o_orderdate < '1993-10-01')]
    sel = o[o.o_orderkey.isin(l['l_orderkey'])]
    g = sel.groupby(['o_orderpriority']).agg(order_count=('o_orderkey', 'count'))
    return g.sort_values(by=['o_orderpriority'])
"#;

fn q4(d: &TpchData) -> Result<DataFrame> {
    let lineitem = DataFrame::from_relation(&d.lineitem);
    let l = lineitem.filter(
        &lineitem
            .col("l_commitdate")?
            .lt_series(lineitem.col("l_receiptdate")?),
    )?;
    let orders = DataFrame::from_relation(&d.orders);
    let m = orders
        .col("o_orderdate")?
        .ge_val(&Value::Str("1993-07-01".into()))
        .and(
            &orders
                .col("o_orderdate")?
                .lt_val(&Value::Str("1993-10-01".into())),
        )?;
    let o = orders.filter(&m)?;
    let sel = o.filter(&o.col("o_orderkey")?.isin(l.col("l_orderkey")?))?;
    let g =
        sel.groupby(&["o_orderpriority"])?
            .agg(&[("o_orderkey", AggOp::Count, "order_count")])?;
    g.sort_values(&[("o_orderpriority", true)])
}

// =====================================================================
// Q5 — local supplier volume
// =====================================================================

const Q5_SRC: &str = r#"
@pytond
def q5(customer, orders, lineitem, supplier, nation, region):
    r = region[region.r_name == 'ASIA']
    n = nation.merge(r, left_on='n_regionkey', right_on='r_regionkey')
    s = supplier.merge(n, left_on='s_nationkey', right_on='n_nationkey')
    o = orders[(orders.o_orderdate >= '1994-01-01') & (orders.o_orderdate < '1995-01-01')]
    co = customer.merge(o, left_on='c_custkey', right_on='o_custkey')
    col = co.merge(lineitem, left_on='o_orderkey', right_on='l_orderkey')
    j = col.merge(s, left_on='l_suppkey', right_on='s_suppkey')
    jj = j[j.c_nationkey == j.s_nationkey]
    jj['revenue'] = jj.l_extendedprice * (1 - jj.l_discount)
    g = jj.groupby(['n_name']).agg(revenue=('revenue', 'sum'))
    return g.sort_values(by=['revenue'], ascending=False)
"#;

fn q5(d: &TpchData) -> Result<DataFrame> {
    let region = DataFrame::from_relation(&d.region);
    let r = region.filter(&region.col("r_name")?.eq_val(&Value::Str("ASIA".into())))?;
    let n = DataFrame::from_relation(&d.nation).merge(
        &r,
        JoinHow::Inner,
        &["n_regionkey"],
        &["r_regionkey"],
    )?;
    let s = DataFrame::from_relation(&d.supplier).merge(
        &n,
        JoinHow::Inner,
        &["s_nationkey"],
        &["n_nationkey"],
    )?;
    let orders = DataFrame::from_relation(&d.orders);
    let m = orders
        .col("o_orderdate")?
        .ge_val(&Value::Str("1994-01-01".into()))
        .and(
            &orders
                .col("o_orderdate")?
                .lt_val(&Value::Str("1995-01-01".into())),
        )?;
    let o = orders.filter(&m)?;
    let co = DataFrame::from_relation(&d.customer).merge(
        &o,
        JoinHow::Inner,
        &["c_custkey"],
        &["o_custkey"],
    )?;
    let col = co.merge(
        &DataFrame::from_relation(&d.lineitem),
        JoinHow::Inner,
        &["o_orderkey"],
        &["l_orderkey"],
    )?;
    let j = col.merge(&s, JoinHow::Inner, &["l_suppkey"], &["s_suppkey"])?;
    let mut jj = j.filter(&j.col("c_nationkey")?.eq_series(j.col("s_nationkey")?))?;
    let rev = revenue(&jj)?.rename("revenue");
    jj.insert(rev)?;
    let g = jj
        .groupby(&["n_name"])?
        .agg(&[("revenue", AggOp::Sum, "revenue")])?;
    g.sort_values(&[("revenue", false)])
}

// =====================================================================
// Q6 — forecasting revenue change
// =====================================================================

const Q6_SRC: &str = r#"
@pytond
def q6(lineitem):
    l = lineitem[(lineitem.l_shipdate >= '1994-01-01') & (lineitem.l_shipdate < '1995-01-01') & (lineitem.l_discount >= 0.05) & (lineitem.l_discount <= 0.07) & (lineitem.l_quantity < 24)]
    rev = l.l_extendedprice * l.l_discount
    return rev.sum()
"#;

fn q6(d: &TpchData) -> Result<DataFrame> {
    let li = DataFrame::from_relation(&d.lineitem);
    let m = li
        .col("l_shipdate")?
        .ge_val(&Value::Str("1994-01-01".into()))
        .and(
            &li.col("l_shipdate")?
                .lt_val(&Value::Str("1995-01-01".into())),
        )?
        .and(&li.col("l_discount")?.ge_val(&Value::Float(0.05)))?
        .and(&li.col("l_discount")?.le_val(&Value::Float(0.07)))?
        .and(&li.col("l_quantity")?.lt_val(&Value::Float(24.0)))?;
    let l = li.filter(&m)?;
    let rev = l.col("l_extendedprice")?.mul(l.col("l_discount")?)?;
    scalar_frame("rev_sum", rev.sum())
}

// =====================================================================
// Q7 — volume shipping
// =====================================================================

const Q7_SRC: &str = r#"
@pytond
def q7(supplier, lineitem, orders, customer, nation):
    n1 = nation.rename(columns={'n_nationkey': 'n1_key', 'n_name': 'supp_nation'})
    n2 = nation.rename(columns={'n_nationkey': 'n2_key', 'n_name': 'cust_nation'})
    sl = supplier.merge(lineitem, left_on='s_suppkey', right_on='l_suppkey')
    slo = sl.merge(orders, left_on='l_orderkey', right_on='o_orderkey')
    sloc = slo.merge(customer, left_on='o_custkey', right_on='c_custkey')
    j1 = sloc.merge(n1, left_on='s_nationkey', right_on='n1_key')
    j2 = j1.merge(n2, left_on='c_nationkey', right_on='n2_key')
    f = j2[((j2.supp_nation == 'FRANCE') & (j2.cust_nation == 'GERMANY')) | ((j2.supp_nation == 'GERMANY') & (j2.cust_nation == 'FRANCE'))]
    ff = f[(f.l_shipdate >= '1995-01-01') & (f.l_shipdate <= '1996-12-31')]
    ff['l_year'] = ff.l_shipdate.dt.year
    ff['volume'] = ff.l_extendedprice * (1 - ff.l_discount)
    g = ff.groupby(['supp_nation', 'cust_nation', 'l_year']).agg(revenue=('volume', 'sum'))
    return g.sort_values(by=['supp_nation', 'cust_nation', 'l_year'])
"#;

fn q7(d: &TpchData) -> Result<DataFrame> {
    let nation = DataFrame::from_relation(&d.nation);
    let n1 = nation.rename(&[("n_nationkey", "n1_key"), ("n_name", "supp_nation")]);
    let n2 = nation.rename(&[("n_nationkey", "n2_key"), ("n_name", "cust_nation")]);
    let sl = DataFrame::from_relation(&d.supplier).merge(
        &DataFrame::from_relation(&d.lineitem),
        JoinHow::Inner,
        &["s_suppkey"],
        &["l_suppkey"],
    )?;
    let slo = sl.merge(
        &DataFrame::from_relation(&d.orders),
        JoinHow::Inner,
        &["l_orderkey"],
        &["o_orderkey"],
    )?;
    let sloc = slo.merge(
        &DataFrame::from_relation(&d.customer),
        JoinHow::Inner,
        &["o_custkey"],
        &["c_custkey"],
    )?;
    let j1 = sloc.merge(&n1, JoinHow::Inner, &["s_nationkey"], &["n1_key"])?;
    let j2 = j1.merge(&n2, JoinHow::Inner, &["c_nationkey"], &["n2_key"])?;
    let fr = Value::Str("FRANCE".into());
    let de = Value::Str("GERMANY".into());
    let m = j2
        .col("supp_nation")?
        .eq_val(&fr)
        .and(&j2.col("cust_nation")?.eq_val(&de))?
        .or(&j2
            .col("supp_nation")?
            .eq_val(&de)
            .and(&j2.col("cust_nation")?.eq_val(&fr))?)?;
    let f = j2.filter(&m)?;
    let m2 = f
        .col("l_shipdate")?
        .ge_val(&Value::Str("1995-01-01".into()))
        .and(
            &f.col("l_shipdate")?
                .le_val(&Value::Str("1996-12-31".into())),
        )?;
    let mut ff = f.filter(&m2)?;
    let year = ff.col("l_shipdate")?.dt_year()?.rename("l_year");
    ff.insert(year)?;
    let vol = revenue(&ff)?.rename("volume");
    ff.insert(vol)?;
    let g = ff
        .groupby(&["supp_nation", "cust_nation", "l_year"])?
        .agg(&[("volume", AggOp::Sum, "revenue")])?;
    g.sort_values(&[
        ("supp_nation", true),
        ("cust_nation", true),
        ("l_year", true),
    ])
}

// =====================================================================
// Q8 — national market share
// =====================================================================

const Q8_SRC: &str = r#"
@pytond
def q8(part, supplier, lineitem, orders, customer, nation, region):
    r = region[region.r_name == 'AMERICA']
    n1 = nation.merge(r, left_on='n_regionkey', right_on='r_regionkey')
    p = part[part.p_type == 'ECONOMY ANODIZED STEEL']
    pl = p.merge(lineitem, left_on='p_partkey', right_on='l_partkey')
    plo = pl.merge(orders, left_on='l_orderkey', right_on='o_orderkey')
    ploc = plo.merge(customer, left_on='o_custkey', right_on='c_custkey')
    j1 = ploc.merge(n1, left_on='c_nationkey', right_on='n_nationkey')
    n2 = nation.rename(columns={'n_nationkey': 'n2_key', 'n_name': 'nation_name'})
    js = j1.merge(supplier, left_on='l_suppkey', right_on='s_suppkey')
    j2 = js.merge(n2, left_on='s_nationkey', right_on='n2_key')
    f = j2[(j2.o_orderdate >= '1995-01-01') & (j2.o_orderdate <= '1996-12-31')]
    f['o_year'] = f.o_orderdate.dt.year
    f['volume'] = f.l_extendedprice * (1 - f.l_discount)
    f['brazil_volume'] = np.where(f.nation_name == 'BRAZIL', f.volume, 0.0)
    g = f.groupby(['o_year']).agg(bv=('brazil_volume', 'sum'), v=('volume', 'sum'))
    g['mkt_share'] = g.bv / g.v
    out = g[['o_year', 'mkt_share']]
    return out.sort_values(by=['o_year'])
"#;

fn q8(d: &TpchData) -> Result<DataFrame> {
    let region = DataFrame::from_relation(&d.region);
    let r = region.filter(&region.col("r_name")?.eq_val(&Value::Str("AMERICA".into())))?;
    let nation = DataFrame::from_relation(&d.nation);
    let n1 = nation.merge(&r, JoinHow::Inner, &["n_regionkey"], &["r_regionkey"])?;
    let part = DataFrame::from_relation(&d.part);
    let p = part.filter(
        &part
            .col("p_type")?
            .eq_val(&Value::Str("ECONOMY ANODIZED STEEL".into())),
    )?;
    let pl = p.merge(
        &DataFrame::from_relation(&d.lineitem),
        JoinHow::Inner,
        &["p_partkey"],
        &["l_partkey"],
    )?;
    let plo = pl.merge(
        &DataFrame::from_relation(&d.orders),
        JoinHow::Inner,
        &["l_orderkey"],
        &["o_orderkey"],
    )?;
    let ploc = plo.merge(
        &DataFrame::from_relation(&d.customer),
        JoinHow::Inner,
        &["o_custkey"],
        &["c_custkey"],
    )?;
    let j1 = ploc.merge(&n1, JoinHow::Inner, &["c_nationkey"], &["n_nationkey"])?;
    let n2 = nation.rename(&[("n_nationkey", "n2_key"), ("n_name", "nation_name")]);
    let js = j1.merge(
        &DataFrame::from_relation(&d.supplier),
        JoinHow::Inner,
        &["l_suppkey"],
        &["s_suppkey"],
    )?;
    let j2 = js.merge(&n2, JoinHow::Inner, &["s_nationkey"], &["n2_key"])?;
    let m = j2
        .col("o_orderdate")?
        .ge_val(&Value::Str("1995-01-01".into()))
        .and(
            &j2.col("o_orderdate")?
                .le_val(&Value::Str("1996-12-31".into())),
        )?;
    let mut f = j2.filter(&m)?;
    let year = f.col("o_orderdate")?.dt_year()?.rename("o_year");
    f.insert(year)?;
    let vol = revenue(&f)?.rename("volume");
    f.insert(vol.clone())?;
    let is_brazil = f.col("nation_name")?.eq_val(&Value::Str("BRAZIL".into()));
    let bv = {
        let mut vals = Vec::with_capacity(f.num_rows());
        for i in 0..f.num_rows() {
            let b = is_brazil.get(i) == Value::Bool(true);
            vals.push(if b { vol.get(i) } else { Value::Float(0.0) });
        }
        pytond_frame::Series::new("brazil_volume", Column::from_values(&vals)?)
    };
    f.insert(bv)?;
    let mut g = f.groupby(&["o_year"])?.agg(&[
        ("brazil_volume", AggOp::Sum, "bv"),
        ("volume", AggOp::Sum, "v"),
    ])?;
    let share = g.col("bv")?.div(g.col("v")?)?.rename("mkt_share");
    g.insert(share)?;
    let out = g.select(&["o_year", "mkt_share"])?;
    out.sort_values(&[("o_year", true)])
}

// =====================================================================
// Q9 — product type profit measure
// =====================================================================

const Q9_SRC: &str = r#"
@pytond
def q9(part, supplier, lineitem, partsupp, orders, nation):
    p = part[part.p_name.str.contains('green')]
    pl = p.merge(lineitem, left_on='p_partkey', right_on='l_partkey')
    pls = pl.merge(supplier, left_on='l_suppkey', right_on='s_suppkey')
    j = pls.merge(partsupp, left_on=['l_partkey', 'l_suppkey'], right_on=['ps_partkey', 'ps_suppkey'])
    jo = j.merge(orders, left_on='l_orderkey', right_on='o_orderkey')
    jn = jo.merge(nation, left_on='s_nationkey', right_on='n_nationkey')
    jn['o_year'] = jn.o_orderdate.dt.year
    jn['amount'] = jn.l_extendedprice * (1 - jn.l_discount) - jn.ps_supplycost * jn.l_quantity
    g = jn.groupby(['n_name', 'o_year']).agg(sum_profit=('amount', 'sum'))
    return g.sort_values(by=['n_name', 'o_year'], ascending=[True, False])
"#;

fn q9(d: &TpchData) -> Result<DataFrame> {
    let part = DataFrame::from_relation(&d.part);
    let p = part.filter(&part.col("p_name")?.str_contains("green")?)?;
    let pl = p.merge(
        &DataFrame::from_relation(&d.lineitem),
        JoinHow::Inner,
        &["p_partkey"],
        &["l_partkey"],
    )?;
    let pls = pl.merge(
        &DataFrame::from_relation(&d.supplier),
        JoinHow::Inner,
        &["l_suppkey"],
        &["s_suppkey"],
    )?;
    let j = pls.merge(
        &DataFrame::from_relation(&d.partsupp),
        JoinHow::Inner,
        &["l_partkey", "l_suppkey"],
        &["ps_partkey", "ps_suppkey"],
    )?;
    let jo = j.merge(
        &DataFrame::from_relation(&d.orders),
        JoinHow::Inner,
        &["l_orderkey"],
        &["o_orderkey"],
    )?;
    let mut jn = jo.merge(
        &DataFrame::from_relation(&d.nation),
        JoinHow::Inner,
        &["s_nationkey"],
        &["n_nationkey"],
    )?;
    let year = jn.col("o_orderdate")?.dt_year()?.rename("o_year");
    jn.insert(year)?;
    let rev = revenue(&jn)?;
    let cost = jn.col("ps_supplycost")?.mul(jn.col("l_quantity")?)?;
    jn.insert(rev.sub(&cost)?.rename("amount"))?;
    let g = jn
        .groupby(&["n_name", "o_year"])?
        .agg(&[("amount", AggOp::Sum, "sum_profit")])?;
    g.sort_values(&[("n_name", true), ("o_year", false)])
}

// =====================================================================
// Q10 — returned item reporting
// =====================================================================

const Q10_SRC: &str = r#"
@pytond
def q10(customer, orders, lineitem, nation):
    o = orders[(orders.o_orderdate >= '1993-10-01') & (orders.o_orderdate < '1994-01-01')]
    l = lineitem[lineitem.l_returnflag == 'R']
    co = customer.merge(o, left_on='c_custkey', right_on='o_custkey')
    col = co.merge(l, left_on='o_orderkey', right_on='l_orderkey')
    j = col.merge(nation, left_on='c_nationkey', right_on='n_nationkey')
    j['revenue'] = j.l_extendedprice * (1 - j.l_discount)
    g = j.groupby(['c_custkey', 'c_name', 'c_acctbal', 'c_phone', 'n_name', 'c_address', 'c_comment']).agg(revenue=('revenue', 'sum'))
    return g.sort_values(by=['revenue'], ascending=False).head(20)
"#;

fn q10(d: &TpchData) -> Result<DataFrame> {
    let orders = DataFrame::from_relation(&d.orders);
    let m = orders
        .col("o_orderdate")?
        .ge_val(&Value::Str("1993-10-01".into()))
        .and(
            &orders
                .col("o_orderdate")?
                .lt_val(&Value::Str("1994-01-01".into())),
        )?;
    let o = orders.filter(&m)?;
    let lineitem = DataFrame::from_relation(&d.lineitem);
    let l = lineitem.filter(
        &lineitem
            .col("l_returnflag")?
            .eq_val(&Value::Str("R".into())),
    )?;
    let co = DataFrame::from_relation(&d.customer).merge(
        &o,
        JoinHow::Inner,
        &["c_custkey"],
        &["o_custkey"],
    )?;
    let col = co.merge(&l, JoinHow::Inner, &["o_orderkey"], &["l_orderkey"])?;
    let mut j = col.merge(
        &DataFrame::from_relation(&d.nation),
        JoinHow::Inner,
        &["c_nationkey"],
        &["n_nationkey"],
    )?;
    let rev = revenue(&j)?.rename("revenue");
    j.insert(rev)?;
    let g = j
        .groupby(&[
            "c_custkey",
            "c_name",
            "c_acctbal",
            "c_phone",
            "n_name",
            "c_address",
            "c_comment",
        ])?
        .agg(&[("revenue", AggOp::Sum, "revenue")])?;
    Ok(g.sort_values(&[("revenue", false)])?.head(20))
}

// =====================================================================
// Q11 — important stock identification
// =====================================================================

const Q11_SRC: &str = r#"
@pytond
def q11(partsupp, supplier, nation):
    n = nation[nation.n_name == 'GERMANY']
    s = supplier.merge(n, left_on='s_nationkey', right_on='n_nationkey')
    ps = partsupp.merge(s, left_on='ps_suppkey', right_on='s_suppkey')
    ps['value'] = ps.ps_supplycost * ps.ps_availqty
    total = ps.value.sum()
    g = ps.groupby(['ps_partkey']).agg(value=('value', 'sum'))
    out = g[g.value > total * 0.0001]
    return out.sort_values(by=['value'], ascending=False)
"#;

fn q11(d: &TpchData) -> Result<DataFrame> {
    let nation = DataFrame::from_relation(&d.nation);
    let n = nation.filter(&nation.col("n_name")?.eq_val(&Value::Str("GERMANY".into())))?;
    let s = DataFrame::from_relation(&d.supplier).merge(
        &n,
        JoinHow::Inner,
        &["s_nationkey"],
        &["n_nationkey"],
    )?;
    let mut ps = DataFrame::from_relation(&d.partsupp).merge(
        &s,
        JoinHow::Inner,
        &["ps_suppkey"],
        &["s_suppkey"],
    )?;
    let avail_float = ps.col("ps_availqty")?.map_numeric(|x| x)?;
    let value = ps.col("ps_supplycost")?.mul(&avail_float)?.rename("value");
    ps.insert(value)?;
    let total = ps.col("value")?.sum().as_f64().unwrap_or(0.0);
    let g = ps
        .groupby(&["ps_partkey"])?
        .agg(&[("value", AggOp::Sum, "value")])?;
    let out = g.filter(&g.col("value")?.gt_val(&Value::Float(total * 0.0001)))?;
    out.sort_values(&[("value", false)])
}

// =====================================================================
// Q12 — shipping modes and order priority
// =====================================================================

const Q12_SRC: &str = r#"
@pytond
def q12(orders, lineitem):
    l = lineitem[((lineitem.l_shipmode == 'MAIL') | (lineitem.l_shipmode == 'SHIP')) & (lineitem.l_commitdate < lineitem.l_receiptdate) & (lineitem.l_shipdate < lineitem.l_commitdate) & (lineitem.l_receiptdate >= '1994-01-01') & (lineitem.l_receiptdate < '1995-01-01')]
    j = orders.merge(l, left_on='o_orderkey', right_on='l_orderkey')
    j['high_line'] = np.where((j.o_orderpriority == '1-URGENT') | (j.o_orderpriority == '2-HIGH'), 1, 0)
    j['low_line'] = np.where((j.o_orderpriority != '1-URGENT') & (j.o_orderpriority != '2-HIGH'), 1, 0)
    g = j.groupby(['l_shipmode']).agg(high_line_count=('high_line', 'sum'), low_line_count=('low_line', 'sum'))
    return g.sort_values(by=['l_shipmode'])
"#;

fn q12(d: &TpchData) -> Result<DataFrame> {
    let li = DataFrame::from_relation(&d.lineitem);
    let modes = li
        .col("l_shipmode")?
        .eq_val(&Value::Str("MAIL".into()))
        .or(&li.col("l_shipmode")?.eq_val(&Value::Str("SHIP".into())))?;
    let m = modes
        .and(&li.col("l_commitdate")?.lt_series(li.col("l_receiptdate")?))?
        .and(&li.col("l_shipdate")?.lt_series(li.col("l_commitdate")?))?
        .and(
            &li.col("l_receiptdate")?
                .ge_val(&Value::Str("1994-01-01".into())),
        )?
        .and(
            &li.col("l_receiptdate")?
                .lt_val(&Value::Str("1995-01-01".into())),
        )?;
    let l = li.filter(&m)?;
    let mut j = DataFrame::from_relation(&d.orders).merge(
        &l,
        JoinHow::Inner,
        &["o_orderkey"],
        &["l_orderkey"],
    )?;
    let urgent = j
        .col("o_orderpriority")?
        .eq_val(&Value::Str("1-URGENT".into()))
        .or(&j
            .col("o_orderpriority")?
            .eq_val(&Value::Str("2-HIGH".into())))?;
    let high: Vec<i64> = urgent.col.as_bool().iter().map(|&b| i64::from(b)).collect();
    let low: Vec<i64> = urgent
        .col
        .as_bool()
        .iter()
        .map(|&b| i64::from(!b))
        .collect();
    j.insert(pytond_frame::Series::new(
        "high_line",
        Column::from_i64(high),
    ))?;
    j.insert(pytond_frame::Series::new("low_line", Column::from_i64(low)))?;
    let g = j.groupby(&["l_shipmode"])?.agg(&[
        ("high_line", AggOp::Sum, "high_line_count"),
        ("low_line", AggOp::Sum, "low_line_count"),
    ])?;
    g.sort_values(&[("l_shipmode", true)])
}

// =====================================================================
// Q13 — customer distribution
// =====================================================================

const Q13_SRC: &str = r#"
@pytond
def q13(customer, orders):
    o = orders[~orders.o_comment.str.contains('special%requests')]
    j = customer.merge(o, how='left', left_on='c_custkey', right_on='o_custkey')
    g = j.groupby(['c_custkey']).agg(c_count=('o_orderkey', 'count'))
    d = g.groupby(['c_count']).agg(custdist=('c_count', 'count'))
    return d.sort_values(by=['custdist', 'c_count'], ascending=[False, False])
"#;

fn q13(d: &TpchData) -> Result<DataFrame> {
    let orders = DataFrame::from_relation(&d.orders);
    // "special" followed by "requests" (the LIKE '%special%requests%' shape).
    let mask = orders.col("o_comment")?.apply(|v| match v {
        Value::Str(s) => {
            let hit = s
                .find("special")
                .map(|i| s[i..].contains("requests"))
                .unwrap_or(false);
            Value::Bool(!hit)
        }
        _ => Value::Bool(true),
    })?;
    let o = orders.filter(&mask)?;
    let j = DataFrame::from_relation(&d.customer).merge(
        &o,
        JoinHow::Left,
        &["c_custkey"],
        &["o_custkey"],
    )?;
    let g = j
        .groupby(&["c_custkey"])?
        .agg(&[("o_orderkey", AggOp::Count, "c_count")])?;
    let dist = g
        .groupby(&["c_count"])?
        .agg(&[("c_count", AggOp::Count, "custdist")])?;
    dist.sort_values(&[("custdist", false), ("c_count", false)])
}

// =====================================================================
// Q14 — promotion effect
// =====================================================================

const Q14_SRC: &str = r#"
@pytond
def q14(lineitem, part):
    l = lineitem[(lineitem.l_shipdate >= '1995-09-01') & (lineitem.l_shipdate < '1995-10-01')]
    j = l.merge(part, left_on='l_partkey', right_on='p_partkey')
    j['revenue'] = j.l_extendedprice * (1 - j.l_discount)
    j['promo_revenue'] = np.where(j.p_type.str.startswith('PROMO'), j.revenue, 0.0)
    promo = j.promo_revenue.sum()
    total = j.revenue.sum()
    return 100.0 * promo / total
"#;

fn q14(d: &TpchData) -> Result<DataFrame> {
    let li = DataFrame::from_relation(&d.lineitem);
    let m = li
        .col("l_shipdate")?
        .ge_val(&Value::Str("1995-09-01".into()))
        .and(
            &li.col("l_shipdate")?
                .lt_val(&Value::Str("1995-10-01".into())),
        )?;
    let l = li.filter(&m)?;
    let mut j = l.merge(
        &DataFrame::from_relation(&d.part),
        JoinHow::Inner,
        &["l_partkey"],
        &["p_partkey"],
    )?;
    let rev = revenue(&j)?.rename("revenue");
    j.insert(rev.clone())?;
    let promo_mask = j.col("p_type")?.str_startswith("PROMO")?;
    let promo: Vec<Value> = (0..j.num_rows())
        .map(|i| {
            if promo_mask.get(i) == Value::Bool(true) {
                rev.get(i)
            } else {
                Value::Float(0.0)
            }
        })
        .collect();
    j.insert(pytond_frame::Series::new(
        "promo_revenue",
        Column::from_values(&promo)?,
    ))?;
    let p = j.col("promo_revenue")?.sum().as_f64().unwrap_or(0.0);
    let t = j.col("revenue")?.sum().as_f64().unwrap_or(0.0);
    scalar_frame("promo_pct", Value::Float(100.0 * p / t))
}

// =====================================================================
// Q15 — top supplier
// =====================================================================

const Q15_SRC: &str = r#"
@pytond
def q15(lineitem, supplier):
    l = lineitem[(lineitem.l_shipdate >= '1996-01-01') & (lineitem.l_shipdate < '1996-04-01')]
    l['revenue'] = l.l_extendedprice * (1 - l.l_discount)
    g = l.groupby(['l_suppkey']).agg(total_revenue=('revenue', 'sum'))
    top = g.total_revenue.max()
    best = g[g.total_revenue == top]
    j = supplier.merge(best, left_on='s_suppkey', right_on='l_suppkey')
    out = j[['s_suppkey', 's_name', 's_address', 's_phone', 'total_revenue']]
    return out.sort_values(by=['s_suppkey'])
"#;

fn q15(d: &TpchData) -> Result<DataFrame> {
    let li = DataFrame::from_relation(&d.lineitem);
    let m = li
        .col("l_shipdate")?
        .ge_val(&Value::Str("1996-01-01".into()))
        .and(
            &li.col("l_shipdate")?
                .lt_val(&Value::Str("1996-04-01".into())),
        )?;
    let mut l = li.filter(&m)?;
    let rev = revenue(&l)?.rename("revenue");
    l.insert(rev)?;
    let g = l
        .groupby(&["l_suppkey"])?
        .agg(&[("revenue", AggOp::Sum, "total_revenue")])?;
    let top = g.col("total_revenue")?.max();
    let best = g.filter(&g.col("total_revenue")?.eq_val(&top))?;
    let j = DataFrame::from_relation(&d.supplier).merge(
        &best,
        JoinHow::Inner,
        &["s_suppkey"],
        &["l_suppkey"],
    )?;
    let out = j.select(&[
        "s_suppkey",
        "s_name",
        "s_address",
        "s_phone",
        "total_revenue",
    ])?;
    out.sort_values(&[("s_suppkey", true)])
}

// =====================================================================
// Q16 — parts/supplier relationship
// =====================================================================

const Q16_SRC: &str = r#"
@pytond
def q16(partsupp, part, supplier):
    p = part[(part.p_brand != 'Brand#45') & (~part.p_type.str.startswith('MEDIUM POLISHED')) & ((part.p_size == 49) | (part.p_size == 14) | (part.p_size == 23) | (part.p_size == 45) | (part.p_size == 19) | (part.p_size == 3) | (part.p_size == 36) | (part.p_size == 9))]
    j = p.merge(partsupp, left_on='p_partkey', right_on='ps_partkey')
    bad = supplier[supplier.s_comment.str.contains('Customer%Complaints')]
    jj = j[~j.ps_suppkey.isin(bad['s_suppkey'])]
    g = jj.groupby(['p_brand', 'p_type', 'p_size']).agg(supplier_cnt=('ps_suppkey', 'nunique'))
    return g.sort_values(by=['supplier_cnt', 'p_brand', 'p_type', 'p_size'], ascending=[False, True, True, True])
"#;

fn q16(d: &TpchData) -> Result<DataFrame> {
    let part = DataFrame::from_relation(&d.part);
    let sizes = [49i64, 14, 23, 45, 19, 3, 36, 9];
    let mut size_mask = part.col("p_size")?.eq_val(&Value::Int(sizes[0]));
    for s in &sizes[1..] {
        size_mask = size_mask.or(&part.col("p_size")?.eq_val(&Value::Int(*s)))?;
    }
    let m = part
        .col("p_brand")?
        .ne_val(&Value::Str("Brand#45".into()))
        .and(
            &part
                .col("p_type")?
                .str_startswith("MEDIUM POLISHED")?
                .not()?,
        )?
        .and(&size_mask)?;
    let p = part.filter(&m)?;
    let j = p.merge(
        &DataFrame::from_relation(&d.partsupp),
        JoinHow::Inner,
        &["p_partkey"],
        &["ps_partkey"],
    )?;
    let supplier = DataFrame::from_relation(&d.supplier);
    let bad_mask = supplier.col("s_comment")?.apply(|v| match v {
        Value::Str(s) => Value::Bool(
            s.find("Customer")
                .map(|i| s[i..].contains("Complaints"))
                .unwrap_or(false),
        ),
        _ => Value::Bool(false),
    })?;
    let bad = supplier.filter(&bad_mask)?;
    let jj = j.filter(&j.col("ps_suppkey")?.isin(bad.col("s_suppkey")?).not()?)?;
    let g = jj.groupby(&["p_brand", "p_type", "p_size"])?.agg(&[(
        "ps_suppkey",
        AggOp::NUnique,
        "supplier_cnt",
    )])?;
    g.sort_values(&[
        ("supplier_cnt", false),
        ("p_brand", true),
        ("p_type", true),
        ("p_size", true),
    ])
}

// =====================================================================
// Q17 — small-quantity-order revenue
// =====================================================================

const Q17_SRC: &str = r#"
@pytond
def q17(lineitem, part):
    p = part[(part.p_brand == 'Brand#23') & (part.p_container == 'MED BOX')]
    j = p.merge(lineitem, left_on='p_partkey', right_on='l_partkey')
    avgs = j.groupby(['p_partkey']).agg(avg_qty=('l_quantity', 'mean'))
    jm = j.merge(avgs, on='p_partkey')
    f = jm[jm.l_quantity < 0.2 * jm.avg_qty]
    total = f.l_extendedprice.sum()
    return total / 7.0
"#;

fn q17(d: &TpchData) -> Result<DataFrame> {
    let part = DataFrame::from_relation(&d.part);
    let m = part
        .col("p_brand")?
        .eq_val(&Value::Str("Brand#23".into()))
        .and(
            &part
                .col("p_container")?
                .eq_val(&Value::Str("MED BOX".into())),
        )?;
    let p = part.filter(&m)?;
    let j = p.merge(
        &DataFrame::from_relation(&d.lineitem),
        JoinHow::Inner,
        &["p_partkey"],
        &["l_partkey"],
    )?;
    let avgs = j
        .groupby(&["p_partkey"])?
        .agg(&[("l_quantity", AggOp::Mean, "avg_qty")])?;
    let jm = j.merge(&avgs, JoinHow::Inner, &["p_partkey"], &["p_partkey"])?;
    let threshold = jm.col("avg_qty")?.mul_scalar(0.2)?;
    let f = jm.filter(&jm.col("l_quantity")?.lt_series(&threshold))?;
    let total = f.col("l_extendedprice")?.sum().as_f64().unwrap_or(0.0);
    scalar_frame("avg_yearly", Value::Float(total / 7.0))
}

// =====================================================================
// Q18 — large volume customers
// =====================================================================

const Q18_SRC: &str = r#"
@pytond
def q18(customer, orders, lineitem):
    g = lineitem.groupby(['l_orderkey']).agg(sum_qty=('l_quantity', 'sum'))
    big = g[g.sum_qty > 300]
    j = orders[orders.o_orderkey.isin(big['l_orderkey'])]
    jc = j.merge(customer, left_on='o_custkey', right_on='c_custkey')
    jl = jc.merge(lineitem, left_on='o_orderkey', right_on='l_orderkey')
    gg = jl.groupby(['c_name', 'c_custkey', 'o_orderkey', 'o_orderdate', 'o_totalprice']).agg(sum_qty=('l_quantity', 'sum'))
    return gg.sort_values(by=['o_totalprice', 'o_orderdate'], ascending=[False, True]).head(100)
"#;

fn q18(d: &TpchData) -> Result<DataFrame> {
    let lineitem = DataFrame::from_relation(&d.lineitem);
    let g = lineitem
        .groupby(&["l_orderkey"])?
        .agg(&[("l_quantity", AggOp::Sum, "sum_qty")])?;
    let big = g.filter(&g.col("sum_qty")?.gt_val(&Value::Float(300.0)))?;
    let orders = DataFrame::from_relation(&d.orders);
    let j = orders.filter(&orders.col("o_orderkey")?.isin(big.col("l_orderkey")?))?;
    let jc = j.merge(
        &DataFrame::from_relation(&d.customer),
        JoinHow::Inner,
        &["o_custkey"],
        &["c_custkey"],
    )?;
    let jl = jc.merge(&lineitem, JoinHow::Inner, &["o_orderkey"], &["l_orderkey"])?;
    let gg = jl
        .groupby(&[
            "c_name",
            "c_custkey",
            "o_orderkey",
            "o_orderdate",
            "o_totalprice",
        ])?
        .agg(&[("l_quantity", AggOp::Sum, "sum_qty")])?;
    Ok(gg
        .sort_values(&[("o_totalprice", false), ("o_orderdate", true)])?
        .head(100))
}

// =====================================================================
// Q19 — discounted revenue
// =====================================================================

const Q19_SRC: &str = r#"
@pytond
def q19(lineitem, part):
    j = lineitem.merge(part, left_on='l_partkey', right_on='p_partkey')
    f = j[(j.l_shipinstruct == 'DELIVER IN PERSON') & ((j.l_shipmode == 'AIR') | (j.l_shipmode == 'REG AIR')) & (((j.p_brand == 'Brand#12') & (j.p_container == 'SM CASE') & (j.l_quantity >= 1) & (j.l_quantity <= 11) & (j.p_size >= 1) & (j.p_size <= 5)) | ((j.p_brand == 'Brand#23') & (j.p_container == 'MED BOX') & (j.l_quantity >= 10) & (j.l_quantity <= 20) & (j.p_size >= 1) & (j.p_size <= 10)) | ((j.p_brand == 'Brand#34') & (j.p_container == 'LG PACK') & (j.l_quantity >= 20) & (j.l_quantity <= 30) & (j.p_size >= 1) & (j.p_size <= 15)))]
    rev = f.l_extendedprice * (1 - f.l_discount)
    return rev.sum()
"#;

fn q19(d: &TpchData) -> Result<DataFrame> {
    let j = DataFrame::from_relation(&d.lineitem).merge(
        &DataFrame::from_relation(&d.part),
        JoinHow::Inner,
        &["l_partkey"],
        &["p_partkey"],
    )?;
    let arm = |brand: &str,
               container: &str,
               qlo: f64,
               qhi: f64,
               slo: i64,
               shi: i64|
     -> Result<pytond_frame::Series> {
        j.col("p_brand")?
            .eq_val(&Value::Str(brand.into()))
            .and(&j.col("p_container")?.eq_val(&Value::Str(container.into())))?
            .and(&j.col("l_quantity")?.ge_val(&Value::Float(qlo)))?
            .and(&j.col("l_quantity")?.le_val(&Value::Float(qhi)))?
            .and(&j.col("p_size")?.ge_val(&Value::Int(slo)))?
            .and(&j.col("p_size")?.le_val(&Value::Int(shi)))
    };
    let arms = arm("Brand#12", "SM CASE", 1.0, 11.0, 1, 5)?
        .or(&arm("Brand#23", "MED BOX", 10.0, 20.0, 1, 10)?)?
        .or(&arm("Brand#34", "LG PACK", 20.0, 30.0, 1, 15)?)?;
    let m = j
        .col("l_shipinstruct")?
        .eq_val(&Value::Str("DELIVER IN PERSON".into()))
        .and(
            &j.col("l_shipmode")?
                .eq_val(&Value::Str("AIR".into()))
                .or(&j.col("l_shipmode")?.eq_val(&Value::Str("REG AIR".into())))?,
        )?
        .and(&arms)?;
    let f = j.filter(&m)?;
    let rev = revenue(&f)?;
    scalar_frame("revenue", rev.sum())
}

// =====================================================================
// Q20 — potential part promotion
// =====================================================================

const Q20_SRC: &str = r#"
@pytond
def q20(supplier, nation, partsupp, part, lineitem):
    p = part[part.p_name.str.startswith('forest')]
    l = lineitem[(lineitem.l_shipdate >= '1994-01-01') & (lineitem.l_shipdate < '1995-01-01')]
    lg = l.groupby(['l_partkey', 'l_suppkey']).agg(sum_qty=('l_quantity', 'sum'))
    ps = partsupp[partsupp.ps_partkey.isin(p['p_partkey'])]
    jm = ps.merge(lg, left_on=['ps_partkey', 'ps_suppkey'], right_on=['l_partkey', 'l_suppkey'])
    ok = jm[jm.ps_availqty > 0.5 * jm.sum_qty]
    n = nation[nation.n_name == 'CANADA']
    s = supplier.merge(n, left_on='s_nationkey', right_on='n_nationkey')
    out = s[s.s_suppkey.isin(ok['ps_suppkey'])]
    res = out[['s_name', 's_address']]
    return res.sort_values(by=['s_name'])
"#;

fn q20(d: &TpchData) -> Result<DataFrame> {
    let part = DataFrame::from_relation(&d.part);
    let p = part.filter(&part.col("p_name")?.str_startswith("forest")?)?;
    let li = DataFrame::from_relation(&d.lineitem);
    let m = li
        .col("l_shipdate")?
        .ge_val(&Value::Str("1994-01-01".into()))
        .and(
            &li.col("l_shipdate")?
                .lt_val(&Value::Str("1995-01-01".into())),
        )?;
    let l = li.filter(&m)?;
    let lg =
        l.groupby(&["l_partkey", "l_suppkey"])?
            .agg(&[("l_quantity", AggOp::Sum, "sum_qty")])?;
    let partsupp = DataFrame::from_relation(&d.partsupp);
    let ps = partsupp.filter(&partsupp.col("ps_partkey")?.isin(p.col("p_partkey")?))?;
    let jm = ps.merge(
        &lg,
        JoinHow::Inner,
        &["ps_partkey", "ps_suppkey"],
        &["l_partkey", "l_suppkey"],
    )?;
    let half = jm.col("sum_qty")?.mul_scalar(0.5)?;
    let avail = jm.col("ps_availqty")?.map_numeric(|x| x)?;
    let ok = jm.filter(&avail.gt_series(&half))?;
    let nation = DataFrame::from_relation(&d.nation);
    let n = nation.filter(&nation.col("n_name")?.eq_val(&Value::Str("CANADA".into())))?;
    let s = DataFrame::from_relation(&d.supplier).merge(
        &n,
        JoinHow::Inner,
        &["s_nationkey"],
        &["n_nationkey"],
    )?;
    let out = s.filter(&s.col("s_suppkey")?.isin(ok.col("ps_suppkey")?))?;
    let res = out.select(&["s_name", "s_address"])?;
    res.sort_values(&[("s_name", true)])
}

// =====================================================================
// Q21 — suppliers who kept orders waiting
// =====================================================================

const Q21_SRC: &str = r#"
@pytond
def q21(supplier, lineitem, orders, nation):
    n = nation[nation.n_name == 'SAUDI ARABIA']
    late = lineitem[lineitem.l_receiptdate > lineitem.l_commitdate]
    multi = lineitem.groupby(['l_orderkey']).agg(n_supp=('l_suppkey', 'nunique'))
    multi_ok = multi[multi.n_supp > 1]
    late_g = late.groupby(['l_orderkey']).agg(n_late=('l_suppkey', 'nunique'))
    late_ok = late_g[late_g.n_late == 1]
    f = late[late.l_orderkey.isin(multi_ok['l_orderkey'])]
    f2 = f[f.l_orderkey.isin(late_ok['l_orderkey'])]
    o = orders[orders.o_orderstatus == 'F']
    j = f2.merge(o, left_on='l_orderkey', right_on='o_orderkey')
    js = j.merge(supplier, left_on='l_suppkey', right_on='s_suppkey')
    jn = js.merge(n, left_on='s_nationkey', right_on='n_nationkey')
    g = jn.groupby(['s_name']).agg(numwait=('l_orderkey', 'count'))
    return g.sort_values(by=['numwait', 's_name'], ascending=[False, True]).head(100)
"#;

fn q21(d: &TpchData) -> Result<DataFrame> {
    let nation = DataFrame::from_relation(&d.nation);
    let n = nation.filter(
        &nation
            .col("n_name")?
            .eq_val(&Value::Str("SAUDI ARABIA".into())),
    )?;
    let lineitem = DataFrame::from_relation(&d.lineitem);
    let late = lineitem.filter(
        &lineitem
            .col("l_receiptdate")?
            .gt_series(lineitem.col("l_commitdate")?),
    )?;
    let multi =
        lineitem
            .groupby(&["l_orderkey"])?
            .agg(&[("l_suppkey", AggOp::NUnique, "n_supp")])?;
    let multi_ok = multi.filter(&multi.col("n_supp")?.gt_val(&Value::Int(1)))?;
    let late_g = late
        .groupby(&["l_orderkey"])?
        .agg(&[("l_suppkey", AggOp::NUnique, "n_late")])?;
    let late_ok = late_g.filter(&late_g.col("n_late")?.eq_val(&Value::Int(1)))?;
    let f = late.filter(&late.col("l_orderkey")?.isin(multi_ok.col("l_orderkey")?))?;
    let f2 = f.filter(&f.col("l_orderkey")?.isin(late_ok.col("l_orderkey")?))?;
    let orders = DataFrame::from_relation(&d.orders);
    let o = orders.filter(&orders.col("o_orderstatus")?.eq_val(&Value::Str("F".into())))?;
    let j = f2.merge(&o, JoinHow::Inner, &["l_orderkey"], &["o_orderkey"])?;
    let js = j.merge(
        &DataFrame::from_relation(&d.supplier),
        JoinHow::Inner,
        &["l_suppkey"],
        &["s_suppkey"],
    )?;
    let jn = js.merge(&n, JoinHow::Inner, &["s_nationkey"], &["n_nationkey"])?;
    let g = jn
        .groupby(&["s_name"])?
        .agg(&[("l_orderkey", AggOp::Count, "numwait")])?;
    Ok(g.sort_values(&[("numwait", false), ("s_name", true)])?
        .head(100))
}

// =====================================================================
// Q22 — global sales opportunity
// =====================================================================

const Q22_SRC: &str = r#"
@pytond
def q22(customer, orders):
    customer['cntrycode'] = customer.c_phone.str.slice(0, 2)
    sel = customer[(customer.cntrycode == '13') | (customer.cntrycode == '31') | (customer.cntrycode == '23') | (customer.cntrycode == '29') | (customer.cntrycode == '30') | (customer.cntrycode == '18') | (customer.cntrycode == '17')]
    pos = sel[sel.c_acctbal > 0.0]
    avg_bal = pos.c_acctbal.mean()
    rich = sel[sel.c_acctbal > avg_bal]
    noord = rich[~rich.c_custkey.isin(orders['o_custkey'])]
    g = noord.groupby(['cntrycode']).agg(numcust=('c_custkey', 'count'), totacctbal=('c_acctbal', 'sum'))
    return g.sort_values(by=['cntrycode'])
"#;

fn q22(d: &TpchData) -> Result<DataFrame> {
    let mut customer = DataFrame::from_relation(&d.customer);
    let code = customer
        .col("c_phone")?
        .str_slice(0, 2)?
        .rename("cntrycode");
    customer.insert(code)?;
    let codes = ["13", "31", "23", "29", "30", "18", "17"];
    let mut m = customer
        .col("cntrycode")?
        .eq_val(&Value::Str(codes[0].into()));
    for c in &codes[1..] {
        m = m.or(&customer.col("cntrycode")?.eq_val(&Value::Str((*c).into())))?;
    }
    let sel = customer.filter(&m)?;
    let pos = sel.filter(&sel.col("c_acctbal")?.gt_val(&Value::Float(0.0)))?;
    let avg = pos.col("c_acctbal")?.mean();
    let rich = sel.filter(&sel.col("c_acctbal")?.gt_val(&avg))?;
    let orders = DataFrame::from_relation(&d.orders);
    let noord = rich.filter(
        &rich
            .col("c_custkey")?
            .isin(orders.col("o_custkey")?)
            .not()?,
    )?;
    let g = noord.groupby(&["cntrycode"])?.agg(&[
        ("c_custkey", AggOp::Count, "numcust"),
        ("c_acctbal", AggOp::Sum, "totacctbal"),
    ])?;
    g.sort_values(&[("cntrycode", true)])
}
