//! TPC-H `dbgen`-equivalent data generator.
//!
//! Produces the eight tables with the schema, key structure, and value
//! distributions of the TPC-H specification, scaled by `sf` (SF 1 =
//! 6M-lineitem scale; the reproduction defaults to a laptop-friendly
//! fraction — see DESIGN.md's substitution table). Deterministic for a given
//! seed so differential tests are stable.

use pytond_common::{date, Column, Relation};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

const REGIONS: &[&str] = &["AFRICA", "AMERICA", "ASIA", "EUROPE", "MIDDLE EAST"];
const NATIONS: &[(&str, i64)] = &[
    ("ALGERIA", 0),
    ("ARGENTINA", 1),
    ("BRAZIL", 1),
    ("CANADA", 1),
    ("EGYPT", 4),
    ("ETHIOPIA", 0),
    ("FRANCE", 3),
    ("GERMANY", 3),
    ("INDIA", 2),
    ("INDONESIA", 2),
    ("IRAN", 4),
    ("IRAQ", 4),
    ("JAPAN", 2),
    ("JORDAN", 4),
    ("KENYA", 0),
    ("MOROCCO", 0),
    ("MOZAMBIQUE", 0),
    ("PERU", 1),
    ("CHINA", 2),
    ("ROMANIA", 3),
    ("SAUDI ARABIA", 4),
    ("VIETNAM", 2),
    ("RUSSIA", 3),
    ("UNITED KINGDOM", 3),
    ("UNITED STATES", 1),
];
const SEGMENTS: &[&str] = &[
    "AUTOMOBILE",
    "BUILDING",
    "FURNITURE",
    "MACHINERY",
    "HOUSEHOLD",
];
const PRIORITIES: &[&str] = &["1-URGENT", "2-HIGH", "3-MEDIUM", "4-NOT SPECIFIED", "5-LOW"];
const SHIP_MODES: &[&str] = &["REG AIR", "AIR", "RAIL", "SHIP", "TRUCK", "MAIL", "FOB"];
const SHIP_INSTRUCT: &[&str] = &[
    "DELIVER IN PERSON",
    "COLLECT COD",
    "NONE",
    "TAKE BACK RETURN",
];
const TYPE_SYL1: &[&str] = &["STANDARD", "SMALL", "MEDIUM", "LARGE", "ECONOMY", "PROMO"];
const TYPE_SYL2: &[&str] = &["ANODIZED", "BURNISHED", "PLATED", "POLISHED", "BRUSHED"];
const TYPE_SYL3: &[&str] = &["TIN", "NICKEL", "BRASS", "STEEL", "COPPER"];
const CONTAINER_SYL1: &[&str] = &["SM", "LG", "MED", "JUMBO", "WRAP"];
const CONTAINER_SYL2: &[&str] = &["CASE", "BOX", "BAG", "JAR", "PKG", "PACK", "CAN", "DRUM"];
const BRAND_DIGITS: usize = 5;
const P_NAME_WORDS: &[&str] = &[
    "almond",
    "antique",
    "aquamarine",
    "azure",
    "beige",
    "bisque",
    "black",
    "blanched",
    "blue",
    "blush",
    "brown",
    "burlywood",
    "burnished",
    "chartreuse",
    "chiffon",
    "chocolate",
    "coral",
    "cornflower",
    "cornsilk",
    "cream",
    "cyan",
    "dark",
    "deep",
    "dim",
    "dodger",
    "drab",
    "firebrick",
    "floral",
    "forest",
    "frosted",
    "gainsboro",
    "ghost",
    "goldenrod",
    "green",
    "grey",
    "honeydew",
    "hot",
    "hotpink",
    "indian",
    "ivory",
    "khaki",
    "lace",
    "lavender",
    "lawn",
    "lemon",
    "light",
    "lime",
    "linen",
    "magenta",
    "maroon",
    "medium",
    "metallic",
    "midnight",
    "mint",
    "misty",
    "moccasin",
    "navajo",
    "navy",
    "olive",
    "orange",
    "orchid",
    "pale",
    "papaya",
    "peach",
    "peru",
    "pink",
    "plum",
    "powder",
    "puff",
    "purple",
    "red",
    "rose",
    "rosy",
    "royal",
    "saddle",
    "salmon",
    "sandy",
    "seashell",
    "sienna",
    "sky",
    "slate",
    "smoke",
    "snow",
    "spring",
    "steel",
    "tan",
    "thistle",
    "tomato",
    "turquoise",
    "violet",
    "wheat",
    "white",
    "yellow",
];
const COMMENT_WORDS: &[&str] = &[
    "carefully",
    "quickly",
    "furiously",
    "slyly",
    "blithely",
    "deposits",
    "accounts",
    "packages",
    "requests",
    "instructions",
    "theodolites",
    "platelets",
    "pinto",
    "beans",
    "foxes",
    "ideas",
    "dependencies",
    "excuses",
    "asymptotes",
    "courts",
    "dolphins",
    "multipliers",
    "sauternes",
    "warthogs",
    "frets",
    "dinos",
    "attainments",
    "regular",
    "express",
    "special",
    "pending",
    "bold",
    "even",
    "final",
    "ironic",
    "silent",
    "unusual",
];

/// Generated TPC-H tables.
#[derive(Debug, Clone)]
pub struct TpchData {
    /// region(r_regionkey, r_name, r_comment)
    pub region: Relation,
    /// nation(n_nationkey, n_name, n_regionkey, n_comment)
    pub nation: Relation,
    /// supplier(...)
    pub supplier: Relation,
    /// part(...)
    pub part: Relation,
    /// partsupp(...)
    pub partsupp: Relation,
    /// customer(...)
    pub customer: Relation,
    /// orders(...)
    pub orders: Relation,
    /// lineitem(...)
    pub lineitem: Relation,
}

impl TpchData {
    /// All tables with name and unique keys, in dependency order.
    pub fn tables(&self) -> Vec<(&'static str, &Relation, Vec<Vec<&'static str>>)> {
        vec![
            ("region", &self.region, vec![vec!["r_regionkey"]]),
            ("nation", &self.nation, vec![vec!["n_nationkey"]]),
            ("supplier", &self.supplier, vec![vec!["s_suppkey"]]),
            ("part", &self.part, vec![vec!["p_partkey"]]),
            (
                "partsupp",
                &self.partsupp,
                vec![vec!["ps_partkey", "ps_suppkey"]],
            ),
            ("customer", &self.customer, vec![vec!["c_custkey"]]),
            ("orders", &self.orders, vec![vec!["o_orderkey"]]),
            ("lineitem", &self.lineitem, vec![]),
        ]
    }

    /// Total row count across all tables.
    pub fn total_rows(&self) -> usize {
        self.tables().iter().map(|(_, r, _)| r.num_rows()).sum()
    }
}

fn words(rng: &mut StdRng, n: usize) -> String {
    (0..n)
        .map(|_| COMMENT_WORDS[rng.gen_range(0..COMMENT_WORDS.len())])
        .collect::<Vec<_>>()
        .join(" ")
}

fn phone(rng: &mut StdRng, nation: i64) -> String {
    format!(
        "{}-{:03}-{:03}-{:04}",
        10 + nation,
        rng.gen_range(100..1000),
        rng.gen_range(100..1000),
        rng.gen_range(1000..10000)
    )
}

/// Generates the dataset at scale factor `sf` with a fixed seed.
pub fn generate(sf: f64) -> TpchData {
    generate_seeded(sf, 42)
}

/// Generates with an explicit seed.
pub fn generate_seeded(sf: f64, seed: u64) -> TpchData {
    let mut rng = StdRng::seed_from_u64(seed);
    let n_supplier = ((10_000.0 * sf) as usize).max(10);
    let n_part = ((200_000.0 * sf) as usize).max(50);
    let n_customer = ((150_000.0 * sf) as usize).max(30);
    let n_orders = ((1_500_000.0 * sf) as usize).max(100);

    // region
    let region = Relation::new(vec![
        ("r_regionkey".into(), Column::from_i64((0..5).collect())),
        ("r_name".into(), Column::from_strs(REGIONS)),
        (
            "r_comment".into(),
            Column::from_str_vec((0..5).map(|_| words(&mut rng, 4)).collect()),
        ),
    ])
    .unwrap();

    // nation
    let nation = Relation::new(vec![
        (
            "n_nationkey".into(),
            Column::from_i64((0..NATIONS.len() as i64).collect()),
        ),
        (
            "n_name".into(),
            Column::from_str_vec(NATIONS.iter().map(|(n, _)| n.to_string()).collect()),
        ),
        (
            "n_regionkey".into(),
            Column::from_i64(NATIONS.iter().map(|(_, r)| *r).collect()),
        ),
        (
            "n_comment".into(),
            Column::from_str_vec((0..NATIONS.len()).map(|_| words(&mut rng, 5)).collect()),
        ),
    ])
    .unwrap();

    // supplier
    let mut s_key = Vec::with_capacity(n_supplier);
    let mut s_name = Vec::with_capacity(n_supplier);
    let mut s_addr = Vec::with_capacity(n_supplier);
    let mut s_nat = Vec::with_capacity(n_supplier);
    let mut s_phone = Vec::with_capacity(n_supplier);
    let mut s_bal = Vec::with_capacity(n_supplier);
    let mut s_comment = Vec::with_capacity(n_supplier);
    for i in 0..n_supplier {
        let nat = rng.gen_range(0..NATIONS.len() as i64);
        s_key.push(i as i64 + 1);
        s_name.push(format!("Supplier#{:09}", i + 1));
        s_addr.push(words(&mut rng, 2));
        s_nat.push(nat);
        s_phone.push(phone(&mut rng, nat));
        s_bal.push((rng.gen_range(-99_999..1_000_000) as f64) / 100.0);
        // ~0.5% contain the Q16 "Customer Complaints" marker.
        let mut c = words(&mut rng, 4);
        if rng.gen_bool(0.005) {
            c = format!("{c} Customer Complaints {c}");
        }
        s_comment.push(c);
    }
    let supplier = Relation::new(vec![
        ("s_suppkey".into(), Column::from_i64(s_key)),
        ("s_name".into(), Column::from_str_vec(s_name)),
        ("s_address".into(), Column::from_str_vec(s_addr)),
        ("s_nationkey".into(), Column::from_i64(s_nat)),
        ("s_phone".into(), Column::from_str_vec(s_phone)),
        ("s_acctbal".into(), Column::from_f64(s_bal)),
        ("s_comment".into(), Column::from_str_vec(s_comment)),
    ])
    .unwrap();

    // part
    let mut p_key = Vec::with_capacity(n_part);
    let mut p_name = Vec::with_capacity(n_part);
    let mut p_mfgr = Vec::with_capacity(n_part);
    let mut p_brand = Vec::with_capacity(n_part);
    let mut p_type = Vec::with_capacity(n_part);
    let mut p_size = Vec::with_capacity(n_part);
    let mut p_container = Vec::with_capacity(n_part);
    let mut p_retail = Vec::with_capacity(n_part);
    let mut p_comment = Vec::with_capacity(n_part);
    for i in 0..n_part {
        p_key.push(i as i64 + 1);
        let mut name_words = Vec::new();
        for _ in 0..5 {
            name_words.push(P_NAME_WORDS[rng.gen_range(0..P_NAME_WORDS.len())]);
        }
        p_name.push(name_words.join(" "));
        let m = rng.gen_range(1..=5);
        p_mfgr.push(format!("Manufacturer#{m}"));
        p_brand.push(format!("Brand#{}{}", m, rng.gen_range(1..=BRAND_DIGITS)));
        p_type.push(format!(
            "{} {} {}",
            TYPE_SYL1[rng.gen_range(0..TYPE_SYL1.len())],
            TYPE_SYL2[rng.gen_range(0..TYPE_SYL2.len())],
            TYPE_SYL3[rng.gen_range(0..TYPE_SYL3.len())]
        ));
        p_size.push(rng.gen_range(1..=50));
        p_container.push(format!(
            "{} {}",
            CONTAINER_SYL1[rng.gen_range(0..CONTAINER_SYL1.len())],
            CONTAINER_SYL2[rng.gen_range(0..CONTAINER_SYL2.len())]
        ));
        p_retail.push(900.0 + (i % 1000) as f64 / 10.0 + (i % 200) as f64);
        p_comment.push(words(&mut rng, 3));
    }
    let part = Relation::new(vec![
        ("p_partkey".into(), Column::from_i64(p_key)),
        ("p_name".into(), Column::from_str_vec(p_name)),
        ("p_mfgr".into(), Column::from_str_vec(p_mfgr)),
        ("p_brand".into(), Column::from_str_vec(p_brand)),
        ("p_type".into(), Column::from_str_vec(p_type)),
        ("p_size".into(), Column::from_i64(p_size)),
        ("p_container".into(), Column::from_str_vec(p_container)),
        ("p_retailprice".into(), Column::from_f64(p_retail)),
        ("p_comment".into(), Column::from_str_vec(p_comment)),
    ])
    .unwrap();

    // partsupp: 4 suppliers per part
    let n_ps = n_part * 4;
    let mut ps_part = Vec::with_capacity(n_ps);
    let mut ps_supp = Vec::with_capacity(n_ps);
    let mut ps_avail = Vec::with_capacity(n_ps);
    let mut ps_cost = Vec::with_capacity(n_ps);
    let mut ps_comment = Vec::with_capacity(n_ps);
    for p in 0..n_part {
        for s in 0..4usize {
            ps_part.push(p as i64 + 1);
            ps_supp.push(((p + 1 + s * (n_supplier / 4 + 1)) % n_supplier) as i64 + 1);
            ps_avail.push(rng.gen_range(1..10_000));
            ps_cost.push((rng.gen_range(100..100_000) as f64) / 100.0);
            ps_comment.push(words(&mut rng, 3));
        }
    }
    let partsupp = Relation::new(vec![
        ("ps_partkey".into(), Column::from_i64(ps_part)),
        ("ps_suppkey".into(), Column::from_i64(ps_supp)),
        ("ps_availqty".into(), Column::from_i64(ps_avail)),
        ("ps_supplycost".into(), Column::from_f64(ps_cost)),
        ("ps_comment".into(), Column::from_str_vec(ps_comment)),
    ])
    .unwrap();

    // customer
    let mut c_key = Vec::with_capacity(n_customer);
    let mut c_name = Vec::with_capacity(n_customer);
    let mut c_addr = Vec::with_capacity(n_customer);
    let mut c_nat = Vec::with_capacity(n_customer);
    let mut c_phone = Vec::with_capacity(n_customer);
    let mut c_bal = Vec::with_capacity(n_customer);
    let mut c_seg = Vec::with_capacity(n_customer);
    let mut c_comment = Vec::with_capacity(n_customer);
    for i in 0..n_customer {
        let nat = rng.gen_range(0..NATIONS.len() as i64);
        c_key.push(i as i64 + 1);
        c_name.push(format!("Customer#{:09}", i + 1));
        c_addr.push(words(&mut rng, 2));
        c_nat.push(nat);
        c_phone.push(phone(&mut rng, nat));
        c_bal.push((rng.gen_range(-99_999..1_000_000) as f64) / 100.0);
        c_seg.push(SEGMENTS[rng.gen_range(0..SEGMENTS.len())].to_string());
        c_comment.push(words(&mut rng, 5));
    }
    let customer = Relation::new(vec![
        ("c_custkey".into(), Column::from_i64(c_key)),
        ("c_name".into(), Column::from_str_vec(c_name)),
        ("c_address".into(), Column::from_str_vec(c_addr)),
        ("c_nationkey".into(), Column::from_i64(c_nat)),
        ("c_phone".into(), Column::from_str_vec(c_phone)),
        ("c_acctbal".into(), Column::from_f64(c_bal)),
        ("c_mktsegment".into(), Column::from_str_vec(c_seg)),
        ("c_comment".into(), Column::from_str_vec(c_comment)),
    ])
    .unwrap();

    // orders + lineitem
    let start = date::parse("1992-01-01").unwrap();
    let end = date::parse("1998-08-02").unwrap();
    let mut o_key = Vec::with_capacity(n_orders);
    let mut o_cust = Vec::with_capacity(n_orders);
    let mut o_status = Vec::with_capacity(n_orders);
    let mut o_total = Vec::with_capacity(n_orders);
    let mut o_date = Vec::with_capacity(n_orders);
    let mut o_prio = Vec::with_capacity(n_orders);
    let mut o_clerk = Vec::with_capacity(n_orders);
    let mut o_ship = Vec::with_capacity(n_orders);
    let mut o_comment = Vec::with_capacity(n_orders);
    let mut l_order = Vec::new();
    let mut l_part = Vec::new();
    let mut l_supp = Vec::new();
    let mut l_line = Vec::new();
    let mut l_qty = Vec::new();
    let mut l_ext = Vec::new();
    let mut l_disc = Vec::new();
    let mut l_tax = Vec::new();
    let mut l_ret = Vec::new();
    let mut l_status = Vec::new();
    let mut l_shipd = Vec::new();
    let mut l_commitd = Vec::new();
    let mut l_receiptd = Vec::new();
    let mut l_instr = Vec::new();
    let mut l_mode = Vec::new();
    let mut l_comment = Vec::new();
    for i in 0..n_orders {
        let okey = (i as i64) * 4 + 1; // sparse keys like dbgen
        let odate = start + rng.gen_range(0..(end - start - 151));
        o_key.push(okey);
        o_cust.push(rng.gen_range(0..n_customer as i64) + 1);
        o_date.push(odate);
        o_prio.push(PRIORITIES[rng.gen_range(0..PRIORITIES.len())].to_string());
        o_clerk.push(format!("Clerk#{:09}", rng.gen_range(1..1000)));
        o_ship.push(0i64);
        let mut c = words(&mut rng, 5);
        if rng.gen_bool(0.01) {
            c = format!("{c} special requests {c}");
        }
        o_comment.push(c);
        let nlines = rng.gen_range(1..=7usize);
        let mut total = 0.0;
        let mut all_f = true;
        let mut any_f = false;
        for ln in 0..nlines {
            let qty = rng.gen_range(1..=50) as f64;
            let pk = rng.gen_range(0..n_part as i64) + 1;
            let price = qty * (90_000.0 + ((pk * 7) % 20_001) as f64 / 2.0) / 100.0;
            let disc = rng.gen_range(0..=10) as f64 / 100.0;
            let tax = rng.gen_range(0..=8) as f64 / 100.0;
            let ship = odate + rng.gen_range(1..=121);
            let commit = odate + rng.gen_range(30..=90);
            let receipt = ship + rng.gen_range(1..=30);
            let today = date::parse("1995-06-17").unwrap();
            let (ret, status) = if receipt <= today {
                all_f = false;
                any_f = true;
                (if rng.gen_bool(0.25) { "R" } else { "A" }, "F")
            } else {
                ("N", "O")
            };
            l_order.push(okey);
            l_part.push(pk);
            l_supp.push(((pk as usize + ln * (n_supplier / 4 + 1)) % n_supplier) as i64 + 1);
            l_line.push(ln as i64 + 1);
            l_qty.push(qty);
            l_ext.push(price);
            l_disc.push(disc);
            l_tax.push(tax);
            l_ret.push(ret.to_string());
            l_status.push(status.to_string());
            l_shipd.push(ship);
            l_commitd.push(commit);
            l_receiptd.push(receipt);
            l_instr.push(SHIP_INSTRUCT[rng.gen_range(0..SHIP_INSTRUCT.len())].to_string());
            l_mode.push(SHIP_MODES[rng.gen_range(0..SHIP_MODES.len())].to_string());
            l_comment.push(words(&mut rng, 3));
            total += price * (1.0 - disc) * (1.0 + tax);
        }
        o_total.push(total);
        o_status.push(
            if all_f {
                "O"
            } else if any_f && !all_f {
                "F"
            } else {
                "P"
            }
            .to_string(),
        );
    }
    let orders = Relation::new(vec![
        ("o_orderkey".into(), Column::from_i64(o_key)),
        ("o_custkey".into(), Column::from_i64(o_cust)),
        ("o_orderstatus".into(), Column::from_str_vec(o_status)),
        ("o_totalprice".into(), Column::from_f64(o_total)),
        ("o_orderdate".into(), Column::from_dates(o_date)),
        ("o_orderpriority".into(), Column::from_str_vec(o_prio)),
        ("o_clerk".into(), Column::from_str_vec(o_clerk)),
        ("o_shippriority".into(), Column::from_i64(o_ship)),
        ("o_comment".into(), Column::from_str_vec(o_comment)),
    ])
    .unwrap();
    let lineitem = Relation::new(vec![
        ("l_orderkey".into(), Column::from_i64(l_order)),
        ("l_partkey".into(), Column::from_i64(l_part)),
        ("l_suppkey".into(), Column::from_i64(l_supp)),
        ("l_linenumber".into(), Column::from_i64(l_line)),
        ("l_quantity".into(), Column::from_f64(l_qty)),
        ("l_extendedprice".into(), Column::from_f64(l_ext)),
        ("l_discount".into(), Column::from_f64(l_disc)),
        ("l_tax".into(), Column::from_f64(l_tax)),
        ("l_returnflag".into(), Column::from_str_vec(l_ret)),
        ("l_linestatus".into(), Column::from_str_vec(l_status)),
        ("l_shipdate".into(), Column::from_dates(l_shipd)),
        ("l_commitdate".into(), Column::from_dates(l_commitd)),
        ("l_receiptdate".into(), Column::from_dates(l_receiptd)),
        ("l_shipinstruct".into(), Column::from_str_vec(l_instr)),
        ("l_shipmode".into(), Column::from_str_vec(l_mode)),
        ("l_comment".into(), Column::from_str_vec(l_comment)),
    ])
    .unwrap();

    TpchData {
        region,
        nation,
        supplier,
        part,
        partsupp,
        customer,
        orders,
        lineitem,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn generation_is_deterministic() {
        let a = generate(0.002);
        let b = generate(0.002);
        assert_eq!(a.lineitem.num_rows(), b.lineitem.num_rows());
        assert_eq!(
            a.lineitem.get(0, "l_extendedprice"),
            b.lineitem.get(0, "l_extendedprice")
        );
    }

    #[test]
    fn scale_factor_scales_row_counts() {
        let small = generate(0.001);
        let big = generate(0.004);
        assert!(big.orders.num_rows() > 2 * small.orders.num_rows());
        // lineitem ≈ 4 lines per order
        let ratio = big.lineitem.num_rows() as f64 / big.orders.num_rows() as f64;
        assert!(ratio > 2.0 && ratio < 6.0, "{ratio}");
    }

    #[test]
    fn referential_integrity_holds() {
        let d = generate(0.001);
        let n_cust = d.customer.num_rows() as i64;
        for i in 0..d.orders.num_rows() {
            let k = d.orders.get(i, "o_custkey").unwrap().as_i64().unwrap();
            assert!(k >= 1 && k <= n_cust);
        }
        let n_part = d.part.num_rows() as i64;
        for i in 0..d.lineitem.num_rows().min(500) {
            let k = d.lineitem.get(i, "l_partkey").unwrap().as_i64().unwrap();
            assert!(k >= 1 && k <= n_part);
        }
    }

    #[test]
    fn dates_cover_the_spec_range() {
        let d = generate(0.001);
        let lo = date::parse("1992-01-01").unwrap();
        let hi = date::parse("1998-12-31").unwrap();
        for i in 0..d.orders.num_rows() {
            match d.orders.get(i, "o_orderdate").unwrap() {
                pytond_common::Value::Date(x) => assert!(x >= lo && x <= hi),
                other => panic!("unexpected {other:?}"),
            }
        }
    }

    #[test]
    fn q12_relevant_modes_exist() {
        let d = generate(0.002);
        let modes = d.lineitem.column("l_shipmode").unwrap();
        let mut mail = false;
        let mut ship = false;
        for i in 0..modes.len() {
            match modes.get(i) {
                pytond_common::Value::Str(s) if s == "MAIL" => mail = true,
                pytond_common::Value::Str(s) if s == "SHIP" => ship = true,
                _ => {}
            }
        }
        assert!(mail && ship);
    }
}
