//! Compile-once/execute-many microbench: `prepared_vs_reparse`.
//!
//! Measures the cost the prepared-statement split removes from the hot
//! path. `reparse_per_call` runs the legacy wire format — SQL text through
//! lex → parse → bind → optimize → execute on **every** call — while
//! `prepared_execute` plans once and executes the stored plan per call. The
//! headline pair is `star_join`, the canonical serving shape (a
//! point-filtered star join over small dimension tables, where cost-based
//! join planning dominates the tiny execution): prepared must sustain
//! ≥ 5× the re-parse throughput there. The facade pair mirrors the same
//! split one layer up: `facade_compile_each` re-runs the whole
//! Python→TondIR→plan pipeline per call, `facade_cached_run` is
//! `Pytond::run` hitting the stats-versioned plan cache. The CI gate diffs
//! these numbers against `BENCH_3.json`.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use pytond::{Backend, OptLevel, Pytond};
use pytond_common::{Column, Relation};
use pytond_sqldb::{Database, EngineConfig, Profile};
use std::time::Duration;

/// Fact-table rows: small on purpose — the serving story is many cheap
/// repeated queries, where per-call planning dominates.
const ROWS: i64 = 256;

/// The star schema both layers bench against: one small fact table and
/// three tiny dimensions.
fn tables() -> Vec<(&'static str, Relation)> {
    vec![
        (
            "events",
            Relation::new(vec![
                ("id".into(), Column::from_i64((0..ROWS).collect())),
                (
                    "uid".into(),
                    Column::from_i64((0..ROWS).map(|i| i % 64).collect()),
                ),
                (
                    "v".into(),
                    Column::from_f64((0..ROWS).map(|i| (i % 97) as f64).collect()),
                ),
            ])
            .unwrap(),
        ),
        (
            "users",
            Relation::new(vec![
                ("uid".into(), Column::from_i64((0..64).collect())),
                (
                    "rid".into(),
                    Column::from_i64((0..64).map(|i| i % 16).collect()),
                ),
            ])
            .unwrap(),
        ),
        (
            "regions",
            Relation::new(vec![
                ("rid".into(), Column::from_i64((0..16).collect())),
                (
                    "w".into(),
                    Column::from_f64((0..16).map(|i| i as f64).collect()),
                ),
            ])
            .unwrap(),
        ),
    ]
}

fn bench_db() -> Database {
    let db = Database::new();
    for (name, rel) in tables() {
        db.register(name, rel);
    }
    db
}

fn bench_pytond() -> Pytond {
    let py = Pytond::new();
    for (name, rel) in tables() {
        py.register_table(name, rel, &[]);
    }
    py
}

/// Engine-level split: re-parse per call vs execute a prepared plan.
fn prepared_vs_reparse(c: &mut Criterion) {
    let db = bench_db();
    let config = EngineConfig::default();
    let mut group = c.benchmark_group("prepared_vs_reparse");
    group.sample_size(30);
    group.warm_up_time(Duration::from_millis(100));
    group.measurement_time(Duration::from_millis(500));
    // The headline serving query: point-filtered star join. Planning (parse,
    // bind, cost-based join-order search) dwarfs the tiny execution, so the
    // prepared path must run ≥ 5× faster.
    let star = "SELECT events.v, regions.w FROM events, users, regions \
                WHERE events.uid = users.uid AND users.rid = regions.rid AND events.id = 77";
    group.bench_function(BenchmarkId::new("reparse_per_call", "star_join"), |b| {
        b.iter(|| db.execute_sql(star, &config).unwrap())
    });
    let prepared_star = db.prepare(star, Profile::Vectorized).unwrap();
    group.bench_function(BenchmarkId::new("prepared_execute", "star_join"), |b| {
        b.iter(|| db.execute_prepared(&prepared_star, &config).unwrap())
    });
    // Point lookup: the minimal-execution extreme.
    let point = "SELECT v FROM events WHERE id = 128";
    group.bench_function(BenchmarkId::new("reparse_per_call", "point"), |b| {
        b.iter(|| db.execute_sql(point, &config).unwrap())
    });
    let prepared_point = db.prepare(point, Profile::Vectorized).unwrap();
    group.bench_function(BenchmarkId::new("prepared_execute", "point"), |b| {
        b.iter(|| db.execute_prepared(&prepared_point, &config).unwrap())
    });
    group.finish();
}

/// Facade-level split: full recompilation per call vs the plan cache.
fn facade_cache(c: &mut Criterion) {
    let py = bench_pytond();
    let src = "@pytond\ndef q(events, users, regions):\n    \
               j = events.merge(users, on=['uid']).merge(regions, on=['rid'])\n    \
               hot = j[j.id < 32]\n    \
               return hot.groupby(['rid']).agg(total=('v', 'sum'))\n";
    let backend = Backend::duckdb_sim(1);
    let mut group = c.benchmark_group("prepared_vs_reparse");
    group.sample_size(30);
    group.warm_up_time(Duration::from_millis(100));
    group.measurement_time(Duration::from_millis(500));
    group.bench_function(BenchmarkId::new("facade_compile_each", "star_agg"), |b| {
        b.iter(|| {
            let compiled = py.compile_at(src, backend.dialect(), OptLevel::O4).unwrap();
            py.execute(&compiled, &backend).unwrap()
        })
    });
    group.bench_function(BenchmarkId::new("facade_cached_run", "star_agg"), |b| {
        b.iter(|| py.run(src, &backend).unwrap())
    });
    group.finish();
}

criterion_group!(benches, prepared_vs_reparse, facade_cache);
criterion_main!(benches);
