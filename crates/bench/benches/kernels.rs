//! Kernel-level microbenches: expression evaluation over 1M-row columns and
//! hash-key build/probe for each key layout the engine can choose.
//!
//! The paper-figure benches catch figure-level regressions; these isolate the
//! two engine hot paths the typed-kernel work targets, so a future PR that
//! slows a single kernel shows up here even when the figure numbers hide it.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use pytond_common::hash::{distinct_keep, FixedKeySpec, KeyArena, KeyWidth};
use pytond_common::{Column, Relation, Value};
use pytond_frame::{AggOp, DataFrame, JoinHow};
use pytond_sqldb::ast::BinOp;
use pytond_sqldb::expr::BExpr;
use pytond_sqldb::table::Batch;
use pytond_sqldb::{Database, EngineConfig};
use std::time::Duration;

/// Rows for the expression kernels (1M, per the paper's columnar batches).
const EVAL_ROWS: usize = 1 << 20;
/// Rows for key build/probe (kept smaller: maps dominate, not scans).
const KEY_ROWS: usize = 1 << 18;

fn gen_i64(n: usize, modulus: i64) -> Vec<i64> {
    (0..n)
        .map(|i| ((i as i64).wrapping_mul(0x9E37_79B9)).rem_euclid(modulus))
        .collect()
}

fn gen_f64(n: usize) -> Vec<f64> {
    (0..n)
        .map(|i| ((i as f64) * 0.618_033_988_749).fract() * 1e4)
        .collect()
}

fn bin(op: BinOp, l: BExpr, r: BExpr) -> BExpr {
    BExpr::Bin {
        op,
        l: Box::new(l),
        r: Box::new(r),
    }
}

/// Filter and arithmetic kernels over 1M-row Int/Float columns.
fn kernel_eval(c: &mut Criterion) {
    let batch = Batch::from_columns(vec![
        Column::from_i64(gen_i64(EVAL_ROWS, 10_000)),
        Column::from_f64(gen_f64(EVAL_ROWS)),
    ]);
    let mut group = c.benchmark_group("kernel_eval");
    group.sample_size(10);
    group.warm_up_time(Duration::from_millis(100));
    group.measurement_time(Duration::from_millis(400));
    let filter_int = bin(BinOp::Gt, BExpr::Col(0), BExpr::Lit(Value::Int(5_000)));
    group.bench_function(BenchmarkId::new("filter_int_gt_lit", EVAL_ROWS), |b| {
        b.iter(|| filter_int.eval_mask(&batch, None).unwrap())
    });
    // Int column against a float literal: the mixed-type comparison pair.
    let filter_mixed = bin(BinOp::Le, BExpr::Col(0), BExpr::Lit(Value::Float(5e3)));
    group.bench_function(BenchmarkId::new("filter_int_le_float", EVAL_ROWS), |b| {
        b.iter(|| filter_mixed.eval_mask(&batch, None).unwrap())
    });
    let arith_float = bin(
        BinOp::Add,
        bin(BinOp::Mul, BExpr::Col(1), BExpr::Col(1)),
        BExpr::Col(1),
    );
    group.bench_function(BenchmarkId::new("arith_float_mul_add", EVAL_ROWS), |b| {
        b.iter(|| arith_float.eval(&batch, None).unwrap())
    });
    let arith_mixed = bin(
        BinOp::Mul,
        BExpr::Col(0),
        bin(BinOp::Add, BExpr::Col(1), BExpr::Lit(Value::Float(1.5))),
    );
    group.bench_function(BenchmarkId::new("arith_int_float_mix", EVAL_ROWS), |b| {
        b.iter(|| arith_mixed.eval(&batch, None).unwrap())
    });
    group.finish();
}

/// Key build/probe for each layout: packed u64 (1-col int), packed u128
/// (2-col int), and the byte-arena fallback (string key).
fn hash_keys(c: &mut Criterion) {
    let k1 = Column::from_i64(gen_i64(KEY_ROWS, 4_096));
    let k2 = Column::from_i64(gen_i64(KEY_ROWS, 17));
    let ks = Column::from_str_vec(
        gen_i64(KEY_ROWS, 4_096)
            .into_iter()
            .map(|v| format!("key_{v}"))
            .collect(),
    );
    let mut group = c.benchmark_group("hash_keys");
    group.sample_size(10);
    group.warm_up_time(Duration::from_millis(100));
    group.measurement_time(Duration::from_millis(400));
    // Raw key machinery: pack/encode + distinct over the packed keys.
    group.bench_function(BenchmarkId::new("pack_u64_1col_int", KEY_ROWS), |b| {
        let cols = [&k1];
        let spec = FixedKeySpec::plan(&[&cols], true).unwrap();
        assert_eq!(spec.width(), KeyWidth::U64);
        b.iter(|| distinct_keep(&spec.pack_u64(&cols).0))
    });
    group.bench_function(BenchmarkId::new("pack_u128_2col_int", KEY_ROWS), |b| {
        let cols = [&k1, &k2];
        let spec = FixedKeySpec::plan(&[&cols], true).unwrap();
        assert_eq!(spec.width(), KeyWidth::U128);
        b.iter(|| distinct_keep(&spec.pack_u128(&cols).0))
    });
    group.bench_function(BenchmarkId::new("arena_1col_str", KEY_ROWS), |b| {
        let cols = [&ks];
        assert!(FixedKeySpec::plan(&[&cols], true).is_none());
        b.iter(|| {
            let arena = KeyArena::encode_raw(&cols, false);
            distinct_keep(&arena.dense_keys())
        })
    });
    group.finish();

    // End-to-end build/probe through the frame layer (shares the machinery).
    let probe_int = DataFrame::from_cols(vec![
        ("k", k1.clone()),
        ("k2", k2.clone()),
        ("v", Column::from_f64(gen_f64(KEY_ROWS))),
    ])
    .unwrap();
    let build_int = DataFrame::from_cols(vec![
        ("k", Column::from_i64((0..4_096).collect())),
        ("k2", Column::from_i64((0..4_096).map(|v| v % 17).collect())),
        ("w", Column::from_i64((0..4_096).collect())),
    ])
    .unwrap();
    let probe_str = DataFrame::from_cols(vec![("k", ks.clone())]).unwrap();
    let build_str = DataFrame::from_cols(vec![(
        "k",
        Column::from_str_vec((0..4_096).map(|v| format!("key_{v}")).collect()),
    )])
    .unwrap();
    let mut group = c.benchmark_group("hash_join_probe");
    group.sample_size(10);
    group.warm_up_time(Duration::from_millis(100));
    group.measurement_time(Duration::from_millis(400));
    group.bench_function(BenchmarkId::new("merge_1col_int", KEY_ROWS), |b| {
        b.iter(|| {
            probe_int
                .merge(&build_int, JoinHow::Inner, &["k"], &["k"])
                .unwrap()
        })
    });
    group.bench_function(BenchmarkId::new("merge_2col_int", KEY_ROWS), |b| {
        b.iter(|| {
            probe_int
                .merge(&build_int, JoinHow::Inner, &["k", "k2"], &["k", "k2"])
                .unwrap()
        })
    });
    group.bench_function(BenchmarkId::new("merge_1col_str", KEY_ROWS), |b| {
        b.iter(|| {
            probe_str
                .merge(&build_str, JoinHow::Inner, &["k"], &["k"])
                .unwrap()
        })
    });
    group.bench_function(BenchmarkId::new("groupby_1col_int", KEY_ROWS), |b| {
        b.iter(|| {
            probe_int
                .groupby(&["k"])
                .unwrap()
                .agg(&[("v", AggOp::Sum, "s")])
                .unwrap()
        })
    });
    group.finish();
}

/// Zone-map scan pruning: a selective range predicate over 1M clustered
/// (sequentially keyed) rows, with pruning on vs off. The pruned path skips
/// ~99% of the zones before the vectorized kernels run.
fn scan_pruning(c: &mut Criterion) {
    const ROWS: i64 = 1 << 20;
    let db = Database::new();
    db.register(
        "events",
        Relation::new(vec![
            ("id".into(), Column::from_i64((0..ROWS).collect())),
            (
                "v".into(),
                Column::from_f64((0..ROWS).map(|i| (i % 1000) as f64).collect()),
            ),
        ])
        .unwrap(),
    );
    // ~1% of rows survive; zone maps skip every morsel outside the band.
    let sql = "SELECT SUM(v) AS s FROM events WHERE id >= 500000 AND id < 510000";
    let pruned_cfg = EngineConfig::default();
    let unpruned_cfg = EngineConfig {
        zone_prune: false,
        ..EngineConfig::default()
    };
    let mut group = c.benchmark_group("scan_pruning");
    group.sample_size(10);
    group.warm_up_time(Duration::from_millis(100));
    group.measurement_time(Duration::from_millis(400));
    group.bench_function(BenchmarkId::new("selective_1pct_pruned", ROWS), |b| {
        b.iter(|| db.execute_sql(sql, &pruned_cfg).unwrap())
    });
    group.bench_function(BenchmarkId::new("selective_1pct_unpruned", ROWS), |b| {
        b.iter(|| db.execute_sql(sql, &unpruned_cfg).unwrap())
    });
    // Point lookup: equality on the clustered key touches a single zone.
    let point = "SELECT v FROM events WHERE id = 777777";
    group.bench_function(BenchmarkId::new("point_lookup_pruned", ROWS), |b| {
        b.iter(|| db.execute_sql(point, &pruned_cfg).unwrap())
    });
    group.bench_function(BenchmarkId::new("point_lookup_unpruned", ROWS), |b| {
        b.iter(|| db.execute_sql(point, &unpruned_cfg).unwrap())
    });
    group.finish();
}

criterion_group!(kernels, kernel_eval, hash_keys, scan_pruning);
criterion_main!(kernels);
