//! `mv` microbench: incremental view maintenance vs full recompute on
//! standing queries under an append stream.
//!
//! Three views stand over a 1M-row fact table:
//!
//! - **point_filter** — a selective equality filter (chain delta: each
//!   append runs the plan over the delta overlay only and splices the
//!   survivors onto the stored result).
//! - **group_agg** — a selective filtered group-by (agg delta: the view
//!   maintains the aggregate's input rows and re-aggregates the maintained
//!   input, never rescanning the base table).
//! - **star_agg** — a dimension join feeding a grouped aggregate (reported
//!   for context; delta-eligible when the fact table probes the join).
//!
//! The interesting number is [`ViewState::refresh_ns`] — the time the
//! engine spent inside the view refresh triggered by an append — compared
//! against a measured full recompute of the same view
//! ([`Database::view_oracle`]). Wall-clock `append` time is reported too
//! but deliberately *not* gated: copy-on-append of the 1M-row table is
//! O(table) and would swamp the delta advantage the gate is about.
//!
//! When `PYTOND_MV_ASSERT=1`, the bench asserts full recompute costs ≥ 5×
//! the incremental refresh on the filter and agg views (min-of-N on both
//! sides, one clean re-measure before failing — the `fusion`/`dict` bench
//! gate protocol). Skipped under `PYTOND_NO_IVM=1`, which turns views into
//! recompute-on-read oracles.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use pytond_common::{Column, Relation};
use pytond_sqldb::{Database, EngineConfig, Profile, RefreshMode, ViewState};
use std::sync::Arc;
use std::time::{Duration, Instant};

/// Fact-table rows: enough that a full rescan dominates a delta refresh.
const ROWS: usize = 1_000_000;
/// Distinct join/group keys in the fact table.
const KEYS: i64 = 2_000;
/// Rows per appended batch — the delta a refresh has to absorb.
const BATCH: usize = 1_024;
/// Appends measured per view (min taken, like min-of-5 wall clock).
const APPENDS: usize = 5;

fn smoke() -> bool {
    std::env::var("PYTOND_BENCH_SMOKE").is_ok_and(|v| v != "0" && !v.is_empty())
}

fn no_ivm() -> bool {
    std::env::var("PYTOND_NO_IVM").is_ok_and(|v| {
        let v = v.trim();
        !v.is_empty() && v != "0"
    })
}

fn fact_rel(start: usize, rows: usize) -> Relation {
    let k: Vec<i64> = (start..start + rows)
        .map(|i| (i as i64).wrapping_mul(2_654_435_761) % KEYS)
        .collect();
    let v: Vec<f64> = (start..start + rows)
        .map(|i| (i % 9973) as f64 * 0.25)
        .collect();
    Relation::new(vec![
        ("k".into(), Column::from_i64(k)),
        ("v".into(), Column::from_f64(v)),
    ])
    .unwrap()
}

fn dim_rel() -> Relation {
    let k: Vec<i64> = (0..KEYS).collect();
    let g: Vec<i64> = (0..KEYS).map(|k| k % 8).collect();
    Relation::new(vec![
        ("k".into(), Column::from_i64(k)),
        ("g".into(), Column::from_i64(g)),
    ])
    .unwrap()
}

const POINT_FILTER: &str = "SELECT k, v FROM fact WHERE k = 123";

const GROUP_AGG: &str = "SELECT k, COUNT(*) AS n, SUM(v) AS sv FROM fact WHERE k < 40 GROUP BY k";

const STAR_AGG: &str = "SELECT dim.g, COUNT(*) AS n, SUM(fact.v) AS sv \
     FROM fact, dim WHERE fact.k = dim.k AND fact.k < 64 GROUP BY dim.g";

const VIEWS: [(&str, &str); 3] = [
    ("point_filter", POINT_FILTER),
    ("group_agg", GROUP_AGG),
    ("star_agg", STAR_AGG),
];

fn cfg() -> EngineConfig {
    EngineConfig {
        profile: Profile::Fused,
        threads: 1,
        ..EngineConfig::default()
    }
}

fn database() -> Database {
    let db = Database::new();
    db.register("fact", fact_rel(0, ROWS));
    db.register("dim", dim_rel());
    for (name, sql) in VIEWS {
        db.register_view_with(name, sql, &cfg()).expect(name);
    }
    db
}

/// Min-of-5 wall clock after a warm-up (robust to scheduler noise).
fn time_ns(mut f: impl FnMut()) -> f64 {
    f();
    let mut best = f64::INFINITY;
    for _ in 0..5 {
        let start = Instant::now();
        f();
        best = best.min(start.elapsed().as_nanos() as f64);
    }
    best
}

/// Per-view measurement: min incremental `refresh_ns` over an append
/// stream, min-of-5 full recompute, and the refresh mode observed.
struct Measured {
    name: &'static str,
    refresh_ns: f64,
    recompute_ns: f64,
    mode: RefreshMode,
}

fn measure(db: &Database, next_start: &mut usize) -> Vec<Measured> {
    // Warm-up append, then APPENDS measured ones; each append refreshes
    // every view once, so one stream feeds all three measurements.
    let mut states: Vec<Vec<Arc<ViewState>>> = Vec::new();
    for round in 0..=APPENDS {
        let delta = fact_rel(*next_start, BATCH);
        *next_start += BATCH;
        db.append("fact", &delta).expect("append");
        if round > 0 {
            states.push(
                VIEWS
                    .iter()
                    .map(|(name, _)| db.view(name).expect(name))
                    .collect(),
            );
        }
    }
    VIEWS
        .iter()
        .enumerate()
        .map(|(i, (name, _))| {
            let refresh_ns = states
                .iter()
                .map(|round| round[i].refresh_ns() as f64)
                .fold(f64::INFINITY, f64::min);
            let recompute_ns = time_ns(|| {
                db.view_oracle(name).expect(name);
            });
            Measured {
                name,
                refresh_ns,
                recompute_ns,
                mode: states.last().expect("rounds")[i].mode(),
            }
        })
        .collect()
}

fn mv(c: &mut Criterion) {
    let db = database();
    let mut next_start = ROWS;
    let rounds = if smoke() { 2 } else { 5 };

    let mut group = c.benchmark_group("mv");
    group.sample_size(rounds);
    group.warm_up_time(Duration::from_millis(200));
    group.measurement_time(Duration::from_secs(1));

    // Wall-clock of an append with three standing views attached — the
    // end-to-end serving cost (dominated by copy-on-append, not refresh).
    group.bench_function(BenchmarkId::new("append_with_views", BATCH), |b| {
        b.iter(|| {
            let delta = fact_rel(next_start, BATCH);
            next_start += BATCH;
            db.append("fact", &delta).unwrap();
        })
    });
    // Full recompute of each view at the current snapshot — the cost a
    // recompute-on-append strategy would pay per append.
    for (name, _) in VIEWS {
        group.bench_function(BenchmarkId::new("recompute", name), |b| {
            b.iter(|| db.view_oracle(name).unwrap())
        });
    }
    group.finish();

    let measured = measure(&db, &mut next_start);
    println!("\nmv: incremental refresh vs full recompute (single-threaded, {BATCH}-row appends)");
    for m in &measured {
        println!(
            "  {:<14} refresh {:>9.1} µs ({})  recompute {:>9.2} ms   {:.1}x",
            m.name,
            m.refresh_ns / 1e3,
            m.mode.name(),
            m.recompute_ns / 1e6,
            m.recompute_ns / m.refresh_ns.max(1.0),
        );
    }

    // CI gate: a delta refresh must beat a full recompute ≥ 5× on the
    // filter and agg views. Skipped under `PYTOND_NO_IVM=1` (views become
    // recompute-on-read oracles, so there is no delta path to gate); a
    // failing first measurement is re-taken once from scratch.
    if std::env::var("PYTOND_MV_ASSERT").is_ok_and(|v| v == "1") && !no_ivm() {
        const NEED: f64 = 5.0;
        for name in ["point_filter", "group_agg"] {
            let m = measured.iter().find(|m| m.name == name).unwrap();
            assert!(
                matches!(m.mode, RefreshMode::Delta),
                "{name}: expected a delta refresh, got {} — gate numbers would be meaningless",
                m.mode.name()
            );
            let mut speedup = m.recompute_ns / m.refresh_ns.max(1.0);
            if speedup < NEED {
                let re = measure(&db, &mut next_start);
                let m = re.iter().find(|m| m.name == name).unwrap();
                speedup = m.recompute_ns / m.refresh_ns.max(1.0);
            }
            assert!(
                speedup >= NEED,
                "{name}: incremental refresh speedup {speedup:.2}x < {NEED}x required \
                 (after one re-measure)"
            );
            println!("mv assertion passed: {name} {speedup:.2}x ≥ {NEED}x");
        }
    }
}

criterion_group!(benches, mv);
criterion_main!(benches);
