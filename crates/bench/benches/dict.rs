//! `dict` microbench: dictionary-encoded string columns vs plain strings,
//! single-threaded, on the three shapes the encoding targets:
//!
//! - **eq_filter** — string equality predicate into a scalar aggregate. The
//!   plain path compares bytes per row; the encoded path evaluates the
//!   literal once per dictionary entry and tests a `u32` code per row.
//! - **join_groupby** — a Q9-style string-keyed join feeding a grouped
//!   aggregate. Plain string keys force the byte-encoded key fallback (and
//!   break the fused pipeline); dictionary keys pack into 64-bit words and
//!   the probe fuses into the scan pipeline.
//! - **groupby** — grouping directly on a string column: packed dictionary
//!   codes vs arena-encoded byte keys.
//!
//! Both sides register the *same* relations — one through
//! [`Database::register`] (dictionary-encoded by default), one through
//! [`Database::register_plain`] — so the comparison isolates the
//! representation. When `PYTOND_DICT_ASSERT=1`, the bench asserts encoded
//! beats plain by ≥ 1.5× on the join and ≥ 2× on the equality filter
//! (min-of-5 wall clock, one clean re-measure before failing — the same
//! protocol as the `fusion` bench gate).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use pytond_common::{Column, Relation};
use pytond_sqldb::{Database, EngineConfig, Profile};
use std::time::{Duration, Instant};

/// Fact-table rows: enough that per-row string work dominates setup.
const ROWS: usize = 1_000_000;
/// Distinct string keys in the fact table (dimension covers half).
const KEYS: usize = 2_000;

fn smoke() -> bool {
    std::env::var("PYTOND_BENCH_SMOKE").is_ok_and(|v| v != "0" && !v.is_empty())
}

fn relations() -> (Relation, Relation) {
    let keys: Vec<String> = (0..ROWS)
        .map(|i| format!("supplier-{:06}", i.wrapping_mul(2_654_435_761) % KEYS))
        .collect();
    let fact = Relation::new(vec![
        (
            "s".into(),
            Column::from_strs(&keys.iter().map(String::as_str).collect::<Vec<_>>()),
        ),
        (
            "v".into(),
            Column::from_f64((0..ROWS).map(|i| (i % 9973) as f64 * 0.25).collect()),
        ),
    ])
    .unwrap();
    let dim_keys: Vec<String> = (0..KEYS / 2).map(|k| format!("supplier-{k:06}")).collect();
    let dim = Relation::new(vec![
        (
            "s".into(),
            Column::from_strs(&dim_keys.iter().map(String::as_str).collect::<Vec<_>>()),
        ),
        (
            "w".into(),
            Column::from_i64((0..dim_keys.len() as i64).collect()),
        ),
    ])
    .unwrap();
    (fact, dim)
}

/// `(encoded, plain)` databases over identical data.
fn databases() -> (Database, Database) {
    let (fact, dim) = relations();
    let encoded = Database::new();
    encoded.register("fact", fact.clone());
    encoded.register("dim", dim.clone());
    let plain = Database::new();
    plain.register_plain("fact", fact);
    plain.register_plain("dim", dim);
    (encoded, plain)
}

const EQ_FILTER: &str = "SELECT COUNT(*) AS n, SUM(v) AS sv FROM fact WHERE s = 'supplier-000123'";

const JOIN_GROUPBY: &str = "SELECT dim.s, COUNT(*) AS n, SUM(fact.v) AS sv \
     FROM fact, dim WHERE fact.s = dim.s GROUP BY dim.s";

const GROUPBY: &str = "SELECT s, COUNT(*) AS n, SUM(v) AS sv FROM fact GROUP BY s";

const SHAPES: [(&str, &str); 3] = [
    ("eq_filter", EQ_FILTER),
    ("join_groupby", JOIN_GROUPBY),
    ("groupby", GROUPBY),
];

fn cfg() -> EngineConfig {
    EngineConfig {
        profile: Profile::Fused,
        threads: 1,
        ..EngineConfig::default()
    }
}

/// Min-of-5 wall clock after a warm-up (robust to scheduler noise).
fn time_ns(mut f: impl FnMut()) -> f64 {
    f();
    let mut best = f64::INFINITY;
    for _ in 0..5 {
        let start = Instant::now();
        f();
        best = best.min(start.elapsed().as_nanos() as f64);
    }
    best
}

fn dict(c: &mut Criterion) {
    let (encoded, plain) = databases();
    let rounds = if smoke() { 2 } else { 5 };

    let mut group = c.benchmark_group("dict");
    group.sample_size(rounds);
    group.warm_up_time(Duration::from_millis(200));
    group.measurement_time(Duration::from_secs(1));

    // (shape, plain ns, encoded ns) for the table and the gate.
    let mut ratios: Vec<(&str, f64, f64)> = Vec::new();
    for (name, sql) in SHAPES {
        let mut pair = [0.0f64; 2];
        for (i, db) in [&plain, &encoded].into_iter().enumerate() {
            let label = if i == 0 { "plain" } else { "encoded" };
            let prepared = db.prepare(sql, Profile::Fused).expect(name);
            let config = cfg();
            group.bench_function(BenchmarkId::new(name, label), |b| {
                b.iter(|| db.execute_prepared(&prepared, &config).unwrap())
            });
            pair[i] = time_ns(|| {
                db.execute_prepared(&prepared, &config).unwrap();
            });
        }
        ratios.push((name, pair[0], pair[1]));
    }
    group.finish();

    println!("\ndict: plain → encoded (single-threaded)");
    for (name, plain_ns, enc_ns) in &ratios {
        println!(
            "  {name:<14} {:>8.2} ms → {:>8.2} ms   {:.2}x",
            plain_ns / 1e6,
            enc_ns / 1e6,
            plain_ns / enc_ns
        );
    }

    // CI gate: encoded must beat plain ≥ 1.5× on the string-keyed join and
    // ≥ 2× on the equality filter. Skipped when encoding is globally off
    // (`PYTOND_NO_DICT=1` makes both sides plain); a failing first
    // measurement is re-taken once from scratch before the gate fires.
    let no_dict = std::env::var("PYTOND_NO_DICT").is_ok_and(|v| {
        let v = v.trim();
        !v.is_empty() && v != "0"
    });
    if std::env::var("PYTOND_DICT_ASSERT").is_ok_and(|v| v == "1") && !no_dict {
        for (name, need) in [("join_groupby", 1.5f64), ("eq_filter", 2.0f64)] {
            let (_, plain_ns, enc_ns) = ratios.iter().find(|(n, _, _)| *n == name).unwrap();
            let mut speedup = plain_ns / enc_ns;
            if speedup < need {
                let sql = SHAPES.iter().find(|(n, _)| *n == name).unwrap().1;
                let re = |db: &Database| {
                    let prepared = db.prepare(sql, Profile::Fused).unwrap();
                    let config = cfg();
                    time_ns(|| {
                        db.execute_prepared(&prepared, &config).unwrap();
                    })
                };
                speedup = re(&plain) / re(&encoded);
            }
            assert!(
                speedup >= need,
                "{name}: encoded speedup {speedup:.2}x < {need}x required (after one re-measure)"
            );
            println!("dict assertion passed: {name} {speedup:.2}x ≥ {need}x");
        }
    }
}

criterion_group!(benches, dict);
criterion_main!(benches);
