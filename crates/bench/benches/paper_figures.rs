//! Criterion benches — one group per paper artifact, sized to finish in
//! minutes. The `figures` binary prints the full paper-style tables; these
//! benches provide statistically tracked samples for regression testing.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use pytond::{Backend, OptLevel, Pytond};
use pytond_bench::{tpch_instance, workload_instance, System};
use pytond_ndarray::einsum;
use pytond_workloads::covariance as cov;
use std::time::Duration;

const SF: f64 = 0.005;

fn compile(py: &Pytond, source: &str, backend: Backend, level: OptLevel) -> pytond::Compiled {
    py.compile_at(source, backend.dialect(), level).unwrap()
}

/// Figures 3/4: representative TPC-H queries across the six systems,
/// 1 and 4 threads.
fn fig3_fig4_tpch(c: &mut Criterion) {
    let data = pytond_tpch::generate(SF);
    let py = tpch_instance(&data);
    let mut group = c.benchmark_group("fig3_fig4_tpch");
    group.sample_size(10);
    group.warm_up_time(Duration::from_millis(200));
    group.measurement_time(Duration::from_millis(600));
    for id in [1usize, 3, 6, 9, 13, 18] {
        let q = pytond_tpch::query(id);
        group.bench_with_input(BenchmarkId::new("python_1t", q.name), &q, |b, q| {
            b.iter(|| q.run_baseline(&data).unwrap())
        });
        for threads in [1usize, 4] {
            for system in [System::GrizzlyDuck, System::PytondDuck, System::PytondHyper] {
                let Some((level, backend)) = system.config(threads) else {
                    continue;
                };
                let compiled = compile(&py, q.source, backend, level);
                let label = format!("{}_{}t", system.label().replace('/', "_"), threads);
                group.bench_with_input(BenchmarkId::new(label, q.name), &compiled, |b, cq| {
                    b.iter(|| py.execute(cq, &backend).unwrap())
                });
            }
        }
    }
    group.finish();
}

/// Figures 5/6: the hybrid data-science workloads.
fn fig5_fig6_workloads(c: &mut Criterion) {
    let mut group = c.benchmark_group("fig5_fig6_workloads");
    group.sample_size(10);
    group.warm_up_time(Duration::from_millis(200));
    group.measurement_time(Duration::from_millis(600));
    for w in pytond_workloads::all_workloads(1) {
        let py = workload_instance(&w);
        group.bench_function(BenchmarkId::new("python_1t", w.name), |b| {
            b.iter(|| (w.baseline)(&w.tables).unwrap())
        });
        for threads in [1usize, 4] {
            let backend = Backend::duckdb_sim(threads);
            let compiled = compile(&py, w.source, backend, OptLevel::O4);
            group.bench_with_input(
                BenchmarkId::new(format!("pytond_duckdb_{threads}t"), w.name),
                &compiled,
                |b, cq| b.iter(|| py.execute(cq, &backend).unwrap()),
            );
        }
        let backend = Backend::hyper_sim(1);
        let compiled = compile(&py, w.source, backend, OptLevel::O4);
        group.bench_with_input(
            BenchmarkId::new("pytond_hyper_1t", w.name),
            &compiled,
            |b, cq| b.iter(|| py.execute(cq, &backend).unwrap()),
        );
    }
    group.finish();
}

/// Figures 7/8: thread-scalability samples (speedups derive from the curve).
fn fig7_fig8_scalability(c: &mut Criterion) {
    let data = pytond_tpch::generate(SF);
    let py = tpch_instance(&data);
    let mut group = c.benchmark_group("fig7_fig8_scalability");
    group.sample_size(10);
    group.warm_up_time(Duration::from_millis(200));
    group.measurement_time(Duration::from_millis(600));
    let q = pytond_tpch::query(6);
    for threads in 1..=4usize {
        let backend = Backend::duckdb_sim(threads);
        let compiled = compile(&py, q.source, backend, OptLevel::O4);
        group.bench_with_input(
            BenchmarkId::new("tpch_q6_pytond_duckdb", threads),
            &compiled,
            |b, cq| b.iter(|| py.execute(cq, &backend).unwrap()),
        );
    }
    let w = pytond_workloads::all_workloads(1)
        .into_iter()
        .find(|w| w.name == "Hybrid Covar (NF)")
        .unwrap();
    let wpy = workload_instance(&w);
    for threads in 1..=4usize {
        let backend = Backend::duckdb_sim(threads);
        let compiled = compile(&wpy, w.source, backend, OptLevel::O4);
        group.bench_with_input(
            BenchmarkId::new("hybrid_covar_pytond_duckdb", threads),
            &compiled,
            |b, cq| b.iter(|| wpy.execute(cq, &backend).unwrap()),
        );
    }
    group.finish();
}

/// Figure 9: covariance — NumPy vs dense vs sparse at two sparsity points.
fn fig9_covariance(c: &mut Criterion) {
    let mut group = c.benchmark_group("fig9_covariance");
    group.sample_size(10);
    group.warm_up_time(Duration::from_millis(200));
    group.measurement_time(Duration::from_millis(600));
    for (label, sparsity) in [("dense", 1.0f64), ("sparse_0.001", 0.001)] {
        let m = cov::gen_matrix(20_000, 16, sparsity, 99);
        group.bench_function(BenchmarkId::new("numpy", label), |b| {
            b.iter(|| einsum("ij,ik->jk", &[&m, &m]).unwrap())
        });
        let py = Pytond::new();
        py.register_table("m", cov::dense_relation(&m), &[&["__id"]]);
        let backend = Backend::duckdb_sim(1);
        let dense = compile(&py, cov::covariance_dense_source(), backend, OptLevel::O4);
        group.bench_function(BenchmarkId::new("pytond_dense", label), |b| {
            b.iter(|| py.execute(&dense, &backend).unwrap())
        });
        let pys = Pytond::new();
        pys.register_table("m", cov::sparse_relation(&m), &[]);
        let sparse = compile(&pys, cov::covariance_sparse_source(), backend, OptLevel::O4);
        group.bench_function(BenchmarkId::new("pytond_sparse", label), |b| {
            b.iter(|| pys.execute(&sparse, &backend).unwrap())
        });
    }
    group.finish();
}

/// Figure 10: optimization-level ablation on Q9.
fn fig10_opt_breakdown(c: &mut Criterion) {
    let data = pytond_tpch::generate(SF);
    let py = tpch_instance(&data);
    let q = pytond_tpch::query(9);
    let mut group = c.benchmark_group("fig10_opt_breakdown");
    group.sample_size(10);
    group.warm_up_time(Duration::from_millis(200));
    group.measurement_time(Duration::from_millis(600));
    for level in OptLevel::all() {
        let backend = Backend::duckdb_sim(1);
        let compiled = compile(&py, q.source, backend, level);
        group.bench_with_input(
            BenchmarkId::new("q9_duckdb", level.name()),
            &compiled,
            |b, cq| b.iter(|| py.execute(cq, &backend).unwrap()),
        );
    }
    group.finish();
}

criterion_group!(
    figures,
    fig3_fig4_tpch,
    fig5_fig6_workloads,
    fig7_fig8_scalability,
    fig9_covariance,
    fig10_opt_breakdown
);
criterion_main!(figures);
