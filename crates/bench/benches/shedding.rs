//! `shedding` microbench: tail latency and shed rate of bounded admission
//! under oversubscription (BENCH_6.json).
//!
//! Eight client threads fire a prepared aggregation in a closed loop
//! through an [`Admission`] gate of capacity 1/2/4 with a short queue-wait
//! bound — the load-shedding configuration of `docs/RESILIENCE.md`
//! (`PYTOND_ADMIT` × `PYTOND_ADMIT_TIMEOUT_MS`). A gate that sheds keeps
//! the latency of the queries it *does* admit flat: the table printed per
//! capacity shows served q/s, p50/p99 latency of admitted queries, and the
//! shed (error) rate. The usual `PYTOND_BENCH_JSON` records capture round
//! wall time per capacity for the CI bench gate.
//!
//! The gates here are local `Admission` instances rather than the
//! process-global one: the global gate reads `PYTOND_ADMIT` once per
//! process, so one bench process could not sweep three capacities through
//! it.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use pytond_common::pool::Admission;
use pytond_common::Error;
use pytond_sqldb::{Database, EngineConfig, Profile};
use std::time::{Duration, Instant};

/// TPC-H scale factor (orders ≈ 30 K rows): a mid-weight aggregation, so
/// a full gate genuinely queues.
const SF: f64 = 0.02;

/// Admission capacities of the shedding ladder.
const CAPACITIES: [usize; 3] = [1, 2, 4];

/// Oversubscription: client threads racing for the gate.
const CLIENTS: usize = 8;

/// Queue-wait bound: waits longer than this shed with `Error::Overloaded`.
const ADMIT_WAIT: Duration = Duration::from_millis(2);

/// Mid-weight grouped aggregation over `orders`.
const AGG_SQL: &str =
    "SELECT o_custkey, SUM(o_totalprice) AS s, COUNT(*) AS n FROM orders GROUP BY o_custkey";

fn smoke() -> bool {
    std::env::var("PYTOND_BENCH_SMOKE").is_ok_and(|v| v != "0" && !v.is_empty())
}

/// Outcome of one oversubscribed round at a fixed admission capacity.
struct ShedStats {
    served_qps: f64,
    p50_ns: u64,
    p99_ns: u64,
    shed_rate: f64,
}

/// One round: [`CLIENTS`] threads each make `per_client` attempts; every
/// attempt either passes the bounded gate and executes the prepared query
/// (latency recorded, admission wait included) or sheds with the transient
/// `Overloaded` (counted into the error rate).
fn shed_round(db: &Database, capacity: usize, per_client: usize) -> ShedStats {
    let prepared = db.prepare(AGG_SQL, Profile::Vectorized).expect("prepare");
    let cfg = EngineConfig {
        threads: 1,
        ..EngineConfig::default()
    };
    let gate = Admission::with_capacity(capacity);
    let start = Instant::now();
    let results: Vec<(Vec<u64>, usize)> = std::thread::scope(|s| {
        let handles: Vec<_> = (0..CLIENTS)
            .map(|_| {
                s.spawn(|| {
                    let mut ok_lat = Vec::with_capacity(per_client);
                    let mut sheds = 0usize;
                    for _ in 0..per_client {
                        let t = Instant::now();
                        match gate.admit_within(Some(ADMIT_WAIT)) {
                            Ok(ticket) => {
                                std::hint::black_box(
                                    db.execute_prepared(&prepared, &cfg).expect("query"),
                                );
                                drop(ticket);
                                ok_lat.push(t.elapsed().as_nanos() as u64);
                            }
                            Err(e) => {
                                assert!(matches!(e, Error::Overloaded(_)), "{e}");
                                sheds += 1;
                            }
                        }
                    }
                    (ok_lat, sheds)
                })
            })
            .collect();
        handles
            .into_iter()
            .map(|h| h.join().expect("client thread"))
            .collect()
    });
    let wall = start.elapsed();
    let mut ok: Vec<u64> = results
        .iter()
        .flat_map(|(l, _)| l.iter().copied())
        .collect();
    let sheds: usize = results.iter().map(|(_, s)| s).sum();
    let attempts = CLIENTS * per_client;
    ok.sort_unstable();
    // A zero-capacity round (impossible here) would divide by zero; every
    // ladder rung admits at least the holders of its `capacity` slots.
    assert!(!ok.is_empty(), "no query was ever admitted");
    ShedStats {
        served_qps: ok.len() as f64 / wall.as_secs_f64(),
        p50_ns: ok[ok.len() / 2],
        p99_ns: ok[(ok.len() * 99 / 100).min(ok.len() - 1)],
        shed_rate: sheds as f64 / attempts as f64,
    }
}

fn shedding(c: &mut Criterion) {
    let data = pytond_tpch::generate(SF);
    let db = Database::new();
    pytond_tpch::register_database(&db, &data);
    let per_client = if smoke() { 6 } else { 60 };

    let mut group = c.benchmark_group("shedding");
    group.sample_size(2);
    group.warm_up_time(Duration::from_millis(200));
    group.measurement_time(Duration::from_secs(1));
    for capacity in CAPACITIES {
        group.bench_function(
            BenchmarkId::new("oversub_8c", format!("cap{capacity}")),
            |b| b.iter(|| shed_round(&db, capacity, per_client)),
        );
    }
    group.finish();

    // Dedicated rounds for the latency/error-rate table: the point of
    // bounded admission is that p99 of *admitted* queries stays flat while
    // the shed rate absorbs the overload.
    println!(
        "\nshedding: {CLIENTS} clients vs admission capacity (queue wait bound {ADMIT_WAIT:?})"
    );
    for capacity in CAPACITIES {
        let stats = shed_round(&db, capacity, per_client);
        println!(
            "  cap {capacity}   {:>9.0} q/s served   p50 {:>8.2} ms   p99 {:>8.2} ms   shed rate {:>5.1}%",
            stats.served_qps,
            stats.p50_ns as f64 / 1e6,
            stats.p99_ns as f64 / 1e6,
            stats.shed_rate * 100.0,
        );
    }
}

criterion_group!(benches, shedding);
criterion_main!(benches);
