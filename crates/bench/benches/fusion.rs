//! `fusion` microbench: single-pass fused pipelines vs the materializing
//! operator-at-a-time path, single-threaded, on the two shapes pipeline
//! fusion targets most directly:
//!
//! - **Q6-style** — predicated scan feeding a scalar aggregate. The
//!   materializing path evaluates the predicate, gathers ~50% survivors
//!   into an intermediate batch, then aggregates it; the fused pipeline
//!   streams each zone-aligned morsel scan→aggregate-input while hot in
//!   cache and never materializes the survivors.
//! - **Q1-style** — a highly selective (~95% survivors) predicated scan
//!   feeding a small-cardinality grouped aggregation with several
//!   aggregates, where the avoided survivor gather spans every column.
//!
//! Each query prepares once; only prepared execution is timed. When
//! `PYTOND_FUSION_ASSERT=1`, the bench asserts fused beats materializing
//! by ≥ 1.5× on Q6-style and ≥ 1.25× on Q1-style (min-of-5 wall clock,
//! one clean re-measure before failing — same protocol as the `scaling`
//! bench gate). The Q1 bar is lower because the materializing aggregate
//! now also deduplicates shared aggregate arguments, so the fused margin
//! on that shape is the avoided survivor gather alone (~1.4× here),
//! no longer the redundant argument evaluation on top of it.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use pytond_common::{Column, Relation};
use pytond_sqldb::{Database, EngineConfig, Profile};
use std::time::{Duration, Instant};

/// Rows of the synthetic events table: ~122 zone-map zones, so the fused
/// drive claims a realistic number of morsels.
const ROWS: i64 = 500_000;

fn smoke() -> bool {
    std::env::var("PYTOND_BENCH_SMOKE").is_ok_and(|v| v != "0" && !v.is_empty())
}

fn fusion_db() -> Database {
    let db = Database::new();
    db.register(
        "events",
        Relation::new(vec![
            ("id".into(), Column::from_i64((0..ROWS).collect())),
            (
                "flag".into(),
                Column::from_i64((0..ROWS).map(|i| i % 4).collect()),
            ),
            (
                "grp".into(),
                Column::from_i64((0..ROWS).map(|i| i % 512).collect()),
            ),
            (
                "v".into(),
                Column::from_f64((0..ROWS).map(|i| (i % 9973) as f64 * 0.25).collect()),
            ),
        ])
        .unwrap(),
    );
    db
}

/// ~50%-selective predicate (unclustered, so zone maps cannot prune) into
/// a scalar aggregate.
const Q6_STYLE: &str = "SELECT SUM(v) AS s, COUNT(*) AS n FROM events WHERE grp < 256 AND v > 1.0";

/// ~90%-selective unclustered predicate into a 4-group aggregation with
/// four aggregates — the Q1 shape: almost everything survives, so the
/// materializing path's survivor gather is almost a full copy, while the
/// fused sink evaluates the shared `v` argument once per morsel
/// (`SUM`/`AVG`/`MIN` deduplicate to a single narrow column).
const Q1_STYLE: &str = "SELECT flag, SUM(v) AS s, AVG(v) AS a, MIN(v) AS lo, COUNT(*) AS n \
     FROM events WHERE grp < 461 GROUP BY flag";

const SHAPES: [(&str, &str); 2] = [("q6_style", Q6_STYLE), ("q1_style", Q1_STYLE)];

fn cfg(profile: Profile) -> EngineConfig {
    EngineConfig {
        profile,
        threads: 1,
        ..EngineConfig::default()
    }
}

/// Min-of-5 wall clock after a warm-up (robust to scheduler noise).
fn time_ns(mut f: impl FnMut()) -> f64 {
    f();
    let mut best = f64::INFINITY;
    for _ in 0..5 {
        let start = Instant::now();
        f();
        best = best.min(start.elapsed().as_nanos() as f64);
    }
    best
}

fn fusion(c: &mut Criterion) {
    let db = fusion_db();
    let rounds = if smoke() { 2 } else { 5 };

    let mut group = c.benchmark_group("fusion");
    group.sample_size(rounds);
    group.warm_up_time(Duration::from_millis(200));
    group.measurement_time(Duration::from_secs(1));

    // (shape, materializing ns, fused ns) for the table and the gate.
    let mut ratios: Vec<(&str, f64, f64)> = Vec::new();
    for (name, sql) in SHAPES {
        let prepared = db.prepare(sql, Profile::Fused).expect(name);
        let mut pair = [0.0f64; 2];
        for (i, profile) in [Profile::Vectorized, Profile::Fused]
            .into_iter()
            .enumerate()
        {
            let label = if i == 0 { "materializing" } else { "fused" };
            let config = cfg(profile);
            group.bench_function(BenchmarkId::new(name, label), |b| {
                b.iter(|| db.execute_prepared(&prepared, &config).unwrap())
            });
            pair[i] = time_ns(|| {
                db.execute_prepared(&prepared, &config).unwrap();
            });
        }
        ratios.push((name, pair[0], pair[1]));
    }
    group.finish();

    println!("\nfusion: materializing → fused (single-threaded)");
    for (name, mat, fused) in &ratios {
        println!(
            "  {name:<10} {:>8.2} ms → {:>8.2} ms   {:.2}x",
            mat / 1e6,
            fused / 1e6,
            mat / fused
        );
    }

    // CI gate: fused must beat materializing ≥ 1.5× on the Q6 shape and
    // ≥ 1.25× on the Q1 shape (see the module docs for why the Q1 bar is
    // lower). Purely single-threaded, so no hardware-parallelism self-skip
    // applies; a failing first measurement is re-taken once from scratch
    // before the gate fires.
    if std::env::var("PYTOND_FUSION_ASSERT").is_ok_and(|v| v == "1") {
        for (name, mat, fused) in &ratios {
            let need = if *name == "q1_style" { 1.25 } else { 1.5 };
            let mut speedup = mat / fused;
            if speedup < need {
                let sql = SHAPES.iter().find(|(n, _)| n == name).unwrap().1;
                let prepared = db.prepare(sql, Profile::Fused).unwrap();
                let re = |profile: Profile| {
                    let config = cfg(profile);
                    time_ns(|| {
                        db.execute_prepared(&prepared, &config).unwrap();
                    })
                };
                speedup = re(Profile::Vectorized) / re(Profile::Fused);
            }
            assert!(
                speedup >= need,
                "{name}: fused speedup {speedup:.2}x < {need}x required (after one re-measure)"
            );
            println!("fusion assertion passed: {name} {speedup:.2}x ≥ {need}x");
        }
    }
}

criterion_group!(benches, fusion);
criterion_main!(benches);
