//! `scaling` microbench: wall-clock speedup of morsel-driven parallel
//! execution at 1/2/4 worker threads on the join/aggregation-heavy TPC-H
//! queries (Q3, Q9, Q18) and a scan-heavy predicated filter+aggregate.
//!
//! Each query compiles/prepares once; only prepared execution is timed
//! (the serving hot path the parallel executor accelerates). Besides the
//! usual `PYTOND_BENCH_JSON` records, the bench prints a `1t → Nt` speedup
//! table (min-of-5 rounds per point, robust to scheduler noise) and — when
//! `PYTOND_SCALING_ASSERT=1` **and** the machine has ≥ 4 hardware threads —
//! asserts that 4-thread Q18 beats 1-thread by ≥ 1.5×. On smaller runners
//! the assertion self-skips (oversubscribed "workers" cannot beat serial
//! execution), so the check is meaningful exactly where it can be.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use pytond::{Backend, OptLevel};
use pytond_common::{pool, Column, Relation};
use pytond_sqldb::{Database, EngineConfig, Profile};
use std::time::{Duration, Instant};

/// TPC-H scale factor: big enough that lineitem spans many morsels
/// (sf 0.05 ≈ 300 K lineitem rows ≈ 19 production morsels).
const SF: f64 = 0.05;

/// Rows of the synthetic scan-heavy table (filter + scalar aggregate, no
/// join): isolates the parallel predicated-scan path.
const SCAN_ROWS: i64 = 2_000_000;

/// Thread counts of the scaling ladder.
const THREADS: [usize; 3] = [1, 2, 4];

/// The queries whose 1→4-thread speedups `BENCH_4.json` records.
const TPCH_IDS: [usize; 3] = [3, 9, 18];

fn smoke() -> bool {
    std::env::var("PYTOND_BENCH_SMOKE").is_ok_and(|v| v != "0" && !v.is_empty())
}

fn scan_db() -> Database {
    let db = Database::new();
    db.register(
        "events",
        Relation::new(vec![
            ("id".into(), Column::from_i64((0..SCAN_ROWS).collect())),
            (
                "grp".into(),
                Column::from_i64((0..SCAN_ROWS).map(|i| i % 512).collect()),
            ),
            (
                "v".into(),
                Column::from_f64((0..SCAN_ROWS).map(|i| (i % 9973) as f64 * 0.25).collect()),
            ),
        ])
        .unwrap(),
    );
    db
}

/// Scan-heavy shape: a ~50%-selective predicate the zone maps cannot prune
/// (grp is unclustered), so every morsel's rows are evaluated, then a
/// scalar aggregate over the survivors.
const SCAN_SQL: &str = "SELECT SUM(v) AS s, COUNT(*) AS n FROM events WHERE grp < 256 AND v > 1.0";

/// Rounds for the speedup table / CI assertion: always min-of-5 after a
/// warm-up, even in smoke mode — a single noisy-neighbor stall on a shared
/// runner must not flip the ≥ 1.5× gate.
const ASSERT_ROUNDS: usize = 5;

/// Minimum wall-clock nanoseconds of `f` over [`ASSERT_ROUNDS`] rounds,
/// measured outside criterion (criterion's own numbers feed the JSON
/// record; the min is robust against one-off scheduler hiccups).
fn time_ns(mut f: impl FnMut()) -> f64 {
    f(); // warm-up
    let mut best = f64::INFINITY;
    for _ in 0..ASSERT_ROUNDS {
        let start = Instant::now();
        f();
        best = best.min(start.elapsed().as_nanos() as f64);
    }
    best
}

fn scaling(c: &mut Criterion) {
    let data = pytond_tpch::generate(SF);
    let py = pytond_bench::tpch_instance(&data);
    let scan = scan_db();
    let rounds = if smoke() { 2 } else { 5 };

    let mut group = c.benchmark_group("scaling");
    group.sample_size(rounds);
    group.warm_up_time(Duration::from_millis(200));
    group.measurement_time(Duration::from_secs(1));

    // (label, 1t ns, best parallel ns) for the printed speedup table.
    let mut speedups: Vec<(String, f64, f64)> = Vec::new();

    for id in TPCH_IDS {
        let q = pytond_tpch::query(id);
        let compiled = py
            .compile_at(q.source, pytond::Dialect::DuckDb, OptLevel::O4)
            .expect(q.name);
        let mut by_threads = Vec::new();
        for threads in THREADS {
            let backend = Backend::duckdb_sim(threads);
            group.bench_function(
                BenchmarkId::new(q.name.to_lowercase(), format!("{threads}t")),
                |b| b.iter(|| py.execute(&compiled, &backend).unwrap()),
            );
            by_threads.push(time_ns(|| {
                py.execute(&compiled, &backend).unwrap();
            }));
        }
        speedups.push((
            q.name.to_string(),
            by_threads[0],
            by_threads[THREADS.len() - 1],
        ));
    }

    // Prepare once; only prepared execution is timed, like the TPC-H
    // entries above.
    let scan_prepared = scan
        .prepare(SCAN_SQL, Profile::Vectorized)
        .expect("scan_heavy prepares");
    for threads in THREADS {
        let cfg = EngineConfig {
            threads,
            ..EngineConfig::default()
        };
        group.bench_function(BenchmarkId::new("scan_heavy", format!("{threads}t")), |b| {
            b.iter(|| scan.execute_prepared(&scan_prepared, &cfg).unwrap())
        });
        if threads == 1 || threads == THREADS[THREADS.len() - 1] {
            let ns = time_ns(|| {
                scan.execute_prepared(&scan_prepared, &cfg).unwrap();
            });
            match threads {
                1 => speedups.push(("scan_heavy".into(), ns, f64::NAN)),
                _ => {
                    if let Some(last) = speedups.last_mut() {
                        last.2 = ns;
                    }
                }
            }
        }
    }
    group.finish();

    let max_t = THREADS[THREADS.len() - 1];
    println!(
        "\nscaling: 1t → {max_t}t speedups ({} hardware threads)",
        pool::hardware_threads()
    );
    for (name, serial, parallel) in &speedups {
        println!(
            "  {name:<12} {:>8.2} ms → {:>8.2} ms   {:.2}x",
            serial / 1e6,
            parallel / 1e6,
            serial / parallel
        );
    }

    // CI gate: on a real multicore runner, 4-thread Q18 must beat serial by
    // ≥ 1.5×. Self-skips on < 4-hardware-thread machines, where "4
    // workers" are timeslices of the same cores and no speedup is
    // physically possible. hardware_threads() counts SMT siblings, so a
    // 2-core/4-vCPU CI runner is NOT skipped — to keep that honest without
    // flaking, a failing first measurement is re-taken once from scratch
    // (min-of-5 again, fresh cache state) before the gate fires.
    let assert_requested = std::env::var("PYTOND_SCALING_ASSERT").is_ok_and(|v| v == "1");
    if assert_requested {
        if pool::hardware_threads() >= 4 {
            let q18 = pytond_tpch::query(18);
            let compiled = py
                .compile_at(q18.source, pytond::Dialect::DuckDb, OptLevel::O4)
                .expect("Q18");
            let measure = |threads: usize| {
                let backend = Backend::duckdb_sim(threads);
                time_ns(|| {
                    py.execute(&compiled, &backend).unwrap();
                })
            };
            let (_, serial0, parallel0) = speedups
                .iter()
                .find(|(n, _, _)| n == "Q18")
                .expect("Q18 measured");
            let mut speedup = serial0 / parallel0;
            if speedup < 1.5 {
                // One clean retry before failing the build.
                speedup = measure(1) / measure(max_t);
            }
            assert!(
                speedup >= 1.5,
                "Q18: {max_t}-thread speedup {speedup:.2}x < 1.5x required \
                 (after one re-measure)"
            );
            println!("scaling assertion passed: Q18 {speedup:.2}x ≥ 1.5x");
        } else {
            println!(
                "scaling assertion skipped: {} hardware thread(s) < 4",
                pool::hardware_threads()
            );
        }
    }
}

criterion_group!(benches, scaling);
criterion_main!(benches);
