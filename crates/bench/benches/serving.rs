//! `serving` microbench: multi-client throughput of the snapshot-isolated
//! serving core (BENCH_5.json).
//!
//! N client threads (1/2/4) share one cloned [`Database`] handle and fire a
//! **prepared** TPC-H query in a closed loop while a background appender
//! keeps publishing new `orders` versions — the serving workload the
//! copy-on-append snapshot design exists for. Two query shapes:
//!
//! - `point`: a zone-pruned single-key lookup on `orders` (the prepared
//!   point-query hot path; sub-millisecond per call),
//! - `star`:  a Q3-shaped customer⋈orders⋈lineitem join + group-by (the
//!   heavier star shape).
//!
//! Every round starts from a fresh database at the same version, so rounds
//! are comparable no matter how many appends previous rounds published.
//! Besides the usual `PYTOND_BENCH_JSON` records (round wall time per
//! client count), the bench prints an aggregate queries/sec and p50/p99
//! tail-latency table. When `PYTOND_SERVING_ASSERT=1` **and** the machine
//! has ≥ 4 hardware threads, it asserts 4-client aggregate qps beats
//! 1-client by ≥ 3× on the point query (with appends still concurrent);
//! on smaller runners the assertion self-skips exactly like the scaling
//! bench — four clients timeslicing one core cannot beat one client.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use pytond_common::{pool, Relation};
use pytond_sqldb::{Database, EngineConfig, Profile};
use pytond_tpch::TpchData;
use std::sync::atomic::{AtomicBool, Ordering};
use std::time::{Duration, Instant};

/// TPC-H scale factor: orders ≈ 30 K rows at 0.02 — enough zones for the
/// point lookup to prune, small enough to re-register per round.
const SF: f64 = 0.02;

/// Client-thread counts of the serving ladder.
const CLIENTS: [usize; 3] = [1, 2, 4];

/// Rows per append batch the background writer publishes.
const APPEND_ROWS: usize = 256;

/// Upper bound on appends per round (keeps round-to-round table growth,
/// and therefore round wall time, bounded).
const MAX_APPENDS: usize = 64;

/// Zone-pruned point lookup on the clustered `o_orderkey`.
const POINT_SQL: &str = "SELECT o_totalprice FROM orders WHERE o_orderkey = 1000";

/// Q3-shaped star join + aggregation.
const STAR_SQL: &str = "SELECT o_orderkey, SUM(l_extendedprice * (1.0 - l_discount)) AS rev \
     FROM customer, orders, lineitem \
     WHERE c_custkey = o_custkey AND l_orderkey = o_orderkey \
       AND o_totalprice > 100000.0 \
     GROUP BY o_orderkey ORDER BY rev DESC LIMIT 10";

fn smoke() -> bool {
    std::env::var("PYTOND_BENCH_SMOKE").is_ok_and(|v| v != "0" && !v.is_empty())
}

/// Rows `[start, end)` of a relation as a new relation (the append batch).
fn slice_rel(rel: &Relation, start: usize, end: usize) -> Relation {
    Relation::new(
        rel.columns()
            .iter()
            .map(|(n, c)| (n.clone(), c.slice(start, end)))
            .collect(),
    )
    .unwrap()
}

/// Aggregate result of one serving round.
struct ServeStats {
    qps: f64,
    p50_ns: u64,
    p99_ns: u64,
    appends: usize,
}

/// One serving round: a fresh database at a fixed version, `clients`
/// looping threads each executing the prepared `sql` `per_client` times
/// (1 engine thread per query — parallelism comes from concurrent
/// clients), plus one background appender publishing new `orders`
/// versions until the clients finish.
fn serve_round(data: &TpchData, sql: &str, clients: usize, per_client: usize) -> ServeStats {
    let db = Database::new();
    pytond_tpch::register_database(&db, data);
    let prepared = db.prepare(sql, Profile::Vectorized).expect("prepare");
    let batch = slice_rel(&data.orders, 0, APPEND_ROWS.min(data.orders.num_rows()));
    let cfg = EngineConfig {
        threads: 1,
        ..EngineConfig::default()
    };
    let stop = AtomicBool::new(false);
    std::thread::scope(|s| {
        let appender = s.spawn(|| {
            let mut published = 0usize;
            while !stop.load(Ordering::Relaxed) && published < MAX_APPENDS {
                db.append("orders", &batch).expect("append");
                published += 1;
                std::thread::yield_now();
            }
            published
        });
        let start = Instant::now();
        let workers: Vec<_> = (0..clients)
            .map(|_| {
                s.spawn(|| {
                    let mut lat = Vec::with_capacity(per_client);
                    for _ in 0..per_client {
                        let t = Instant::now();
                        std::hint::black_box(db.execute_prepared(&prepared, &cfg).unwrap());
                        lat.push(t.elapsed().as_nanos() as u64);
                    }
                    lat
                })
            })
            .collect();
        let mut all: Vec<u64> = workers
            .into_iter()
            .flat_map(|w| w.join().expect("client thread"))
            .collect();
        let wall = start.elapsed();
        stop.store(true, Ordering::Relaxed);
        let appends = appender.join().expect("appender thread");
        all.sort_unstable();
        ServeStats {
            qps: all.len() as f64 / wall.as_secs_f64(),
            p50_ns: all[all.len() / 2],
            p99_ns: all[(all.len() * 99 / 100).min(all.len() - 1)],
            appends,
        }
    })
}

fn serving(c: &mut Criterion) {
    let data = pytond_tpch::generate(SF);
    let (point_n, star_n) = if smoke() { (8, 2) } else { (120, 12) };

    let mut group = c.benchmark_group("serving");
    group.sample_size(2);
    group.warm_up_time(Duration::from_millis(200));
    group.measurement_time(Duration::from_secs(1));

    // JSON records: wall time of one full round per (query, client count) —
    // lower is better, and the fixed per-round query budget makes rounds
    // directly comparable against the committed baseline.
    for clients in CLIENTS {
        group.bench_function(BenchmarkId::new("point", format!("{clients}c")), |b| {
            b.iter(|| serve_round(&data, POINT_SQL, clients, point_n))
        });
    }
    for clients in CLIENTS {
        group.bench_function(BenchmarkId::new("star", format!("{clients}c")), |b| {
            b.iter(|| serve_round(&data, STAR_SQL, clients, star_n))
        });
    }
    group.finish();

    // Throughput / tail-latency table from one dedicated round per point.
    println!(
        "\nserving: concurrent clients vs appends ({} hardware threads, admission capacity {})",
        pool::hardware_threads(),
        pool::admission().capacity(),
    );
    let mut point_qps = Vec::new();
    for (label, sql, per_client) in [("point", POINT_SQL, point_n), ("star", STAR_SQL, star_n)] {
        for clients in CLIENTS {
            let stats = serve_round(&data, sql, clients, per_client);
            println!(
                "  {label:<6} {clients}c   {:>9.0} q/s   p50 {:>8.2} ms   p99 {:>8.2} ms   ({} appends)",
                stats.qps,
                stats.p50_ns as f64 / 1e6,
                stats.p99_ns as f64 / 1e6,
                stats.appends,
            );
            if label == "point" {
                point_qps.push(stats.qps);
            }
        }
    }

    // CI gate: on a real multicore runner, 4 clients must serve ≥ 3× the
    // aggregate point-query throughput of 1 client while appends land.
    // Self-skips below 4 hardware threads (see module docs); a failing
    // first measurement is re-taken once from scratch before the gate
    // fires, like the scaling bench.
    let assert_requested = std::env::var("PYTOND_SERVING_ASSERT").is_ok_and(|v| v == "1");
    if assert_requested {
        if pool::hardware_threads() >= 4 {
            let mut ratio = point_qps[CLIENTS.len() - 1] / point_qps[0];
            if ratio < 3.0 {
                let one = serve_round(&data, POINT_SQL, 1, point_n).qps;
                let four = serve_round(&data, POINT_SQL, CLIENTS[CLIENTS.len() - 1], point_n).qps;
                ratio = four / one;
            }
            assert!(
                ratio >= 3.0,
                "serving: 4-client aggregate qps only {ratio:.2}x of 1-client \
                 (≥ 3x required, after one re-measure)"
            );
            println!("serving assertion passed: point 4c/1c qps {ratio:.2}x ≥ 3x");
        } else {
            println!(
                "serving assertion skipped: {} hardware thread(s) < 4",
                pool::hardware_threads()
            );
        }
    }
}

criterion_group!(benches, serving);
criterion_main!(benches);
