//! Measurement harness shared by the `figures` binary and the Criterion
//! benches: system setup, the six evaluated alternatives, and timing
//! helpers following the paper's protocol (warm-up rounds, then the mean of
//! measured rounds — Section V-A).

#![warn(missing_docs)]

use pytond::{Backend, OptLevel, Pytond};
use pytond_common::{Relation, Result};
use pytond_tpch::TpchData;
use pytond_workloads::Workload;
use std::time::Instant;

/// One evaluated alternative (a bar color in the paper's figures).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum System {
    /// Interpreted Pandas/NumPy baseline (single-threaded by construction).
    Python,
    /// Grizzly-simulated = PyTond without IR optimizations (O0).
    GrizzlyDuck,
    /// Grizzly-simulated on the Hyper-like profile.
    GrizzlyHyper,
    /// PyTond (O4) on the DuckDB-like profile.
    PytondDuck,
    /// PyTond on the Hyper-like profile.
    PytondHyper,
    /// PyTond on the LingoDB-like profile.
    PytondLingo,
}

impl System {
    /// The six systems in the paper's legend order.
    pub fn all() -> [System; 6] {
        [
            System::Python,
            System::GrizzlyDuck,
            System::GrizzlyHyper,
            System::PytondDuck,
            System::PytondHyper,
            System::PytondLingo,
        ]
    }

    /// Legend label.
    pub fn label(self) -> &'static str {
        match self {
            System::Python => "Python",
            System::GrizzlyDuck => "Grizzly/DuckDB",
            System::GrizzlyHyper => "Grizzly/Hyper",
            System::PytondDuck => "PyTond/DuckDB",
            System::PytondHyper => "PyTond/Hyper",
            System::PytondLingo => "PyTond/LingoDB",
        }
    }

    /// Optimization level + backend for compiled systems; `None` = Python.
    pub fn config(self, threads: usize) -> Option<(OptLevel, Backend)> {
        match self {
            System::Python => None,
            System::GrizzlyDuck => Some((OptLevel::O0, Backend::duckdb_sim(threads))),
            System::GrizzlyHyper => Some((OptLevel::O0, Backend::hyper_sim(threads))),
            System::PytondDuck => Some((OptLevel::O4, Backend::duckdb_sim(threads))),
            System::PytondHyper => Some((OptLevel::O4, Backend::hyper_sim(threads))),
            System::PytondLingo => Some((OptLevel::O4, Backend::lingodb_sim(threads))),
        }
    }
}

/// Times `f` with the paper's protocol: `warmups` discarded rounds, then the
/// mean of `rounds` measured ones, in milliseconds. Errors (unsupported
/// backend features) surface as `None`.
pub fn time_ms<T>(warmups: usize, rounds: usize, mut f: impl FnMut() -> Result<T>) -> Option<f64> {
    for _ in 0..warmups {
        if f().is_err() {
            return None;
        }
    }
    let mut total = 0.0;
    for _ in 0..rounds {
        let t = Instant::now();
        if f().is_err() {
            return None;
        }
        total += t.elapsed().as_secs_f64() * 1e3;
    }
    Some(total / rounds as f64)
}

/// Registers the TPC-H dataset into a fresh compiler instance.
pub fn tpch_instance(data: &TpchData) -> Pytond {
    let py = Pytond::new();
    for (name, rel, unique) in data.tables() {
        let keys: Vec<&[&str]> = unique.iter().map(|k| k.as_slice()).collect();
        py.register_table(name, rel.clone(), &keys);
    }
    py
}

/// Registers a workload's tables.
pub fn workload_instance(w: &Workload) -> Pytond {
    let py = Pytond::new();
    for (name, rel, unique) in &w.tables {
        let keys: Vec<&[&str]> = unique.iter().map(|k| k.as_slice()).collect();
        py.register_table(name, rel.clone(), &keys);
    }
    py
}

/// Measures one system on one compiled source (or the provided baseline).
pub fn measure_system(
    system: System,
    threads: usize,
    py: &Pytond,
    source: &str,
    baseline: &dyn Fn() -> Result<Relation>,
    warmups: usize,
    rounds: usize,
) -> Option<f64> {
    match system.config(threads) {
        None => {
            // The `threads` knob does not reach the interpreted baseline:
            // the paper's Pandas "does not support parallelization", and
            // this baseline has no per-call thread config either. It *does*
            // reuse the engine's morsel pool on large merges/group-bys (the
            // fairness rule — see docs/EXECUTION.md); pin the whole process
            // with PYTOND_THREADS=1 to reproduce the paper's flat bar.
            time_ms(warmups, rounds, || baseline().map(|_| ()))
        }
        Some((level, backend)) => {
            // Compile once (outside the timed region, like the paper, which
            // reports query execution on pre-loaded data).
            let compiled = py.compile_at(source, backend.dialect(), level).ok()?;
            time_ms(warmups, rounds, || {
                py.execute(&compiled, &backend).map(|_| ())
            })
        }
    }
}

/// Geometric mean of positive samples.
pub fn geomean(xs: &[f64]) -> f64 {
    if xs.is_empty() {
        return f64::NAN;
    }
    (xs.iter().map(|x| x.ln()).sum::<f64>() / xs.len() as f64).exp()
}

/// Formats an optional runtime.
pub fn fmt_ms(v: Option<f64>) -> String {
    match v {
        Some(ms) => format!("{ms:10.2}"),
        None => format!("{:>10}", "n/a"),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn geomean_is_multiplicative_mean() {
        let g = geomean(&[1.0, 100.0]);
        assert!((g - 10.0).abs() < 1e-9);
    }

    #[test]
    fn systems_enumerate_in_legend_order() {
        let all = System::all();
        assert_eq!(all[0].label(), "Python");
        assert_eq!(all[5].label(), "PyTond/LingoDB");
        assert!(all[0].config(1).is_none());
        assert_eq!(all[3].config(2).unwrap().0, OptLevel::O4);
    }
}
