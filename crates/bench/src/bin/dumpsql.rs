//! Developer tool: prints the SQL PyTond generates for one TPC-H query
//! (`cargo run -p pytond-bench --bin dumpsql -- <n>`).

use pytond::{Dialect, Pytond};
use pytond_tpch::{generate, query};

fn main() {
    let data = generate(0.001);
    let py = Pytond::new();
    for (name, rel, unique) in data.tables() {
        let keys: Vec<&[&str]> = unique.iter().map(|k| k.as_slice()).collect();
        py.register_table(name, rel.clone(), &keys);
    }
    let id: usize = std::env::args().nth(1).unwrap().parse().unwrap();
    let c = py.compile(query(id).source, Dialect::DuckDb).unwrap();
    println!("{}", c.sql);
}
