//! Compares two smoke-bench JSON summaries and fails on regressions.
//!
//! ```text
//! bench_diff <baseline.json> <candidate.json> [--threshold 0.25] [--no-calibrate]
//! ```
//!
//! Both files are the `PYTOND_BENCH_JSON` output of the criterion shim: a JSON
//! array of `{"group", "bench", "iters", "mean_ns"}` objects. Any benchmark
//! present in both files whose candidate `mean_ns` exceeds the baseline by
//! more than `threshold` (fractional, default 0.25 = +25%) is reported and
//! the process exits non-zero — the CI gate against silent perf regressions.
//!
//! Because the committed baseline and the CI run execute on **different
//! hardware**, raw nanoseconds are not comparable: by default every candidate
//! value is first divided by the *median* candidate/baseline ratio across all
//! shared benchmarks (a uniformly slower or faster machine shifts every
//! benchmark alike, so the median estimates the hardware factor, while a real
//! regression moves individual benchmarks against it). `--no-calibrate`
//! compares raw values for same-machine diffs.
//!
//! Benchmarks present on only one side are listed but never fail the run
//! (benches come and go; the committed baseline is refreshed when they do).

use std::collections::BTreeMap;
use std::process::ExitCode;

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut paths = Vec::new();
    let mut threshold = 0.25f64;
    let mut calibrate = true;
    let mut it = args.iter();
    while let Some(a) = it.next() {
        match a.as_str() {
            "--threshold" => {
                let Some(v) = it.next().and_then(|v| v.parse::<f64>().ok()) else {
                    eprintln!("--threshold needs a fractional number (e.g. 0.25)");
                    return ExitCode::from(2);
                };
                threshold = v;
            }
            "--no-calibrate" => calibrate = false,
            _ => paths.push(a.clone()),
        }
    }
    let [baseline, candidate] = paths.as_slice() else {
        eprintln!(
            "usage: bench_diff <baseline.json> <candidate.json> [--threshold 0.25] [--no-calibrate]"
        );
        return ExitCode::from(2);
    };
    let base = match load(baseline) {
        Ok(m) => m,
        Err(e) => {
            eprintln!("cannot read {baseline}: {e}");
            return ExitCode::from(2);
        }
    };
    let cand = match load(candidate) {
        Ok(m) => m,
        Err(e) => {
            eprintln!("cannot read {candidate}: {e}");
            return ExitCode::from(2);
        }
    };

    let (factor, regressions) = analyze(&base, &cand, threshold, calibrate);
    if calibrate {
        println!("calibration factor (median candidate/baseline ratio): {factor:.3}x");
    }

    println!(
        "{:<72} {:>12} {:>12} {:>8}",
        "benchmark", "baseline", "candidate", "ratio"
    );
    for (name, &b) in &base {
        match cand.get(name) {
            Some(&c) => {
                let ratio = if b > 0.0 { c / factor / b } else { 1.0 };
                let flag = if ratio > 1.0 + threshold {
                    "  <-- REGRESSION"
                } else {
                    ""
                };
                println!("{name:<72} {b:>12.0} {c:>12.0} {ratio:>7.2}x{flag}");
            }
            None => println!("{name:<72} {b:>12.0} {:>12} {:>8}", "absent", "-"),
        }
    }
    for name in cand.keys().filter(|k| !base.contains_key(*k)) {
        println!("{name:<72} {:>12} {:>12.0} {:>8}", "new", cand[name], "-");
    }

    if regressions.is_empty() {
        println!(
            "\nbench-diff: no regression above {:.0}% across {} shared benchmarks",
            threshold * 100.0,
            base.keys().filter(|k| cand.contains_key(*k)).count()
        );
        ExitCode::SUCCESS
    } else {
        println!(
            "\nbench-diff: {} regression(s) above {:.0}%:",
            regressions.len(),
            threshold * 100.0
        );
        for (name, ratio) in &regressions {
            println!("  {name}: {ratio:.2}x");
        }
        ExitCode::FAILURE
    }
}

/// Computes the calibration factor (median candidate/baseline ratio over
/// shared benchmarks; 1.0 when `calibrate` is off) and the benchmarks whose
/// calibrated ratio exceeds `1 + threshold`.
fn analyze(
    base: &BTreeMap<String, f64>,
    cand: &BTreeMap<String, f64>,
    threshold: f64,
    calibrate: bool,
) -> (f64, Vec<(String, f64)>) {
    // A uniformly slower machine shifts every benchmark alike, so the median
    // ratio estimates the hardware factor; real regressions move individual
    // benchmarks against that shift.
    let mut shared_ratios: Vec<f64> = base
        .iter()
        .filter_map(|(name, &b)| cand.get(name).map(|&c| (b, c)))
        .filter(|&(b, _)| b > 0.0)
        .map(|(b, c)| c / b)
        .collect();
    shared_ratios.sort_by(f64::total_cmp);
    let factor = if calibrate && !shared_ratios.is_empty() {
        shared_ratios[shared_ratios.len() / 2]
    } else {
        1.0
    };
    let regressions = base
        .iter()
        .filter_map(|(name, &b)| {
            let &c = cand.get(name)?;
            let ratio = if b > 0.0 { c / factor / b } else { 1.0 };
            (ratio > 1.0 + threshold).then(|| (name.clone(), ratio))
        })
        .collect();
    (factor, regressions)
}

fn load(path: &str) -> Result<BTreeMap<String, f64>, String> {
    let text = std::fs::read_to_string(path).map_err(|e| e.to_string())?;
    parse(&text)
}

/// Parses the criterion shim's JSON summary. The shim writes one object per
/// line with a fixed field order, so a line-oriented scan is exact for the
/// only producer this tool consumes. Compact re-encodings of that shape —
/// e.g. `jq -c '.[]'` NDJSON from the CI merge step, which drops the space
/// after each colon — are accepted too.
fn parse(text: &str) -> Result<BTreeMap<String, f64>, String> {
    let mut out = BTreeMap::new();
    for line in text.lines() {
        let line = line.trim().trim_end_matches(',');
        if !line.starts_with('{') {
            continue;
        }
        let group = field_str(line, "group").ok_or_else(|| format!("no group in: {line}"))?;
        let bench = field_str(line, "bench").ok_or_else(|| format!("no bench in: {line}"))?;
        let mean = field_num(line, "mean_ns").ok_or_else(|| format!("no mean_ns in: {line}"))?;
        out.insert(format!("{group}/{bench}"), mean);
    }
    if out.is_empty() {
        return Err("no benchmark entries found".into());
    }
    Ok(out)
}

fn field_str(line: &str, key: &str) -> Option<String> {
    let rest = after_key(line, key)?.strip_prefix('"')?;
    let end = rest.find('"')?;
    Some(rest[..end].to_string())
}

fn field_num(line: &str, key: &str) -> Option<f64> {
    let rest = after_key(line, key)?;
    let end = rest.find([',', '}']).unwrap_or(rest.len());
    rest[..end].trim().parse().ok()
}

/// Slice just past `"key":` and any following whitespace — tolerates both
/// the shim's `"key": v` spacing and compact `"key":v`.
fn after_key<'a>(line: &'a str, key: &str) -> Option<&'a str> {
    let pat = format!("\"{key}\":");
    let start = line.find(&pat)? + pat.len();
    Some(line[start..].trim_start())
}

#[cfg(test)]
mod tests {
    use super::*;

    const SAMPLE: &str = r#"[
  {"group": "fig3", "bench": "python_1t/Q1", "iters": 2, "mean_ns": 100.0},
  {"group": "fig3", "bench": "PyTond_DuckDB_1t/Q1", "iters": 2, "mean_ns": 250.5}
]
"#;

    #[test]
    fn parses_shim_output() {
        let m = parse(SAMPLE).unwrap();
        assert_eq!(m.len(), 2);
        assert_eq!(m["fig3/python_1t/Q1"], 100.0);
        assert_eq!(m["fig3/PyTond_DuckDB_1t/Q1"], 250.5);
    }

    #[test]
    fn rejects_empty_input() {
        assert!(parse("[]").is_err());
    }

    #[test]
    fn parses_compact_ndjson_reencoding() {
        // What `jq -c '.[]'` makes of the shim output (the CI merge step).
        let m = parse(
            "{\"group\":\"fig3\",\"bench\":\"python_1t/Q1\",\"iters\":2,\"mean_ns\":100}\n\
             {\"group\":\"shedding\",\"bench\":\"oversub_8c/cap1\",\"iters\":2,\"mean_ns\":2.5e6}\n",
        )
        .unwrap();
        assert_eq!(m.len(), 2);
        assert_eq!(m["fig3/python_1t/Q1"], 100.0);
        assert_eq!(m["shedding/oversub_8c/cap1"], 2.5e6);
    }

    fn map(entries: &[(&str, f64)]) -> BTreeMap<String, f64> {
        entries.iter().map(|(k, v)| (k.to_string(), *v)).collect()
    }

    #[test]
    fn calibration_absorbs_uniform_hardware_shift() {
        let base = map(&[("a", 100.0), ("b", 200.0), ("c", 300.0), ("d", 50.0)]);
        // Candidate machine is uniformly 2x slower, plus one real 4x regression.
        let cand = map(&[("a", 200.0), ("b", 400.0), ("c", 600.0), ("d", 400.0)]);
        let (factor, regs) = analyze(&base, &cand, 0.25, true);
        assert!((factor - 2.0).abs() < 1e-9);
        assert_eq!(regs.len(), 1);
        assert_eq!(regs[0].0, "d");
        // Without calibration, every benchmark looks regressed.
        let (_, raw_regs) = analyze(&base, &cand, 0.25, false);
        assert_eq!(raw_regs.len(), 4);
    }
}
