//! Developer tool: runs every TPC-H query end to end (compiled path and
//! interpreted baseline) and prints per-query timings — the quickest way to
//! localize a translation or engine regression.

use pytond::{Backend, Pytond};
use pytond_tpch::{all_queries, generate};

fn main() {
    let data = generate(0.001);
    let py = Pytond::new();
    for (name, rel, unique) in data.tables() {
        let keys: Vec<&[&str]> = unique.iter().map(|k| k.as_slice()).collect();
        py.register_table(name, rel.clone(), &keys);
    }
    let backend = Backend::duckdb_sim(1);
    let filter: Vec<usize> = std::env::args()
        .skip(1)
        .filter_map(|a| a.parse().ok())
        .collect();
    for q in all_queries() {
        if !filter.is_empty() && !filter.contains(&q.id) {
            continue;
        }
        eprint!("{} ... ", q.name);
        let t = std::time::Instant::now();
        match py.run(q.source, &backend) {
            Ok(rel) => eprintln!("ok {} rows in {:?}", rel.num_rows(), t.elapsed()),
            Err(e) => eprintln!("ERR {e}"),
        }
        let t2 = std::time::Instant::now();
        match q.run_baseline(&data) {
            Ok(rel) => eprintln!(
                "   baseline ok {} rows in {:?}",
                rel.num_rows(),
                t2.elapsed()
            ),
            Err(e) => eprintln!("   baseline ERR {e}"),
        }
    }
}
