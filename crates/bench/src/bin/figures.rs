//! Regenerates every figure of the paper's evaluation (Section V) as printed
//! tables: run times per workload and system, scalability speedups, the
//! covariance sweeps, and the optimization break-down.
//!
//! ```text
//! cargo run --release -p pytond-bench --bin figures            # all figures
//! cargo run --release -p pytond-bench --bin figures -- fig3    # one figure
//! cargo run --release -p pytond-bench --bin figures -- fig3 sf=0.01 reps=3
//! ```

use pytond::{Backend, OptLevel, Pytond};
use pytond_bench::*;
use pytond_common::Result;
use pytond_ndarray::{einsum, Coo};
use pytond_workloads::covariance as cov;

struct Opts {
    sf: f64,
    scale: usize,
    warmups: usize,
    rounds: usize,
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut figs: Vec<String> = Vec::new();
    let mut opts = Opts {
        sf: 0.01,
        scale: 1,
        warmups: 1,
        rounds: 3,
    };
    for a in &args {
        if let Some(v) = a.strip_prefix("sf=") {
            opts.sf = v.parse().expect("sf=<float>");
        } else if let Some(v) = a.strip_prefix("scale=") {
            opts.scale = v.parse().expect("scale=<int>");
        } else if let Some(v) = a.strip_prefix("reps=") {
            opts.rounds = v.parse().expect("reps=<int>");
        } else {
            figs.push(a.clone());
        }
    }
    if figs.is_empty() {
        figs = (3..=10).map(|i| format!("fig{i}")).collect();
    }
    for f in &figs {
        match f.as_str() {
            "fig3" => fig_tpch(&opts, 1),
            "fig4" => fig_tpch(&opts, 4),
            "fig5" => fig_workloads(&opts, 1),
            "fig6" => fig_workloads(&opts, 4),
            "fig7" => fig_scalability_tpch(&opts),
            "fig8" => fig_scalability_hybrid(&opts),
            "fig9" => fig_covariance(&opts),
            "fig10" => fig_opt_breakdown(&opts),
            other => eprintln!("unknown figure '{other}' (expected fig3..fig10)"),
        }
    }
}

/// Figures 3/4: all TPC-H queries across the six systems.
fn fig_tpch(opts: &Opts, threads: usize) {
    println!(
        "\n=== Figure {} — TPC-H run time (ms), {} thread(s), SF={} ===",
        if threads == 1 { 3 } else { 4 },
        threads,
        opts.sf
    );
    let data = pytond_tpch::generate(opts.sf);
    let py = tpch_instance(&data);
    print!("{:>4}", "Q");
    for s in System::all() {
        print!("  {:>14}", s.label());
    }
    println!();
    let mut speedups_duck = Vec::new();
    let mut speedups_hyper = Vec::new();
    for q in pytond_tpch::all_queries() {
        print!("{:>4}", q.name);
        let mut python_ms = None;
        for s in System::all() {
            let ms = measure_system(
                s,
                threads,
                &py,
                q.source,
                &|| q.run_baseline(&data),
                opts.warmups,
                opts.rounds,
            );
            if s == System::Python {
                python_ms = ms;
            }
            match (s, python_ms, ms) {
                (System::PytondDuck, Some(p), Some(m)) if m > 0.0 => speedups_duck.push(p / m),
                (System::PytondHyper, Some(p), Some(m)) if m > 0.0 => speedups_hyper.push(p / m),
                _ => {}
            }
            print!("  {:>14}", fmt_ms(ms));
        }
        println!();
    }
    println!(
        "geo-mean speedup vs Python: PyTond/DuckDB {:.1}x, PyTond/Hyper {:.1}x  \
         (paper at SF1: 3.6x / 15x on 1T; 8x / 40x on 4T)",
        geomean(&speedups_duck),
        geomean(&speedups_hyper)
    );
}

/// Figures 5/6: the eight data-science workloads.
fn fig_workloads(opts: &Opts, threads: usize) {
    println!(
        "\n=== Figure {} — data-science workloads run time (ms), {} thread(s), scale={} ===",
        if threads == 1 { 5 } else { 6 },
        threads,
        opts.scale
    );
    print!("{:>18}", "workload");
    for s in System::all() {
        print!("  {:>16}", s.label());
    }
    println!();
    for w in pytond_workloads::all_workloads(opts.scale) {
        let py = workload_instance(&w);
        print!("{:>18}", w.name);
        let mut python_ms = None;
        for s in System::all() {
            let ms = measure_system(
                s,
                threads,
                &py,
                w.source,
                &|| (w.baseline)(&w.tables),
                opts.warmups,
                opts.rounds,
            );
            if s == System::Python {
                python_ms = ms;
            }
            // The paper annotates bars with speedup over Python.
            match (python_ms, ms) {
                (Some(p), Some(m)) if s != System::Python && m > 0.0 => {
                    print!("  {:>9} {:5.2}x", format!("{m:.2}"), p / m)
                }
                _ => print!("  {:>16}", fmt_ms(ms)),
            }
        }
        println!();
    }
}

/// Figure 7: TPC-H scalability (speedup over each system's own 1-thread run).
fn fig_scalability_tpch(opts: &Opts) {
    println!(
        "\n=== Figure 7 — TPC-H scalability (speedup vs own 1T), SF={} ===",
        opts.sf
    );
    let data = pytond_tpch::generate(opts.sf);
    let py = tpch_instance(&data);
    for id in [4usize, 6, 13, 22] {
        let q = pytond_tpch::query(id);
        println!("{}:", q.name);
        println!(
            "{:>16}  {:>6}  {:>6}  {:>6}  {:>6}",
            "system", "1T", "2T", "3T", "4T"
        );
        for s in System::all() {
            let base = measure_system(
                s,
                1,
                &py,
                q.source,
                &|| q.run_baseline(&data),
                opts.warmups,
                opts.rounds,
            );
            print!("{:>16}", s.label());
            for t in 1..=4usize {
                let ms = measure_system(
                    s,
                    t,
                    &py,
                    q.source,
                    &|| q.run_baseline(&data),
                    opts.warmups,
                    opts.rounds,
                );
                match (base, ms) {
                    (Some(b), Some(m)) if m > 0.0 => print!("  {:>5.2}x", b / m),
                    _ => print!("  {:>6}", "n/a"),
                }
            }
            println!();
        }
    }
}

/// Figure 8: hybrid-workload scalability.
fn fig_scalability_hybrid(opts: &Opts) {
    println!(
        "\n=== Figure 8 — hybrid workload scalability (speedup vs own 1T), scale={} ===",
        opts.scale
    );
    for w in pytond_workloads::all_workloads(opts.scale) {
        let py = workload_instance(&w);
        println!("{}:", w.name);
        println!(
            "{:>16}  {:>6}  {:>6}  {:>6}  {:>6}",
            "system", "1T", "2T", "3T", "4T"
        );
        for s in System::all() {
            let base = measure_system(
                s,
                1,
                &py,
                w.source,
                &|| (w.baseline)(&w.tables),
                opts.warmups,
                opts.rounds,
            );
            print!("{:>16}", s.label());
            for t in 1..=4usize {
                let ms = measure_system(
                    s,
                    t,
                    &py,
                    w.source,
                    &|| (w.baseline)(&w.tables),
                    opts.warmups,
                    opts.rounds,
                );
                match (base, ms) {
                    (Some(b), Some(m)) if m > 0.0 => print!("  {:>5.2}x", b / m),
                    _ => print!("  {:>6}", "n/a"),
                }
            }
            println!();
        }
    }
}

/// Figure 9: covariance micro-benchmark sweeps.
fn fig_covariance(opts: &Opts) {
    println!("\n=== Figure 9 — covariance matrix computation (ms) ===");
    let fixed_rows = 100_000usize;
    let fixed_cols = 16usize;
    fn header() {
        println!(
            "{:>12}  {:>12}  {:>18}  {:>18}  {:>18}",
            "point", "NumPy", "PyTond/Duck dense", "PyTond/Duck sparse", "PyTond/Hyper dense"
        );
    }
    for threads in [1usize, 4] {
        println!("\n-- {threads} thread(s) --");
        println!("sweep: sparsity (rows={fixed_rows}, cols={fixed_cols})");
        header();
        for sparsity in [0.0001, 0.001, 0.01, 0.1, 1.0] {
            let label = format!("s={sparsity}");
            covariance_row(&label, fixed_rows, fixed_cols, sparsity, threads, opts);
        }
        println!("sweep: rows (cols={fixed_cols}, sparsity=1)");
        header();
        for rows in [10_000usize, 50_000, 100_000, 200_000] {
            let label = format!("n={rows}");
            covariance_row(&label, rows, fixed_cols, 1.0, threads, opts);
        }
        println!("sweep: columns (rows={fixed_rows}, sparsity=1)");
        header();
        for cols in [8usize, 16, 32] {
            let label = format!("m={cols}");
            covariance_row(&label, fixed_rows, cols, 1.0, threads, opts);
        }
    }
}

fn covariance_row(
    label: &str,
    rows: usize,
    cols: usize,
    sparsity: f64,
    threads: usize,
    opts: &Opts,
) {
    let m = cov::gen_matrix(rows, cols, sparsity, 99);
    // NumPy baseline: dense einsum; highly sparse inputs use the COO kernel
    // (as scipy.sparse would).
    let numpy = if sparsity < 0.05 {
        let coo = Coo::from_dense(&m).expect("matrix");
        time_ms(opts.warmups, opts.rounds, || {
            coo.covariance();
            Ok::<_, pytond_common::Error>(())
        })
    } else {
        time_ms(opts.warmups, opts.rounds, || {
            einsum("ij,ik->jk", &[&m, &m]).map(|_| ())
        })
    };
    let py_dense = Pytond::new();
    py_dense.register_table("m", cov::dense_relation(&m), &[&["__id"]]);
    let duck_dense = compiled_time(
        &py_dense,
        cov::covariance_dense_source(),
        Backend::duckdb_sim(threads),
        opts,
    );
    let hyper_dense = compiled_time(
        &py_dense,
        cov::covariance_dense_source(),
        Backend::hyper_sim(threads),
        opts,
    );
    let py_sparse = Pytond::new();
    py_sparse.register_table("m", cov::sparse_relation(&m), &[]);
    let duck_sparse = compiled_time(
        &py_sparse,
        cov::covariance_sparse_source(),
        Backend::duckdb_sim(threads),
        opts,
    );
    println!(
        "{:>12}  {:>12}  {:>18}  {:>18}  {:>18}",
        label,
        fmt_ms(numpy),
        fmt_ms(duck_dense),
        fmt_ms(duck_sparse),
        fmt_ms(hyper_dense)
    );
}

fn compiled_time(py: &Pytond, source: &str, backend: Backend, opts: &Opts) -> Option<f64> {
    let compiled = py
        .compile_at(source, backend.dialect(), OptLevel::O4)
        .ok()?;
    time_ms(opts.warmups, opts.rounds, || {
        py.execute(&compiled, &backend).map(|_| ())
    })
}

/// Figure 10: cumulative optimization break-down (O0..O4 × Duck/Hyper).
fn fig_opt_breakdown(opts: &Opts) {
    println!(
        "\n=== Figure 10 — optimization break-down (ms), SF={}, scale={} ===",
        opts.sf, opts.scale
    );
    let data = pytond_tpch::generate(opts.sf);
    let tpch = tpch_instance(&data);

    let run_levels = |py: &Pytond, source: &str, label: &str| {
        for backend in [Backend::duckdb_sim(1), Backend::hyper_sim(1)] {
            print!("{label:>18} {:>12}", backend.name());
            for level in OptLevel::all() {
                let ms = py
                    .compile_at(source, backend.dialect(), level)
                    .ok()
                    .and_then(|c| {
                        time_ms(opts.warmups, opts.rounds, || {
                            py.execute(&c, &backend).map(|_| ())
                        })
                    });
                print!("  {}={}", level.name(), fmt_ms(ms).trim_start());
            }
            println!();
        }
    };

    run_levels(&tpch, pytond_tpch::query(9).source, "Q9");
    run_levels(&tpch, pytond_tpch::query(15).source, "Q15");
    for w in pytond_workloads::all_workloads(opts.scale) {
        if w.name == "Crime Index" || w.name == "Hybrid Covar (F)" {
            let py = workload_instance(&w);
            run_levels(&py, w.source, w.name);
        }
    }
}

#[allow(dead_code)]
fn unused_result_guard() -> Result<()> {
    Ok(())
}
