//! Workspace-root package of the PyTond reproduction.
//!
//! This crate exists to host the cross-crate integration tests in `tests/`
//! and the runnable examples in `examples/`; it re-exports the member crates
//! for their convenience. The actual implementation lives in `crates/*`.

pub use pytond;
pub use pytond_common as common;
pub use pytond_frame as frame;
pub use pytond_ndarray as ndarray;
pub use pytond_optimizer as optimizer;
pub use pytond_sqldb as sqldb;
pub use pytond_sqlgen as sqlgen;
pub use pytond_tondir as tondir;
pub use pytond_tpch as tpch;
pub use pytond_translate as translate;
pub use pytond_workloads as workloads;
